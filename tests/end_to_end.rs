//! Cross-crate integration tests: generator → algorithm → evaluation, the
//! same pipelines the experiment harness runs, at test-friendly sizes.

use genclus::datagen::dblp::{self, DblpConfig};
use genclus::datagen::weather::{self, PatternSetting, WeatherConfig};
use genclus::prelude::*;

fn small_weather(seed: u64) -> weather::WeatherNetwork {
    weather::generate(&WeatherConfig {
        n_temp: 120,
        n_precip: 60,
        k_neighbors: 4,
        n_obs: 5,
        pattern: PatternSetting::Setting1,
        seed,
    })
}

fn weather_config(net: &weather::WeatherNetwork, seed: u64) -> GenClusConfig {
    let mut cfg = GenClusConfig::new(4, vec![net.temp_attr, net.precip_attr])
        .with_seed(seed)
        .with_outer_iters(4);
    cfg.init = InitStrategy::BestOfSeeds {
        candidates: 4,
        warmup_iters: 3,
    };
    cfg
}

#[test]
fn genclus_recovers_weather_patterns() {
    let net = small_weather(3);
    let fit = GenClus::new(weather_config(&net, 3))
        .unwrap()
        .fit(&net.graph)
        .unwrap();
    let nmi = genclus::eval::nmi(&fit.model.hard_labels(), &net.labels);
    assert!(nmi > 0.5, "weather NMI too low: {nmi}");
    assert!(fit.model.gamma.iter().all(|&g| g >= 0.0));
}

#[test]
fn genclus_beats_spectral_on_weather() {
    let net = small_weather(5);
    let fit = GenClus::new(weather_config(&net, 5))
        .unwrap()
        .fit(&net.graph)
        .unwrap();
    let nmi_genclus = genclus::eval::nmi(&fit.model.hard_labels(), &net.labels);

    let sp = spectral_combine(
        &net.graph,
        &[net.temp_attr, net.precip_attr],
        &SpectralConfig::new(4),
    );
    let nmi_spectral = genclus::eval::nmi(&sp.labels, &net.labels);
    assert!(
        nmi_genclus > nmi_spectral,
        "GenClus {nmi_genclus} should beat spectral {nmi_spectral}"
    );
}

#[test]
fn author_links_outweigh_venue_links_on_acp() {
    // The headline Fig. 9 finding: written_by(P,A) is learned to be much
    // stronger than published_by(P,C) because a conference covers a broader
    // spectrum than an author.
    let corpus = dblp::generate(&DblpConfig {
        n_authors: 200,
        n_papers: 500,
        seed: 1,
        ..DblpConfig::default()
    });
    let acp = corpus.build_acp();
    let mut cfg = GenClusConfig::new(4, vec![acp.text_attr])
        .with_seed(1)
        .with_outer_iters(6);
    cfg.init = InitStrategy::BestOfSeeds {
        candidates: 4,
        warmup_iters: 3,
    };
    let fit = GenClus::new(cfg).unwrap().fit(&acp.graph).unwrap();
    let g_written_by = fit.model.strength(acp.rel_pa);
    let g_published_by = fit.model.strength(acp.rel_pc);
    assert!(
        g_written_by > g_published_by,
        "written_by {g_written_by} should beat published_by {g_published_by}"
    );
}

#[test]
fn membership_similarity_predicts_links_better_than_chance() {
    let corpus = dblp::generate(&DblpConfig {
        n_authors: 150,
        n_papers: 300,
        seed: 2,
        ..DblpConfig::default()
    });
    let acp = corpus.build_acp();
    let mut cfg = GenClusConfig::new(4, vec![acp.text_attr])
        .with_seed(2)
        .with_outer_iters(5);
    cfg.init = InitStrategy::BestOfSeeds {
        candidates: 3,
        warmup_iters: 3,
    };
    let fit = GenClus::new(cfg).unwrap().fit(&acp.graph).unwrap();
    let theta = &fit.model.theta;

    for sim in Similarity::ALL {
        let map = link_prediction_map(&acp.graph, acp.rel_pc, |q, c| {
            sim.score(theta.row(q.index()), theta.row(c.index()))
        });
        // One relevant venue among 20 candidates: random MAP ≈ Σ 1/r / 20 ≈ 0.18.
        assert!(
            map > 0.30,
            "{}: MAP {map} not better than chance",
            sim.label()
        );
    }
}

#[test]
fn parallel_and_serial_fits_agree() {
    let net = small_weather(7);
    let serial = GenClus::new(weather_config(&net, 7).with_threads(1))
        .unwrap()
        .fit(&net.graph)
        .unwrap();
    let parallel = GenClus::new(weather_config(&net, 7).with_threads(3))
        .unwrap()
        .fit(&net.graph)
        .unwrap();
    assert!(serial.model.theta.max_abs_diff(&parallel.model.theta) < 1e-6);
    for (a, b) in serial.model.gamma.iter().zip(&parallel.model.gamma) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn observer_trajectory_matches_history() {
    let net = small_weather(11);
    let mut seen_gammas: Vec<Vec<f64>> = Vec::new();
    let fit = GenClus::new(weather_config(&net, 11))
        .unwrap()
        .fit_observed(&net.graph, |view| {
            seen_gammas.push(view.gamma.to_vec());
        })
        .unwrap();
    assert_eq!(seen_gammas.len(), fit.history.n_iterations());
    for (seen, rec) in seen_gammas.iter().zip(&fit.history.records) {
        assert_eq!(seen, &rec.gamma);
    }
    // Strengths should be converging: the final change is no larger than the
    // first change (plus tolerance for plateau noise).
    if fit.history.records.len() >= 3 {
        let delta = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        };
        let first = delta(&seen_gammas[0], &seen_gammas[1]);
        let last = delta(
            &seen_gammas[seen_gammas.len() - 2],
            &seen_gammas[seen_gammas.len() - 1],
        );
        assert!(last <= first + 1e-6, "gamma diverging: {first} -> {last}");
    }
}

#[test]
fn baselines_run_on_the_same_networks_as_genclus() {
    // The full baseline suite accepts the exact same HinGraph, which is what
    // makes the comparison experiments single-source.
    let corpus = dblp::generate(&DblpConfig {
        n_authors: 100,
        n_papers: 200,
        seed: 4,
        ..DblpConfig::default()
    });
    let ac = corpus.build_ac();
    let net_plsa = fit_netplsa(&ac.graph, ac.text_attr, &NetPlsaConfig::new(4));
    let itm = fit_itopicmodel(&ac.graph, ac.text_attr, &ITopicConfig::new(4));
    assert_eq!(net_plsa.theta.n_objects(), ac.graph.n_objects());
    assert_eq!(itm.theta.n_objects(), ac.graph.n_objects());

    let weather = small_weather(13);
    let features = interpolate_features(&weather.graph, &[weather.temp_attr, weather.precip_attr]);
    let km = kmeans(&features, &KMeansConfig::new(4));
    assert_eq!(km.labels.len(), weather.graph.n_objects());
}

#[test]
fn refresh_pipeline_beats_frozen_fold_in_under_drift() {
    // The full serving life cycle at test scale: fit → save → append
    // (commits) → refresh → query, on a weather network that *drifts*
    // after the initial fit — new sensors' readings are shifted by +0.5
    // relative to the ring patterns the model was fitted on, so the
    // frozen-(β, γ) fold-in works from stale components while the
    // warm-started refresh re-estimates them. The refreshed model must
    // label the grown network at least as well as the frozen fold-ins.
    let net = small_weather(23);
    let fit = GenClus::new(weather_config(&net, 23))
        .unwrap()
        .fit(&net.graph)
        .unwrap();
    let n_old = net.graph.n_objects();
    let n_temp = net.temp_sensors.len();

    let bytes = genclus::serve::snapshot::to_bytes(&net.graph, &fit.model);
    let mut engine = RefreshableEngine::new(
        Snapshot::from_bytes(&bytes).unwrap(),
        2,
        RefreshPolicy::default(),
    );

    // 40 drifted arrivals: sensor i belongs to ring (i % 4), links to 3
    // existing temperature sensors of that ring, and reads the ring's
    // Setting-1 mean plus a +0.5 drift.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let by_ring: Vec<Vec<usize>> = (0..4)
        .map(|c| (0..n_temp).filter(|&i| net.labels[i] == c).collect())
        .collect();
    let n_new = 40usize;
    let mut truth: Vec<usize> = net.labels.clone();
    let mut frozen_labels: Vec<usize> = fit.model.hard_labels();
    for i in 0..n_new {
        let ring = i % 4;
        let links: Vec<String> = (0..3)
            .map(|_| {
                let j = by_ring[ring][next() as usize % by_ring[ring].len()];
                format!(r#"["tt","T{j}",1.0]"#)
            })
            .collect();
        let values: Vec<String> = (0..5)
            .map(|_| {
                let jitter = (next() % 400) as f64 / 1000.0 - 0.2;
                format!("{}", (ring + 1) as f64 + 0.5 + jitter)
            })
            .collect();
        let line = format!(
            r#"{{"op":"fold_in","links":[{}],"values":{{"temperature":[{}]}},"commit":"NT{i}"}}"#,
            links.join(","),
            values.join(","),
        );
        let v = Json::parse(&engine.handle_line(&line)).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "commit NT{i} failed");
        frozen_labels.push(v.get("cluster").unwrap().as_usize().unwrap());
        truth.push(ring);
    }
    let nmi_frozen = genclus::eval::nmi(&frozen_labels, &truth);

    // Refresh: append all 40, warm-refit, swap.
    let v = Json::parse(&engine.handle_line(r#"{"op":"refresh"}"#)).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(v.get("objects_added").unwrap().as_usize(), Some(n_new));
    assert_eq!(v.get("n_objects").unwrap().as_usize(), Some(n_old + n_new));

    // Query every object (old and new) from the refreshed engine.
    let names: Vec<String> = (0..n_temp)
        .map(|i| format!("T{i}"))
        .chain((n_temp..n_old).map(|i| format!("P{}", i - n_temp)))
        .chain((0..n_new).map(|i| format!("NT{i}")))
        .collect();
    let lines: Vec<String> = names
        .iter()
        .map(|n| format!(r#"{{"op":"membership","object":"{n}"}}"#))
        .collect();
    let refreshed_labels: Vec<usize> = engine
        .handle_batch(&lines)
        .iter()
        .map(|resp| {
            let v = Json::parse(resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{resp}");
            v.get("cluster").unwrap().as_usize().unwrap()
        })
        .collect();
    let nmi_refreshed = genclus::eval::nmi(&refreshed_labels, &truth);
    assert!(
        nmi_refreshed >= nmi_frozen,
        "refresh must not lose accuracy: refreshed {nmi_refreshed} vs frozen {nmi_frozen}"
    );
    // And a top_k over the refreshed model ranks new sensors among their
    // ring mates.
    let t =
        Json::parse(&engine.handle_line(
            r#"{"op":"top_k","object":"NT0","k":5,"sim":"cosine","type":"temp_sensor"}"#,
        ))
        .unwrap();
    assert_eq!(t.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(t.get("results").unwrap().as_arr().unwrap().len(), 5);
}

#[test]
fn facade_prelude_exposes_the_whole_pipeline() {
    // Build → fit → evaluate using only the facade prelude imports.
    let net = small_weather(17);
    let fit = GenClus::new(weather_config(&net, 17))
        .unwrap()
        .fit(&net.graph)
        .unwrap();
    let truth: Vec<Option<usize>> = net.labels.iter().map(|&l| Some(l)).collect();
    let mut ls = LabelSet::new(truth.len());
    for (i, l) in truth.iter().enumerate() {
        if let Some(c) = l {
            ls.set(ObjectId::from_index(i), *c);
        }
    }
    let v = nmi_against(&fit.model.hard_labels(), &ls, None);
    assert!((0.0..=1.0).contains(&v));
}
