//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The build environment has no network access, so this vendored crate
//! provides the `proptest!` macro, range / tuple / `collection::vec` /
//! `any::<T>()` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` macros. Semantics differ from upstream in
//! one way that matters: there is **no shrinking** — a failing case panics
//! with the generated inputs baked into the assertion message instead. Case
//! generation is fully deterministic per (test name, case index), so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A deterministic RNG for one generated case, keyed by test name and case
/// index (FNV-1a over the name, mixed with the index).
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A value generator. Upstream strategies also carry shrinking machinery;
/// here a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a whole-domain strategy, used through [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy generating any value of `T`. See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector strategy: `len` in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream surface this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, doc comments / attributes per test, and
/// `name in strategy` argument bindings (with trailing commas).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    // The closure gives `prop_assume!` an early-exit target.
                    let __run = move || $body;
                    __run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in crate::collection::vec((0usize..4, 0.0f64..1.0), 1..10),
            seed in any::<u64>(),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (i, x) in &pairs {
                prop_assert!(*i < 4 && (0.0..1.0).contains(x));
            }
            let _ = seed;
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn case_rng_is_deterministic_and_name_keyed() {
        use rand::Rng;
        let a: u64 = crate::case_rng("t", 0).gen();
        let b: u64 = crate::case_rng("t", 0).gen();
        let c: u64 = crate::case_rng("t", 1).gen();
        let d: u64 = crate::case_rng("u", 0).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
