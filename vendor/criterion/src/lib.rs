//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses.
//!
//! The build environment has no network access, so this vendored crate keeps
//! the workspace's `[[bench]]` targets compiling and runnable: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros. The
//! measurement loop is deliberately simple — warm up, run timed batches,
//! report min/median/mean per iteration — with none of upstream's
//! statistical analysis or HTML reports. When the binary is invoked by the
//! test harness plumbing (`--test`), everything runs in a single-iteration
//! smoke mode so `cargo test --benches` stays fast.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How long each benchmark's measurement phase runs (smoke mode: one pass).
#[derive(Debug, Clone, Copy)]
struct Mode {
    smoke: bool,
}

impl Mode {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Self { smoke }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::from_args(),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the stub sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for upstream compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        run_one(&format!("{}/{id}", self.name), self.criterion.mode, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        let mode = self.criterion.mode;
        run_one(&name, mode, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; the stub prints as it
    /// goes).
    pub fn finish(self) {}
}

/// Conversion helper so `bench_function` accepts both `&str` and
/// [`BenchmarkId`].
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        Self(id.id)
    }
}

/// Runs the closure under timing.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, recording seconds-per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode.smoke {
            black_box(f());
            self.samples.push(0.0);
            return;
        }
        // Warm-up: at least one run, up to ~50 ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_iters == 0 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Measurement: ~12 samples sized to ≥ 1 ms each, capped at ~600 ms
        // total so full bench suites stay usable.
        let batch = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let deadline = Instant::now() + Duration::from_millis(600);
        for _ in 0..12 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mode: Mode, f: &mut F) {
    let mut b = Bencher {
        mode,
        samples: Vec::new(),
    };
    f(&mut b);
    if mode.smoke {
        println!("bench {name}: ok (smoke)");
        return;
    }
    let mut s = b.samples;
    if s.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "bench {name}: median {:.3} ms  mean {:.3} ms  min {:.3} ms  ({} samples)",
        median * 1e3,
        mean * 1e3,
        s[0] * 1e3,
        s.len()
    );
}

/// Bundles benchmark functions into one group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn smoke_mode_runs_each_closure_once() {
        let mut c = Criterion {
            mode: Mode { smoke: true },
        };
        let mut calls = 0;
        c.bench_function("x", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut with_input = 0;
        group.bench_with_input(BenchmarkId::from_parameter(1), &3usize, |b, &n| {
            b.iter(|| {
                with_input += n;
            })
        });
        group.finish();
        assert_eq!(with_input, 3);
    }
}
