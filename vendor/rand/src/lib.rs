//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no network access, so external crates cannot be
//! fetched; this vendored crate re-implements exactly the surface the
//! workspace needs — [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`) — with a deterministic
//! xoshiro256++ generator. It is **not** the upstream `rand` crate: stream
//! values differ, and only determinism + statistical quality are promised,
//! which is all the workspace's seeded experiments and tests rely on.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers) — the stand-in for upstream's
/// `Standard` distribution.
pub trait StandardSample: Sized {
    /// One standard draw.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) on the f64 grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift keeps every draw one next_u64 call; the
                // modulo bias over u64 spans is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing sampling trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// One standard draw of `T` (floats in `[0, 1)`, integers full-range).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// One uniform draw from `range`.
    #[inline]
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing a generator deterministically from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`, expanding it to full state size.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded
    /// through SplitMix64 (the upstream-recommended expansion, so near-equal
    /// seeds still give uncorrelated streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::Rng;

    /// Random slice operations (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    fn rng(seed: u64) -> rngs::StdRng {
        rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let (mut a, mut b) = (rng(9), rng(9));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rng(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_uniform_mean() {
        let mut r = rng(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng(2);
        for _ in 0..10_000 {
            let i: usize = r.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j: u8 = r.gen_range(0..3u8);
            assert!(j < 3);
            let x: f64 = r.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&x));
            let k: usize = r.gen_range(0..=4);
            assert!(k <= 4);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = rng(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = rng(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut r = rng(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle virtually never fixes");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
