//! Bibliographic network walkthrough (paper Example 1 + §5.1).
//!
//! Generates the synthetic DBLP four-area corpus, builds both network views
//! (AC and ACP), runs GenClus on each, and prints: per-type clustering
//! accuracy, the learned strengths (Fig. 9), the case-study membership rows
//! (Table 1), and the top terms of each discovered research-area cluster.
//!
//! ```text
//! cargo run --release --example bibliographic [-- <n_authors> <n_papers> <seed>]
//! ```

use genclus::datagen::dblp::{self, DblpConfig, FOUR_AREAS};
use genclus::datagen::vocab;
use genclus::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_authors: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(800);
    let n_papers: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1600);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    let corpus = dblp::generate(&DblpConfig {
        n_authors,
        n_papers,
        seed,
        ..DblpConfig::default()
    });

    // ---------- AC network ----------
    let ac = corpus.build_ac();
    println!("AC network:\n{}", NetworkStats::of(&ac.graph));

    let mut config = GenClusConfig::new(4, vec![ac.text_attr])
        .with_seed(seed)
        .with_outer_iters(10);
    config.init = InitStrategy::BestOfSeeds {
        candidates: 5,
        warmup_iters: 3,
    };
    let fit = GenClus::new(config.clone())
        .expect("valid config")
        .fit(&ac.graph)
        .expect("fit succeeds");

    let truth = {
        let mut ls = LabelSet::new(ac.labels.len());
        for (i, l) in ac.labels.iter().enumerate() {
            if let Some(c) = l {
                ls.set(ObjectId::from_index(i), *c);
            }
        }
        ls
    };
    let hard = fit.model.hard_labels();
    println!(
        "AC accuracy: overall NMI {:.4}, conferences {:.4}, authors {:.4}",
        nmi_against(&hard, &truth, None),
        nmi_against(&hard, &truth, Some(&ac.conferences)),
        nmi_against(&hard, &truth, Some(&ac.authors)),
    );

    println!("\nlearned strengths (AC):");
    for (r, def) in ac.graph.schema().relations() {
        println!("  {:<14} gamma = {:.2}", def.name, fit.model.strength(r));
    }

    // Map clusters to areas by conference majority vote, then show the
    // case-study rows in DB/DM/IR/ML order (Table 1).
    let mut votes = vec![vec![0usize; 4]; 4];
    for &c in &ac.conferences {
        if let Some(t) = truth.get(c) {
            votes[hard[c.index()]][t] += 1;
        }
    }
    let cluster_to_area: Vec<usize> = votes
        .iter()
        .enumerate()
        .map(|(k, v)| {
            v.iter()
                .enumerate()
                .max_by_key(|&(_, n)| *n)
                .map(|(a, &n)| if n > 0 { a } else { k })
                .unwrap_or(k)
        })
        .collect();

    println!("\ncase studies (cluster membership, columns {FOUR_AREAS:?}):");
    for name in [
        "SIGMOD",
        "KDD",
        "CIKM",
        "Jennifer Widom",
        "Jim Gray",
        "Christos Faloutsos",
    ] {
        if let Some(v) = ac.graph.object_by_name(name) {
            let row = fit.model.membership(v);
            let mut by_area = [0.0f64; 4];
            for (k, &mass) in row.iter().enumerate() {
                by_area[cluster_to_area[k]] += mass;
            }
            let cells: Vec<String> = by_area.iter().map(|x| format!("{x:.4}")).collect();
            println!("  {name:<20} {}", cells.join("  "));
        }
    }

    // Top title terms per discovered cluster — a PLSA-style topic readout.
    if let Some(ClusterComponents::Categorical(cat)) = fit.model.components_for(ac.text_attr) {
        println!("\ntop terms per discovered cluster:");
        for k in 0..4 {
            let terms: Vec<&str> = cat
                .top_terms(k, 6)
                .into_iter()
                .map(|(t, _)| vocab::term_string(t))
                .collect();
            println!(
                "  cluster {k} (mapped to {}): {}",
                FOUR_AREAS[cluster_to_area[k]],
                terms.join(", ")
            );
        }
    }

    // ---------- ACP network ----------
    let acp = corpus.build_acp();
    println!("\nACP network:\n{}", NetworkStats::of(&acp.graph));
    let fit = GenClus::new(GenClusConfig {
        attributes: vec![acp.text_attr],
        ..config
    })
    .expect("valid config")
    .fit(&acp.graph)
    .expect("fit succeeds");

    println!("learned strengths (ACP):");
    for (r, def) in acp.graph.schema().relations() {
        println!("  {:<14} gamma = {:.2}", def.name, fit.model.strength(r));
    }
    println!(
        "\nnote the paper's Fig. 9 shape: author links (write/written_by) are\n\
         far stronger than venue links (publish/published_by) — an author is\n\
         a much more reliable predictor of a paper's area than its venue."
    );
}
