//! Online inference over a persisted model: fit → save → load → fold-in.
//!
//! Fits GenClus on a weather sensor network (paper Appendix C), persists
//! the model and network as a versioned snapshot, reloads it the way a
//! serving process would, and then assigns **new** sensors that were never
//! part of the fit — including one whose readings are entirely missing, so
//! its membership comes purely from its links (the paper's
//! incomplete-attribute regime, continued at serving time).
//!
//! ```text
//! cargo run --release --example online_inference [-- <seed>]
//! ```

use genclus::prelude::*;
use genclus::serve::snapshot;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // 1. Fit — a two-attribute weather network with 4 planted regions.
    let net = genclus::datagen::weather::generate(&WeatherConfig {
        n_temp: 200,
        n_precip: 100,
        k_neighbors: 5,
        n_obs: 10,
        pattern: PatternSetting::Setting1,
        seed,
    });
    let config = GenClusConfig::new(4, vec![net.temp_attr, net.precip_attr])
        .with_seed(seed)
        .with_outer_iters(4);
    let fit = GenClus::new(config).unwrap().fit(&net.graph).unwrap();
    println!(
        "fitted {} sensors into 4 clusters ({} outer iterations)",
        net.graph.n_objects(),
        fit.history.n_iterations()
    );

    // 2. Save — one dependency-free binary file, checksummed and versioned.
    let dir = std::env::temp_dir().join("genclus-online-inference");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("weather.gcsnap");
    snapshot::save(&path, &net.graph, &fit.model).unwrap();
    println!(
        "snapshot: {} ({} KiB)",
        path.display(),
        std::fs::metadata(&path).unwrap().len() / 1024
    );

    // 3. Load — the serving path; the Θ matrix is also readable zero-copy.
    let snap = Snapshot::load(&path).unwrap();
    println!(
        "loaded snapshot v{}: {} objects, Θ is {}×{} (zero-copy view: first row {:?})",
        snap.header().version,
        snap.graph().n_objects(),
        snap.model().theta.n_objects(),
        snap.model().n_clusters(),
        snap.theta_row(0)
            .iter()
            .map(|x| (x * 1e3).round() / 1e3)
            .collect::<Vec<_>>(),
    );

    // 4. Fold in new sensors against the frozen model.
    let graph = snap.graph();
    let model = snap.model();
    let engine = FoldInEngine::new(model, graph);
    let anchor = graph.require_object_by_name("T0").unwrap();

    // A new temperature sensor whose readings are MISSING: it was
    // installed right next to T0, so it shares T0's nearest-neighbor
    // links — and nothing else is known about it.
    let silent = FoldInRequest {
        links: graph
            .out_links(anchor)
            .map(|l| (l.relation, l.endpoint, l.weight))
            .collect(),
        ..Default::default()
    };
    let assigned = engine.assign(&silent).unwrap();
    let anchor_cluster = genclus::stats::simplex::argmax(model.membership(anchor));
    println!(
        "\nsilent sensor (no readings, 3 links): cluster {} in {} iterations {:?}",
        genclus::stats::simplex::argmax(&assigned.theta),
        assigned.iterations,
        assigned
            .theta
            .iter()
            .map(|x| (x * 1e3).round() / 1e3)
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        genclus::stats::simplex::argmax(&assigned.theta),
        anchor_cluster,
        "a linked-only sensor must follow its neighbors"
    );

    // The same sensor with two readings: link and attribute evidence
    // combine, exactly like Eq. 10 during the fit.
    let mut with_readings = silent.clone();
    with_readings.values = vec![(net.temp_attr, vec![1.1, 0.9])];
    let assigned2 = engine.assign(&with_readings).unwrap();
    println!(
        "same sensor with readings [1.1, 0.9]:   cluster {} in {} iterations {:?}",
        genclus::stats::simplex::argmax(&assigned2.theta),
        assigned2.iterations,
        assigned2
            .theta
            .iter()
            .map(|x| (x * 1e3).round() / 1e3)
            .collect::<Vec<_>>(),
    );

    // 5. The folded row plugs straight into §5.2.2 link prediction.
    let temp_type = graph.schema().object_type_by_name("temp_sensor").unwrap();
    let candidates = graph.objects_of_type(temp_type);
    let nearest = genclus::core::prediction::top_k(
        &model.theta,
        &assigned2.theta,
        &candidates,
        Similarity::NegCrossEntropy,
        5,
    );
    println!("\nmost similar installed sensors to the new arrival:");
    for (obj, score) in nearest {
        println!("  {:6}  score {score:8.4}", graph.object_name(obj));
    }
}
