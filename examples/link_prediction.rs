//! Link prediction from learned memberships (§5.2.2, Tables 2–4).
//!
//! Fits GenClus on the synthetic ACP network and uses the soft memberships
//! to predict which conference published each paper, comparing the paper's
//! three similarity functions — including the asymmetric cross entropy that
//! mirrors the model's own feature function.
//!
//! ```text
//! cargo run --release --example link_prediction [-- <seed>]
//! ```

use genclus::datagen::dblp::{self, DblpConfig};
use genclus::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let corpus = dblp::generate(&DblpConfig {
        n_authors: 800,
        n_papers: 1600,
        seed,
        ..DblpConfig::default()
    });
    let acp = corpus.build_acp();
    println!("ACP network:\n{}", NetworkStats::of(&acp.graph));

    let mut config = GenClusConfig::new(4, vec![acp.text_attr])
        .with_seed(seed)
        .with_outer_iters(10);
    config.init = InitStrategy::BestOfSeeds {
        candidates: 5,
        warmup_iters: 3,
    };
    let fit = GenClus::new(config)
        .expect("valid config")
        .fit(&acp.graph)
        .expect("fit succeeds");
    let theta = &fit.model.theta;

    // MAP over the <P,C> relation: every paper queries a ranking of all 20
    // conferences; its actual venue is the relevant item.
    println!("\nMAP for predicting a paper's venue (relation <P,C>):");
    for sim in Similarity::ALL {
        let map = link_prediction_map(&acp.graph, acp.rel_pc, |q, c| {
            sim.score(theta.row(q.index()), theta.row(c.index()))
        });
        println!("  {:<24} {map:.4}", sim.label());
    }

    // A concrete ranked list for one paper.
    let paper = acp.papers[0];
    let true_venue = acp
        .graph
        .out_links(paper)
        .find(|l| l.relation == acp.rel_pc)
        .map(|l| l.endpoint)
        .expect("every paper has a venue");
    let ranked = rank_candidates(theta, paper, &acp.conferences, Similarity::NegCrossEntropy);
    println!(
        "\ntop-5 predicted venues for {} (true venue: {}):",
        acp.graph.object_name(paper),
        acp.graph.object_name(true_venue)
    );
    for (v, score) in ranked.iter().take(5) {
        let marker = if *v == true_venue { "  <-- actual" } else { "" };
        println!(
            "  {:<8} score {score:+.4}{marker}",
            acp.graph.object_name(*v)
        );
    }

    // Random ranking baseline for calibration: with one relevant venue among
    // 20 candidates, a random permutation scores E[1/rank] ≈ 0.18.
    let random_map = link_prediction_map(&acp.graph, acp.rel_pc, |q, c| {
        // A fixed pseudo-random but membership-free score.
        ((q.0 as u64).wrapping_mul(2654435761) ^ (c.0 as u64).wrapping_mul(40503)) as f64
    });
    println!("\nmembership-free (random) baseline MAP: {random_map:.4}");
}
