//! Weather sensor network walkthrough (paper Example 2 + §5.1).
//!
//! Generates a synthetic sensor network with ring-shaped weather patterns,
//! clusters it with GenClus and both numeric baselines, and prints the
//! accuracy comparison, the learned link-type strengths, and the fitted
//! Gaussian components next to the generator's ground truth.
//!
//! ```text
//! cargo run --release --example weather_sensors [-- <setting> <n_temp> <n_precip> <n_obs> <seed>]
//! ```
//!
//! Hyperparameter-exploration overrides (used while reproducing Figs. 7–8,
//! kept for experimentation): the environment variables
//! `GENCLUS_PSEUDOCOUNT` (θ smoothing weight), `GENCLUS_GAMMA_INIT`,
//! `GENCLUS_EM_ITERS` and `GENCLUS_OUTER_ITERS` override the corresponding
//! config fields.

use genclus::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let setting = args.first().map(|s| s.as_str()).unwrap_or("1");
    let n_temp: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let n_precip: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(250);
    let n_obs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(7);

    let pattern = match setting {
        "2" => PatternSetting::Setting2,
        _ => PatternSetting::Setting1,
    };
    let net = genclus::datagen::weather::generate(&WeatherConfig {
        n_temp,
        n_precip,
        k_neighbors: 5,
        n_obs,
        pattern,
        seed,
    });
    println!("generated weather network (setting {setting}):");
    println!("{}", NetworkStats::of(&net.graph));

    // --- GenClus over both (incomplete) attributes.
    let mut config = GenClusConfig::new(4, vec![net.temp_attr, net.precip_attr])
        .with_seed(seed)
        .with_outer_iters(5);
    config.init = InitStrategy::BestOfSeeds {
        candidates: 16,
        warmup_iters: 10,
    };
    if let Ok(pc) = std::env::var("GENCLUS_PSEUDOCOUNT") {
        config.theta_smoothing = pc.parse().expect("numeric smoothing weight");
    }
    if let Ok(gi) = std::env::var("GENCLUS_GAMMA_INIT") {
        config.gamma_init = gi.parse().expect("numeric gamma init");
    }
    if let Ok(ei) = std::env::var("GENCLUS_EM_ITERS") {
        config.em_iters = ei.parse().expect("numeric em iters");
    }
    if let Ok(oi) = std::env::var("GENCLUS_OUTER_ITERS") {
        config.outer_iters = oi.parse().expect("numeric outer iters");
    }
    let fit = GenClus::new(config)
        .expect("valid config")
        .fit(&net.graph)
        .expect("fit succeeds");
    let nmi_genclus = genclus::eval::nmi(&fit.model.hard_labels(), &net.labels);

    // --- k-means on interpolated 2-D features.
    let features = interpolate_features(&net.graph, &[net.temp_attr, net.precip_attr]);
    let km = kmeans(&features, &KMeansConfig::new(4));
    let nmi_kmeans = genclus::eval::nmi(&km.labels, &net.labels);

    // --- spectral combine.
    let sp = spectral_combine(
        &net.graph,
        &[net.temp_attr, net.precip_attr],
        &SpectralConfig::new(4),
    );
    let nmi_spectral = genclus::eval::nmi(&sp.labels, &net.labels);

    println!("clustering accuracy (NMI vs generator labels):");
    println!("  GenClus          {nmi_genclus:.4}");
    println!("  Kmeans           {nmi_kmeans:.4}");
    println!("  SpectralCombine  {nmi_spectral:.4}");

    println!("\nlearned link-type strengths:");
    for (label, r) in net.relations.labeled() {
        println!("  {label:6} gamma = {:.2}", fit.model.strength(r));
    }

    println!("\nfitted Gaussian components (temperature, precipitation):");
    let temp = fit.model.components_for(net.temp_attr).unwrap();
    let precip = fit.model.components_for(net.precip_attr).unwrap();
    if let (ClusterComponents::Gaussian(t), ClusterComponents::Gaussian(p)) = (temp, precip) {
        for k in 0..4 {
            println!(
                "  cluster {k}: T ~ N({:+.2}, {:.3})   P ~ N({:+.2}, {:.3})",
                t.mean(k),
                t.variance(k),
                p.mean(k),
                p.variance(k)
            );
        }
    }

    println!("\nper-iteration trajectory (g1, gamma):");
    for rec in &fit.history.records {
        let gam: Vec<String> = rec.gamma.iter().map(|g| format!("{g:.2}")).collect();
        println!(
            "  iter {}: g1 = {:.1}, em_iters = {}, gamma = [{}]",
            rec.iteration,
            rec.g1,
            rec.em_iterations,
            gam.join(", ")
        );
    }
}
