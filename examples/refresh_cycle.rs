//! The full serving life cycle: fit → save → serve → grow → refresh.
//!
//! Fits GenClus on a weather sensor network, persists the snapshot, wraps
//! it in a [`RefreshableEngine`] with an auto-refresh policy, and streams
//! JSON requests at it the way `genclus_serve` would: new sensors arrive
//! as `fold_in` requests carrying a `"commit"` field, accumulate in a
//! `GraphDelta`, and once enough have arrived the engine re-fits itself —
//! EM warm-started from the served `(Θ, β, γ)` — and atomically swaps the
//! refreshed snapshot in. Afterwards the *committed* sensors answer
//! `membership` and rank in `top_k` like any original object, and the
//! refreshed snapshot has been persisted next to the original.
//!
//! The second act repeats the cycle with `RefreshPolicy::background`: the
//! threshold-crossing commit hands the re-fit to the dedicated worker
//! thread and returns immediately, reads keep answering from the old
//! snapshot (watch the `stats` checksum), and `{"op":"refresh_status",
//! "wait":true}` is the quiesce point after which the arrivals are served
//! from the swapped-in model.
//!
//! ```text
//! cargo run --release --example refresh_cycle [-- <seed>]
//! ```

use genclus::prelude::*;
use genclus::serve::snapshot;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // 1. Fit and persist — same opening as the online_inference example.
    let net = genclus::datagen::weather::generate(&WeatherConfig {
        n_temp: 200,
        n_precip: 100,
        k_neighbors: 5,
        n_obs: 10,
        pattern: PatternSetting::Setting1,
        seed,
    });
    let config = GenClusConfig::new(4, vec![net.temp_attr, net.precip_attr])
        .with_seed(seed)
        .with_outer_iters(4);
    let fit = GenClus::new(config).unwrap().fit(&net.graph).unwrap();
    let dir = std::env::temp_dir().join("genclus-refresh-cycle");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("weather.gcsnap");
    snapshot::save(&path, &net.graph, &fit.model).unwrap();
    println!(
        "fitted {} sensors, snapshot at {}",
        net.graph.n_objects(),
        path.display()
    );

    // 2. Serve with an auto-refresh policy: re-fit after 3 committed
    //    sensors, persisting each refreshed snapshot.
    let refreshed_path = dir.join("weather-refreshed.gcsnap");
    let policy = RefreshPolicy {
        max_pending_objects: 3,
        persist_path: Some(refreshed_path.clone()),
        ..RefreshPolicy::default()
    };
    let mut engine = RefreshableEngine::new(Snapshot::load(&path).unwrap(), 2, policy);

    // 3. Three sensors arrive over time. Each is folded in immediately
    //    (the response carries its inferred row) and staged for the next
    //    refresh; the third commit crosses the policy threshold.
    let arrivals = [
        r#"{"op":"fold_in","links":[["tt","T0",1.0],["tt","T1",1.0]],"values":{"temperature":[1.1,0.9]},"commit":"NT0"}"#,
        r#"{"op":"fold_in","links":[["tt","T10",1.0],["tt","T11",1.0]],"commit":"NT1"}"#,
        r#"{"op":"fold_in","links":[["pt","T3",1.0]],"values":{"precipitation":[2.1]},"commit":{"name":"NP0","type":"precip_sensor"}}"#,
    ];
    for line in arrivals {
        let response = engine.handle_line(line);
        let v = Json::parse(&response).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{response}");
        let name = v.get("committed").unwrap().as_str().unwrap().to_string();
        match v.get("refreshed") {
            None => println!(
                "committed {name}: cluster {}, {} pending",
                v.get("cluster").unwrap().as_usize().unwrap(),
                v.get("pending_objects").unwrap().as_usize().unwrap(),
            ),
            Some(_) => println!(
                "committed {name} → policy fired: refreshed to {} objects in {} EM iterations \
                 ({} outer), persisted: {}",
                v.get("n_objects").unwrap().as_usize().unwrap(),
                v.get("em_iterations").unwrap().as_usize().unwrap(),
                v.get("outer_iterations").unwrap().as_usize().unwrap(),
                v.get("persisted").unwrap() == &Json::Bool(true),
            ),
        }
    }
    assert_eq!(engine.refreshes(), 1, "the third commit must auto-refresh");
    assert_eq!(engine.pending_objects(), 0);

    // 4. The committed sensors are first-class objects now: membership
    //    answers, and NT0 ranks among its linked neighbors in top_k.
    let m = engine.handle_line(r#"{"op":"membership","object":"NT0"}"#);
    let v = Json::parse(&m).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{m}");
    println!(
        "\nNT0 after refresh: cluster {} {:?}",
        v.get("cluster").unwrap().as_usize().unwrap(),
        v.get("theta")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| (x.as_f64().unwrap() * 1e3).round() / 1e3)
            .collect::<Vec<_>>(),
    );
    let t = engine
        .handle_line(r#"{"op":"top_k","object":"T0","k":5,"sim":"cosine","type":"temp_sensor"}"#);
    let v = Json::parse(&t).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{t}");
    println!("most similar sensors to T0 (refreshed model):");
    for entry in v.get("results").unwrap().as_arr().unwrap() {
        let pair = entry.as_arr().unwrap();
        println!(
            "  {:6}  score {:8.4}",
            pair[0].as_str().unwrap(),
            pair[1].as_f64().unwrap()
        );
    }

    // 5. The persisted refreshed snapshot is independently loadable and
    //    matches what the engine serves.
    let reloaded = Snapshot::load(&refreshed_path).unwrap();
    assert_eq!(reloaded.graph().n_objects(), net.graph.n_objects() + 3);
    assert_eq!(
        reloaded.raw_bytes(),
        engine.engine().snapshot().raw_bytes(),
        "persisted snapshot must equal the served one byte for byte"
    );
    println!(
        "\nrefreshed snapshot persisted: {} ({} objects)",
        refreshed_path.display(),
        reloaded.graph().n_objects()
    );

    // 6. The same cycle without the stall: a background policy re-fits on
    //    the dedicated worker thread while reads keep flowing. Start from
    //    the just-persisted snapshot.
    let policy = RefreshPolicy {
        max_pending_objects: 2,
        background: true,
        ..RefreshPolicy::default()
    };
    let mut engine = RefreshableEngine::new(Snapshot::load(&refreshed_path).unwrap(), 2, policy);
    let checksum = |engine: &mut RefreshableEngine| -> String {
        let v = Json::parse(&engine.handle_line(r#"{"op":"stats"}"#)).unwrap();
        v.get("checksum").unwrap().as_str().unwrap().to_string()
    };
    let before = checksum(&mut engine);
    engine.handle_line(r#"{"op":"fold_in","links":[["tt","T20",1.0]],"commit":"BT0"}"#);
    let v = Json::parse(
        &engine.handle_line(r#"{"op":"fold_in","links":[["tt","BT0",1.0]],"commit":"BT1"}"#),
    )
    .unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        v.get("refresh_started"),
        Some(&Json::Bool(true)),
        "the second commit crosses the threshold and hands off the re-fit"
    );
    // The serving loop is free immediately: reads answer from the OLD
    // snapshot until the worker's snapshot swaps in.
    let during = checksum(&mut engine);
    let still_in_flight = engine.refresh_in_flight();
    println!(
        "\nbackground re-fit in flight: {still_in_flight} (reads answer from checksum {during})"
    );
    if still_in_flight {
        // The swap only ever happens inside a handle call on this thread,
        // so a read taken while the re-fit is still in flight is
        // guaranteed to have come from the old snapshot.
        assert_eq!(during, before, "pre-swap reads serve the old snapshot");
    }

    // Quiesce: wait for the swap, then the arrivals are first-class.
    let status =
        Json::parse(&engine.handle_line(r#"{"op":"refresh_status","wait":true}"#)).unwrap();
    assert_eq!(status.get("in_flight"), Some(&Json::Bool(false)));
    let outcome = status.get("last_outcome").unwrap();
    println!(
        "background refresh landed: {} objects added in {} EM iterations; checksum {} → {}",
        outcome.get("objects_added").unwrap().as_usize().unwrap(),
        outcome.get("em_iterations").unwrap().as_usize().unwrap(),
        before,
        checksum(&mut engine),
    );
    assert_eq!(engine.refreshes(), 1);
    for name in ["BT0", "BT1"] {
        let m = Json::parse(
            &engine.handle_line(&format!(r#"{{"op":"membership","object":"{name}"}}"#)),
        )
        .unwrap();
        assert_eq!(m.get("ok"), Some(&Json::Bool(true)), "{name} is served");
        println!(
            "  {name}: cluster {}",
            m.get("cluster").unwrap().as_usize().unwrap()
        );
    }
}
