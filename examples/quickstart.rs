//! Quickstart: build a tiny heterogeneous network by hand, cluster it with
//! GenClus, and inspect every model output.
//!
//! The scenario is the paper's motivating example in miniature: users with
//! (mostly missing) profile text, books they like, and friendships. We want
//! to cluster users *by interest*, so the text attribute defines the
//! purpose, and GenClus figures out that `likes` links are informative for
//! it while random `friend` links are not.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use genclus::prelude::*;

fn main() {
    // ---- 1. Declare the schema: object types, relations, attributes.
    let mut schema = Schema::new();
    let user = schema.add_object_type("user");
    let book = schema.add_object_type("book");
    let likes = schema.add_relation("likes", user, book);
    let liked_by = schema.add_relation("liked_by", book, user);
    let friend = schema.add_relation("friend", user, user);
    // Vocabulary: 0-2 are "politics" terms, 3-5 are "sports" terms.
    let text = schema.add_categorical_attribute("interests", 6);

    // ---- 2. Build the network. Two interest groups of 4 users each; only
    // one user per group wrote anything in their profile (incomplete
    // attributes!), and two books per group anchor the `likes` structure.
    let mut b = HinBuilder::new(schema);
    let users: Vec<ObjectId> = (0..8)
        .map(|i| b.add_object(user, format!("user-{i}")))
        .collect();
    let books: Vec<ObjectId> = (0..4)
        .map(|i| b.add_object(book, format!("book-{i}")))
        .collect();

    // Group 0 (users 0-3) likes books 0-1; group 1 (users 4-7) likes 2-3.
    for &u in &users[..4] {
        for &bk in &books[..2] {
            b.add_link_pair(u, bk, likes, liked_by, 1.0).unwrap();
        }
    }
    for &u in &users[4..] {
        for &bk in &books[2..] {
            b.add_link_pair(u, bk, likes, liked_by, 1.0).unwrap();
        }
    }
    // Friendships cut across groups — they carry no interest signal here.
    for (a, c) in [(0usize, 4usize), (1, 5), (2, 6), (3, 7), (0, 7), (4, 3)] {
        b.add_link(users[a], users[c], friend, 1.0).unwrap();
        b.add_link(users[c], users[a], friend, 1.0).unwrap();
    }
    // The only attribute observations: one profile per group.
    b.add_terms(users[0], text, &[0, 1, 2, 0]).unwrap(); // politics terms
    b.add_terms(users[4], text, &[3, 4, 5, 5]).unwrap(); // sports terms
    let network = b.build().unwrap();
    println!("network:\n{}", NetworkStats::of(&network));

    // ---- 3. Configure and fit GenClus.
    let config = GenClusConfig::new(2, vec![text])
        .with_seed(42)
        .with_outer_iters(5);
    let fit = GenClus::new(config)
        .expect("valid config")
        .fit(&network)
        .expect("fit succeeds");

    // ---- 4. Inspect the outputs.
    println!("learned link-type strengths (higher = more informative):");
    for (r, def) in network.schema().relations() {
        println!("  {:<10} gamma = {:.2}", def.name, fit.model.strength(r));
    }

    println!("\nsoft memberships:");
    for v in network.objects() {
        let row = fit.model.membership(v);
        println!(
            "  {:<8} [{:.3}, {:.3}]",
            network.object_name(v),
            row[0],
            row[1]
        );
    }

    // Users follow their liked books, not their cross-group friends.
    let labels = fit.model.hard_labels();
    assert_eq!(labels[0], labels[1], "group 0 users should agree");
    assert_eq!(labels[4], labels[5], "group 1 users should agree");
    assert_ne!(labels[0], labels[4], "the two groups should separate");
    println!("\ninterest groups recovered correctly.");

    // The likes/liked_by relations should dominate the friendship relation.
    let g_likes = fit.model.strength(likes);
    let g_friend = fit.model.strength(friend);
    println!("likes strength {g_likes:.2} vs friend strength {g_friend:.2}");
}
