//! **genclus** — a from-scratch Rust implementation of
//! *Relation Strength-Aware Clustering of Heterogeneous Information Networks
//! with Incomplete Attributes* (Sun, Aggarwal, Han; VLDB 2012).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`hin`] | `genclus-hin` | heterogeneous network substrate: schema, builder, CSR graph, attribute store |
//! | [`core`] | `genclus-core` | the GenClus algorithm: EM cluster optimization + Newton strength learning |
//! | [`stats`] | `genclus-stats` | numerics: special functions, simplex ops, Dirichlet, small linear algebra |
//! | [`baselines`] | `genclus-baselines` | NetPLSA, iTopicModel, k-means, spectral combine |
//! | [`datagen`] | `genclus-datagen` | weather sensor generator (Appendix C), synthetic DBLP four-area corpus |
//! | [`eval`] | `genclus-eval` | NMI, MAP link prediction, label utilities |
//! | [`serve`] | `genclus-serve` | model snapshots, online fold-in of new objects, batched JSON-lines query engine |
//!
//! # Quickstart
//!
//! ```
//! use genclus::prelude::*;
//!
//! // Generate a small weather sensor network (paper Appendix C) ...
//! let net = genclus::datagen::weather::generate(&WeatherConfig {
//!     n_temp: 80,
//!     n_precip: 40,
//!     k_neighbors: 3,
//!     n_obs: 5,
//!     pattern: PatternSetting::Setting1,
//!     seed: 1,
//! });
//!
//! // ... cluster it with GenClus over both (incomplete) attributes ...
//! let config = GenClusConfig::new(4, vec![net.temp_attr, net.precip_attr])
//!     .with_seed(1)
//!     .with_outer_iters(3);
//! let fit = GenClus::new(config).unwrap().fit(&net.graph).unwrap();
//!
//! // ... and evaluate against the generator's ground truth.
//! let nmi = genclus::eval::nmi(&fit.model.hard_labels(), &net.labels);
//! assert!(nmi > 0.3, "GenClus should recover most of the ring structure");
//! ```

pub use genclus_baselines as baselines;
pub use genclus_core as core;
pub use genclus_datagen as datagen;
pub use genclus_eval as eval;
pub use genclus_hin as hin;
pub use genclus_serve as serve;
pub use genclus_stats as stats;

/// One-stop prelude combining the sub-crate preludes.
pub mod prelude {
    pub use genclus_baselines::prelude::*;
    pub use genclus_core::prelude::*;
    pub use genclus_datagen::prelude::*;
    pub use genclus_eval::prelude::*;
    pub use genclus_hin::prelude::*;
    pub use genclus_serve::prelude::*;
    pub use genclus_stats::{MembershipMatrix, NewtonOptions};
}
