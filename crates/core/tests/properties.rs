//! Property-based tests for the GenClus core: invariants that must hold on
//! arbitrary networks, memberships and seeds.

use genclus_core::prelude::*;
use genclus_hin::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// A random heterogeneous network with two object types, three relations and
/// one attribute of each kind.
fn random_network(seed: u64, n: usize, extra_links: usize) -> HinGraph {
    let mut rng = genclus_stats::seeded_rng(seed);
    let mut s = Schema::new();
    let ta = s.add_object_type("A");
    let tb = s.add_object_type("B");
    let ab = s.add_relation("ab", ta, tb);
    let ba = s.add_relation("ba", tb, ta);
    let aa = s.add_relation("aa", ta, ta);
    let text = s.add_categorical_attribute("text", 12);
    let num = s.add_numerical_attribute("num");
    let mut b = HinBuilder::new(s);
    let a_ids: Vec<_> = (0..n).map(|i| b.add_object(ta, format!("a{i}"))).collect();
    let b_ids: Vec<_> = (0..n).map(|i| b.add_object(tb, format!("b{i}"))).collect();
    // A ring so the network is connected.
    for i in 0..n {
        b.add_link(a_ids[i], b_ids[i], ab, 1.0).unwrap();
        b.add_link(b_ids[i], a_ids[(i + 1) % n], ba, 1.0).unwrap();
    }
    for _ in 0..extra_links {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            b.add_link(a_ids[i], a_ids[j], aa, rng.gen_range(0.5..3.0))
                .unwrap();
        }
    }
    for &v in &a_ids {
        if rng.gen_bool(0.6) {
            b.add_terms(v, text, &[rng.gen_range(0..12), rng.gen_range(0..12)])
                .unwrap();
        }
    }
    for &v in &b_ids {
        if rng.gen_bool(0.6) {
            b.add_numeric(v, num, rng.gen_range(-4.0..4.0)).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A full fit never violates the simplex invariant, never produces a
    /// negative strength, and its objectives are finite.
    #[test]
    fn fit_invariants(seed in any::<u64>(), n in 4usize..12, extra in 0usize..20) {
        let g = random_network(seed, n, extra);
        let cfg = GenClusConfig::new(3, vec![AttributeId(0), AttributeId(1)])
            .with_seed(seed)
            .with_outer_iters(3);
        let fit = GenClus::new(cfg).unwrap().fit(&g).unwrap();
        for i in 0..fit.model.theta.n_objects() {
            let row = fit.model.theta.row(i);
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&x| x > 0.0));
        }
        prop_assert!(fit.model.gamma.iter().all(|&x| x >= 0.0 && x.is_finite()));
        for r in &fit.history.records {
            prop_assert!(r.g1.is_finite());
            prop_assert!(r.g2.is_finite());
        }
    }

    /// The same seed gives bit-identical strengths (full determinism).
    #[test]
    fn fit_is_deterministic(seed in any::<u64>()) {
        let g = random_network(seed, 6, 8);
        let cfg = || GenClusConfig::new(2, vec![AttributeId(1)])
            .with_seed(seed ^ 0xabcd)
            .with_outer_iters(2);
        let f1 = GenClus::new(cfg()).unwrap().fit(&g).unwrap();
        let f2 = GenClus::new(cfg()).unwrap().fit(&g).unwrap();
        prop_assert_eq!(f1.model.gamma.clone(), f2.model.gamma.clone());
        prop_assert!(f1.model.theta.max_abs_diff(&f2.model.theta) == 0.0);
    }

    /// Parallel fits agree with serial fits on Θ to float round-off.
    #[test]
    fn parallel_fit_matches_serial(seed in any::<u64>()) {
        let g = random_network(seed, 8, 10);
        let base = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(3)
            .with_outer_iters(2);
        let serial = GenClus::new(base.clone().with_threads(1)).unwrap().fit(&g).unwrap();
        let parallel = GenClus::new(base.with_threads(3)).unwrap().fit(&g).unwrap();
        prop_assert!(serial.model.theta.max_abs_diff(&parallel.model.theta) < 1e-6);
        for (a, b) in serial.model.gamma.iter().zip(&parallel.model.gamma) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Similarity rankings contain every candidate exactly once, best first.
    #[test]
    fn ranking_is_a_permutation(seed in any::<u64>(), n in 3usize..10) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let theta = genclus_stats::MembershipMatrix::random(n, 3, &mut rng);
        let candidates: Vec<ObjectId> = (1..n).map(ObjectId::from_index).collect();
        for sim in Similarity::ALL {
            let ranked = rank_candidates(&theta, ObjectId(0), &candidates, sim);
            prop_assert_eq!(ranked.len(), candidates.len());
            let mut seen: Vec<u32> = ranked.iter().map(|(o, _)| o.0).collect();
            seen.sort_unstable();
            let expected: Vec<u32> = (1..n as u32).collect();
            prop_assert_eq!(seen, expected);
            for w in ranked.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
