//! The GenClus driver (Algorithm 1).
//!
//! Alternates cluster optimization (EM over `Θ, β` with `γ` fixed) and
//! strength learning (projected Newton over `γ` with `Θ, β` fixed) until the
//! strength vector stabilizes or the outer iteration budget is spent. The
//! two steps mutually enhance each other: better clusters make the strength
//! estimates sharper, and sharper strengths weight the right neighbors in
//! the next EM pass.

use crate::attr_model::ClusterComponents;
use crate::config::GenClusConfig;
use crate::em::EmEngine;
use crate::error::GenClusError;
use crate::history::{OuterIterationRecord, RunHistory};
use crate::init::{initialize, validate_attributes};
use crate::model::GenClusModel;
use crate::objective::g1;
use crate::strength::StrengthLearner;
use genclus_hin::HinGraph;
use genclus_stats::MembershipMatrix;
use std::time::Instant;

/// Everything [`GenClus::fit`] returns.
#[derive(Debug, Clone)]
pub struct GenClusFit {
    /// The fitted model.
    pub model: GenClusModel,
    /// Per-outer-iteration history.
    pub history: RunHistory,
}

/// Observer callback payload: the state at the end of one outer iteration.
#[derive(Debug)]
pub struct IterationView<'a> {
    /// 1-based outer iteration.
    pub iteration: usize,
    /// Memberships after this iteration's cluster optimization.
    pub theta: &'a MembershipMatrix,
    /// Strengths after this iteration's strength learning.
    pub gamma: &'a [f64],
    /// Components after this iteration's cluster optimization.
    pub components: &'a [ClusterComponents],
}

/// The GenClus algorithm, configured and ready to fit networks.
#[derive(Debug, Clone)]
pub struct GenClus {
    config: GenClusConfig,
}

impl GenClus {
    /// Validates `config` and builds the runner.
    pub fn new(config: GenClusConfig) -> Result<Self, GenClusError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &GenClusConfig {
        &self.config
    }

    /// Fits the model to `graph`.
    pub fn fit(&self, graph: &HinGraph) -> Result<GenClusFit, GenClusError> {
        self.fit_observed(graph, |_| {})
    }

    /// Fits the model, invoking `observer` after every outer iteration —
    /// used by the Fig. 10 experiment to track accuracy and strengths over
    /// iterations.
    pub fn fit_observed(
        &self,
        graph: &HinGraph,
        mut observer: impl FnMut(IterationView<'_>),
    ) -> Result<GenClusFit, GenClusError> {
        let cfg = &self.config;
        validate_attributes(graph, cfg)?;
        if graph.n_objects() == 0 {
            return Err(GenClusError::EmptyNetwork);
        }

        // "For the initialization of γ in the outer iteration, we initialize
        // it as an all-1 vector" (§4.3) — configurable but defaulting to 1.
        let n_relations = graph.schema().n_relations();
        let mut gamma = vec![cfg.gamma_init; n_relations];

        let (mut theta, mut components) = initialize(graph, cfg, &gamma)?;

        let mut engine = EmEngine::new(
            graph,
            &cfg.attributes,
            cfg.n_clusters,
            cfg.threads,
            cfg.beta_floor,
            cfg.variance_floor,
        )
        .with_smoothing(cfg.theta_smoothing);
        let learner = StrengthLearner::new(cfg.sigma, cfg.newton.clone());

        let mut history = RunHistory::default();
        for iteration in 1..=cfg.outer_iters {
            // Step 1: cluster optimization at fixed γ.
            let em_start = Instant::now();
            let (new_theta, new_components, em_iterations) =
                engine.run(theta, components, &gamma, cfg.em_iters, cfg.em_tol);
            let em_seconds = em_start.elapsed().as_secs_f64();
            theta = new_theta;
            components = new_components;
            let g1_value = g1(graph, &cfg.attributes, &theta, &components, &gamma);

            // Step 2: strength learning at fixed (Θ, β).
            let s_start = Instant::now();
            let outcome = if n_relations > 0 {
                learner.learn(graph, &theta, &gamma)
            } else {
                crate::strength::StrengthOutcome {
                    gamma: Vec::new(),
                    objective: 0.0,
                    iterations: 0,
                    converged: true,
                }
            };
            let strength_seconds = s_start.elapsed().as_secs_f64();
            let gamma_delta = outcome
                .gamma
                .iter()
                .zip(&gamma)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            gamma = outcome.gamma;

            history.records.push(OuterIterationRecord {
                iteration,
                gamma: gamma.clone(),
                g1: g1_value,
                g2: outcome.objective,
                em_iterations,
                em_seconds,
                strength_seconds,
            });
            observer(IterationView {
                iteration,
                theta: &theta,
                gamma: &gamma,
                components: &components,
            });

            if gamma_delta < cfg.gamma_tol && iteration > 1 {
                break;
            }
        }

        Ok(GenClusFit {
            model: GenClusModel {
                theta,
                gamma,
                components,
                attributes: cfg.attributes.clone(),
                theta_smoothing: cfg.theta_smoothing,
            },
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::{AttributeId, HinBuilder, ObjectId, Schema};
    use rand::Rng;

    /// Builds a two-type network with two planted clusters where relation
    /// `good` is cluster-consistent and relation `noise` is random. Anchors
    /// of type A carry Gaussian observations; type B objects carry none.
    fn planted(seed: u64, n_per_cluster: usize) -> genclus_hin::HinGraph {
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut s = Schema::new();
        let ta = s.add_object_type("A");
        let tb = s.add_object_type("B");
        let good = s.add_relation("good", ta, tb);
        let good_inv = s.add_relation("good_inv", tb, ta);
        let noise = s.add_relation("noise", ta, ta);
        let _x = s.add_numerical_attribute("x");
        let mut b = HinBuilder::new(s);
        let n = 2 * n_per_cluster;
        let a_ids: Vec<_> = (0..n).map(|i| b.add_object(ta, format!("a{i}"))).collect();
        let b_ids: Vec<_> = (0..n).map(|i| b.add_object(tb, format!("b{i}"))).collect();
        let cl = |i: usize| i % 2;
        for i in 0..n {
            // A deterministic anchor pair so no B object is ever isolated.
            b.add_link(a_ids[i], b_ids[i], good, 1.0).unwrap();
            b.add_link(b_ids[i], a_ids[i], good_inv, 1.0).unwrap();
            // Consistent A→B and B→A links within the same cluster.
            let mut placed = 0;
            while placed < 3 {
                let j = rng.gen_range(0..n);
                if cl(j) == cl(i) {
                    b.add_link(a_ids[i], b_ids[j], good, 1.0).unwrap();
                    b.add_link(b_ids[j], a_ids[i], good_inv, 1.0).unwrap();
                    placed += 1;
                }
            }
            // Noise A→A links, cluster-agnostic.
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    b.add_link(a_ids[i], a_ids[j], noise, 1.0).unwrap();
                }
            }
            // Observations on A only — B is fully attribute-less.
            let mu = if cl(i) == 0 { -3.0 } else { 3.0 };
            for _ in 0..3 {
                b.add_numeric(a_ids[i], AttributeId(0), mu + 0.3 * rng.gen::<f64>())
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    fn fit(seed: u64) -> GenClusFit {
        let g = planted(seed, 12);
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(seed)
            .with_outer_iters(6);
        GenClus::new(cfg).unwrap().fit(&g).unwrap()
    }

    #[test]
    fn recovers_planted_clusters_on_both_types() {
        let out = fit(1);
        let labels = out.model.hard_labels();
        let n = 24;
        // Within type A, planted cluster 0 vs 1 must be separated.
        let a0 = labels[0];
        for i in (0..n).step_by(2) {
            assert_eq!(labels[i], a0, "A objects of cluster 0 must agree");
        }
        assert_ne!(labels[0], labels[1], "the two clusters must differ");
        // Attribute-less B objects follow their linked A objects.
        for i in 0..n {
            let b_label = labels[n + i];
            assert_eq!(
                b_label,
                labels[i % 2],
                "B object {i} should inherit its cluster's label"
            );
        }
    }

    #[test]
    fn learns_higher_strength_for_consistent_relations() {
        let out = fit(2);
        let g = planted(2, 12);
        let good = g.schema().relation_by_name("good").unwrap();
        let noise = g.schema().relation_by_name("noise").unwrap();
        assert!(
            out.model.strength(good) > out.model.strength(noise),
            "good {} must beat noise {}",
            out.model.strength(good),
            out.model.strength(noise)
        );
    }

    #[test]
    fn history_has_records_and_positive_times() {
        let out = fit(3);
        assert!(!out.history.records.is_empty());
        for r in &out.history.records {
            assert!(r.em_iterations >= 1);
            assert!(r.em_seconds >= 0.0);
            assert_eq!(r.gamma.len(), 3);
        }
    }

    #[test]
    fn observer_sees_every_iteration() {
        let g = planted(4, 8);
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(4)
            .with_outer_iters(4);
        let mut seen = Vec::new();
        let out = GenClus::new(cfg)
            .unwrap()
            .fit_observed(&g, |view| {
                assert_eq!(view.theta.n_objects(), g.n_objects());
                assert_eq!(view.gamma.len(), 3);
                seen.push(view.iteration);
            })
            .unwrap();
        assert_eq!(seen.len(), out.history.n_iterations());
        assert_eq!(seen.first(), Some(&1));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = fit(9);
        let b = fit(9);
        assert_eq!(a.model.gamma, b.model.gamma);
        assert!(a.model.theta.max_abs_diff(&b.model.theta) < 1e-15);
    }

    #[test]
    fn rejects_invalid_config_and_empty_network() {
        assert!(GenClus::new(GenClusConfig::new(1, vec![AttributeId(0)])).is_err());
        let mut s = Schema::new();
        let _ = s.add_object_type("t");
        let _ = s.add_numerical_attribute("x");
        let empty = HinBuilder::new(s).build().unwrap();
        let runner = GenClus::new(GenClusConfig::new(2, vec![AttributeId(0)])).unwrap();
        assert!(matches!(
            runner.fit(&empty),
            Err(GenClusError::EmptyNetwork)
        ));
    }

    #[test]
    fn membership_rows_remain_simplex_after_full_fit() {
        let out = fit(5);
        for i in 0..out.model.theta.n_objects() {
            let row = out.model.theta.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x > 0.0));
        }
        let _ = ObjectId(0);
    }
}
