//! The GenClus driver (Algorithm 1).
//!
//! Alternates cluster optimization (EM over `Θ, β` with `γ` fixed) and
//! strength learning (projected Newton over `γ` with `Θ, β` fixed) until the
//! strength vector stabilizes or the outer iteration budget is spent. The
//! two steps mutually enhance each other: better clusters make the strength
//! estimates sharper, and sharper strengths weight the right neighbors in
//! the next EM pass.

use crate::attr_model::ClusterComponents;
use crate::config::GenClusConfig;
use crate::em::EmEngine;
use crate::error::GenClusError;
use crate::history::{OuterIterationRecord, RunHistory};
use crate::init::{initialize, validate_attributes};
use crate::model::GenClusModel;
use crate::objective::g1;
use crate::strength::StrengthLearner;
use genclus_hin::HinGraph;
use genclus_stats::MembershipMatrix;
use std::time::Instant;

/// Everything [`GenClus::fit`] returns.
#[derive(Debug, Clone)]
pub struct GenClusFit {
    /// The fitted model.
    pub model: GenClusModel,
    /// Per-outer-iteration history.
    pub history: RunHistory,
}

/// Observer callback payload: the state at the end of one outer iteration.
#[derive(Debug)]
pub struct IterationView<'a> {
    /// 1-based outer iteration.
    pub iteration: usize,
    /// Memberships after this iteration's cluster optimization.
    pub theta: &'a MembershipMatrix,
    /// Strengths after this iteration's strength learning.
    pub gamma: &'a [f64],
    /// Components after this iteration's cluster optimization.
    pub components: &'a [ClusterComponents],
}

/// The GenClus algorithm, configured and ready to fit networks.
#[derive(Debug, Clone)]
pub struct GenClus {
    config: GenClusConfig,
}

impl GenClus {
    /// Validates `config` and builds the runner.
    pub fn new(config: GenClusConfig) -> Result<Self, GenClusError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &GenClusConfig {
        &self.config
    }

    /// Fits the model to `graph`.
    pub fn fit(&self, graph: &HinGraph) -> Result<GenClusFit, GenClusError> {
        self.fit_observed(graph, |_| {})
    }

    /// Fits the model, invoking `observer` after every outer iteration —
    /// used by the Fig. 10 experiment to track accuracy and strengths over
    /// iterations.
    pub fn fit_observed(
        &self,
        graph: &HinGraph,
        observer: impl FnMut(IterationView<'_>),
    ) -> Result<GenClusFit, GenClusError> {
        let cfg = &self.config;
        validate_attributes(graph, cfg)?;
        if graph.n_objects() == 0 {
            return Err(GenClusError::EmptyNetwork);
        }

        // "For the initialization of γ in the outer iteration, we initialize
        // it as an all-1 vector" (§4.3) — configurable but defaulting to 1.
        let n_relations = graph.schema().n_relations();
        let gamma = vec![cfg.gamma_init; n_relations];

        let (theta, components) = initialize(graph, cfg, &gamma)?;
        self.fit_loop(graph, theta, components, gamma, observer)
    }

    /// Warm-start fit: seeds the alternation from an existing fitted state
    /// `(Θ, β, γ)` instead of [`crate::config::InitStrategy`], skipping the
    /// best-of-seeds warmup entirely.
    ///
    /// This is the refresh path of a long-running serving process: after
    /// incremental [`genclus_hin::GraphDelta`] appends, re-fitting from the
    /// loaded model amortizes the work already done — a converged snapshot
    /// with no appended objects is (numerically) a fixed point of this call,
    /// and a lightly grown network converges in far fewer EM iterations
    /// than a cold fit (`bench_refresh` measures the gap).
    ///
    /// `warm.theta` must cover every object of `graph` — callers growing
    /// the network first extend `Θ` with fold-in rows for the new objects
    /// (see `genclus-serve`). Shape or attribute mismatches yield
    /// [`GenClusError::InvalidConfig`] with field `"warm_start"`.
    pub fn fit_warm(
        &self,
        graph: &HinGraph,
        warm: &GenClusModel,
    ) -> Result<GenClusFit, GenClusError> {
        self.fit_warm_observed(graph, warm, |_| {})
    }

    /// [`Self::fit_warm`] with a per-outer-iteration observer.
    pub fn fit_warm_observed(
        &self,
        graph: &HinGraph,
        warm: &GenClusModel,
        observer: impl FnMut(IterationView<'_>),
    ) -> Result<GenClusFit, GenClusError> {
        let cfg = &self.config;
        validate_attributes(graph, cfg)?;
        if graph.n_objects() == 0 {
            return Err(GenClusError::EmptyNetwork);
        }
        let mismatch = |reason: String| GenClusError::InvalidConfig {
            field: "warm_start",
            reason,
        };
        if warm.theta.n_objects() != graph.n_objects() {
            return Err(mismatch(format!(
                "Θ covers {} objects but the network has {} — extend Θ (e.g. with fold-in rows) \
                 before warm-starting",
                warm.theta.n_objects(),
                graph.n_objects()
            )));
        }
        if warm.theta.n_clusters() != cfg.n_clusters {
            return Err(mismatch(format!(
                "Θ has {} clusters but the config asks for {}",
                warm.theta.n_clusters(),
                cfg.n_clusters
            )));
        }
        if warm.gamma.len() != graph.schema().n_relations() {
            return Err(mismatch(format!(
                "γ covers {} relations but the schema declares {}",
                warm.gamma.len(),
                graph.schema().n_relations()
            )));
        }
        if warm.gamma.iter().any(|&g| !(g >= 0.0 && g.is_finite())) {
            return Err(mismatch("γ entries must be finite and non-negative".into()));
        }
        // Θ content check, not just shape: snapshot loading only verifies a
        // checksum, and a NaN seed would propagate through the kernel and
        // come back as an Ok(NaN-filled) model.
        if warm
            .theta
            .as_slice()
            .iter()
            .any(|&t| !(t >= 0.0 && t.is_finite()))
        {
            return Err(mismatch("Θ entries must be finite and non-negative".into()));
        }
        if warm.attributes != cfg.attributes {
            return Err(mismatch(
                "the warm model's attribute subset differs from the config's".into(),
            ));
        }
        if warm.components.len() != cfg.attributes.len() {
            return Err(mismatch(format!(
                "{} components for {} attributes",
                warm.components.len(),
                cfg.attributes.len()
            )));
        }
        for (&a, comp) in warm.attributes.iter().zip(&warm.components) {
            let kind_ok = match (&graph.schema().attribute(a).kind, comp) {
                (
                    genclus_hin::AttributeKind::Categorical { vocab_size },
                    ClusterComponents::Categorical(c),
                ) => c.vocab_size() == *vocab_size,
                (genclus_hin::AttributeKind::Numerical, ClusterComponents::Gaussian(_)) => true,
                _ => false,
            };
            if !kind_ok {
                return Err(mismatch(format!(
                    "component kind/shape of attribute {a} does not match the schema"
                )));
            }
            if comp.n_clusters() != cfg.n_clusters {
                return Err(mismatch(format!(
                    "components of attribute {a} carry {} clusters but the config asks for {}",
                    comp.n_clusters(),
                    cfg.n_clusters
                )));
            }
        }
        self.fit_loop(
            graph,
            warm.theta.clone(),
            warm.components.clone(),
            warm.gamma.clone(),
            observer,
        )
    }

    /// The shared outer alternation (Algorithm 1) from an explicit starting
    /// state — `fit_observed` arrives here via `InitStrategy`,
    /// `fit_warm_observed` via a previously fitted model.
    fn fit_loop(
        &self,
        graph: &HinGraph,
        mut theta: MembershipMatrix,
        mut components: Vec<ClusterComponents>,
        mut gamma: Vec<f64>,
        mut observer: impl FnMut(IterationView<'_>),
    ) -> Result<GenClusFit, GenClusError> {
        let cfg = &self.config;
        let n_relations = graph.schema().n_relations();
        let mut engine = EmEngine::new(
            graph,
            &cfg.attributes,
            cfg.n_clusters,
            cfg.threads,
            cfg.beta_floor,
            cfg.variance_floor,
        )
        .with_smoothing(cfg.theta_smoothing);
        let learner = StrengthLearner::new(cfg.sigma, cfg.newton.clone());

        let mut history = RunHistory::default();
        // Θ-movement tracking exists only to feed the trace hook; skip the
        // clone entirely when nobody is listening.
        let tracing = cfg.trace.is_set();
        for iteration in 1..=cfg.outer_iters {
            let prev_theta = tracing.then(|| theta.clone());
            // Step 1: cluster optimization at fixed γ.
            let em_start = Instant::now();
            let (new_theta, new_components, em_iterations) =
                engine.run(theta, components, &gamma, cfg.em_iters, cfg.em_tol);
            let em_seconds = em_start.elapsed().as_secs_f64();
            theta = new_theta;
            components = new_components;
            let g1_value = g1(graph, &cfg.attributes, &theta, &components, &gamma);

            // Step 2: strength learning at fixed (Θ, β).
            let s_start = Instant::now();
            let outcome = if n_relations > 0 {
                learner.learn(graph, &theta, &gamma)
            } else {
                crate::strength::StrengthOutcome {
                    gamma: Vec::new(),
                    objective: 0.0,
                    iterations: 0,
                    converged: true,
                }
            };
            let strength_seconds = s_start.elapsed().as_secs_f64();
            let gamma_delta = outcome
                .gamma
                .iter()
                .zip(&gamma)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            gamma = outcome.gamma;

            history.records.push(OuterIterationRecord {
                iteration,
                gamma: gamma.clone(),
                g1: g1_value,
                g2: outcome.objective,
                em_iterations,
                em_seconds,
                strength_seconds,
            });
            if tracing {
                let theta_movement = prev_theta.map_or(0.0, |p| theta.max_abs_diff(&p));
                cfg.trace.event(
                    "em_outer_iteration",
                    &[
                        ("iteration", iteration as f64),
                        ("em_iterations", em_iterations as f64),
                        ("em_seconds", em_seconds),
                        ("strength_seconds", strength_seconds),
                        ("objective_g1", g1_value),
                        ("objective_g2", outcome.objective),
                        ("theta_movement", theta_movement),
                        ("gamma_delta", gamma_delta),
                        ("queue_depth", engine.queue_depth() as f64),
                    ],
                );
            }
            observer(IterationView {
                iteration,
                theta: &theta,
                gamma: &gamma,
                components: &components,
            });

            if gamma_delta < cfg.gamma_tol && iteration > 1 {
                break;
            }
        }

        Ok(GenClusFit {
            model: GenClusModel {
                theta,
                gamma,
                components,
                attributes: cfg.attributes.clone(),
                theta_smoothing: cfg.theta_smoothing,
            },
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::{AttributeId, HinBuilder, ObjectId, Schema};
    use rand::Rng;

    /// Builds a two-type network with two planted clusters where relation
    /// `good` is cluster-consistent and relation `noise` is random. Anchors
    /// of type A carry Gaussian observations; type B objects carry none.
    fn planted(seed: u64, n_per_cluster: usize) -> genclus_hin::HinGraph {
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut s = Schema::new();
        let ta = s.add_object_type("A");
        let tb = s.add_object_type("B");
        let good = s.add_relation("good", ta, tb);
        let good_inv = s.add_relation("good_inv", tb, ta);
        let noise = s.add_relation("noise", ta, ta);
        let _x = s.add_numerical_attribute("x");
        let mut b = HinBuilder::new(s);
        let n = 2 * n_per_cluster;
        let a_ids: Vec<_> = (0..n).map(|i| b.add_object(ta, format!("a{i}"))).collect();
        let b_ids: Vec<_> = (0..n).map(|i| b.add_object(tb, format!("b{i}"))).collect();
        let cl = |i: usize| i % 2;
        for i in 0..n {
            // A deterministic anchor pair so no B object is ever isolated.
            b.add_link(a_ids[i], b_ids[i], good, 1.0).unwrap();
            b.add_link(b_ids[i], a_ids[i], good_inv, 1.0).unwrap();
            // Consistent A→B and B→A links within the same cluster.
            let mut placed = 0;
            while placed < 3 {
                let j = rng.gen_range(0..n);
                if cl(j) == cl(i) {
                    b.add_link(a_ids[i], b_ids[j], good, 1.0).unwrap();
                    b.add_link(b_ids[j], a_ids[i], good_inv, 1.0).unwrap();
                    placed += 1;
                }
            }
            // Noise A→A links, cluster-agnostic.
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    b.add_link(a_ids[i], a_ids[j], noise, 1.0).unwrap();
                }
            }
            // Observations on A only — B is fully attribute-less.
            let mu = if cl(i) == 0 { -3.0 } else { 3.0 };
            for _ in 0..3 {
                b.add_numeric(a_ids[i], AttributeId(0), mu + 0.3 * rng.gen::<f64>())
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    fn fit(seed: u64) -> GenClusFit {
        let g = planted(seed, 12);
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(seed)
            .with_outer_iters(6);
        GenClus::new(cfg).unwrap().fit(&g).unwrap()
    }

    #[test]
    fn recovers_planted_clusters_on_both_types() {
        let out = fit(1);
        let labels = out.model.hard_labels();
        let n = 24;
        // Within type A, planted cluster 0 vs 1 must be separated.
        let a0 = labels[0];
        for i in (0..n).step_by(2) {
            assert_eq!(labels[i], a0, "A objects of cluster 0 must agree");
        }
        assert_ne!(labels[0], labels[1], "the two clusters must differ");
        // Attribute-less B objects follow their linked A objects.
        for i in 0..n {
            let b_label = labels[n + i];
            assert_eq!(
                b_label,
                labels[i % 2],
                "B object {i} should inherit its cluster's label"
            );
        }
    }

    #[test]
    fn learns_higher_strength_for_consistent_relations() {
        let out = fit(2);
        let g = planted(2, 12);
        let good = g.schema().relation_by_name("good").unwrap();
        let noise = g.schema().relation_by_name("noise").unwrap();
        assert!(
            out.model.strength(good) > out.model.strength(noise),
            "good {} must beat noise {}",
            out.model.strength(good),
            out.model.strength(noise)
        );
    }

    #[test]
    fn history_has_records_and_positive_times() {
        let out = fit(3);
        assert!(!out.history.records.is_empty());
        for r in &out.history.records {
            assert!(r.em_iterations >= 1);
            assert!(r.em_seconds >= 0.0);
            assert_eq!(r.gamma.len(), 3);
        }
    }

    #[test]
    fn observer_sees_every_iteration() {
        let g = planted(4, 8);
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(4)
            .with_outer_iters(4);
        let mut seen = Vec::new();
        let out = GenClus::new(cfg)
            .unwrap()
            .fit_observed(&g, |view| {
                assert_eq!(view.theta.n_objects(), g.n_objects());
                assert_eq!(view.gamma.len(), 3);
                seen.push(view.iteration);
            })
            .unwrap();
        assert_eq!(seen.len(), out.history.n_iterations());
        assert_eq!(seen.first(), Some(&1));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = fit(9);
        let b = fit(9);
        assert_eq!(a.model.gamma, b.model.gamma);
        assert!(a.model.theta.max_abs_diff(&b.model.theta) < 1e-15);
    }

    #[test]
    fn trace_sink_sees_one_event_per_outer_iteration() {
        let g = planted(5, 8);
        let sink = std::sync::Arc::new(genclus_obs::MemorySink::new());
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(5)
            .with_outer_iters(4)
            .with_trace(sink.clone());
        let out = GenClus::new(cfg).unwrap().fit(&g).unwrap();
        let events = sink.events();
        assert_eq!(events.len(), out.history.n_iterations());
        for (event, record) in events.iter().zip(&out.history.records) {
            assert_eq!(event.name, "em_outer_iteration");
            assert_eq!(event.field("iteration"), Some(record.iteration as f64));
            assert_eq!(
                event.field("em_iterations"),
                Some(record.em_iterations as f64)
            );
            assert_eq!(event.field("objective_g1"), Some(record.g1));
            assert!(event.field("em_seconds").unwrap() >= 0.0);
            assert!(event.field("queue_depth").is_some());
        }
        // The first iteration moves Θ away from the random init.
        assert!(events[0].field("theta_movement").unwrap() > 0.0);
    }

    #[test]
    fn trace_sink_does_not_change_the_fit() {
        let g = planted(9, 8);
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(9)
            .with_outer_iters(4);
        let plain = GenClus::new(cfg.clone()).unwrap().fit(&g).unwrap();
        let traced_cfg = cfg.with_trace(std::sync::Arc::new(genclus_obs::MemorySink::new()));
        let traced = GenClus::new(traced_cfg).unwrap().fit(&g).unwrap();
        assert_eq!(plain.model.gamma, traced.model.gamma);
        assert!(plain.model.theta.max_abs_diff(&traced.model.theta) == 0.0);
    }

    #[test]
    fn rejects_invalid_config_and_empty_network() {
        assert!(GenClus::new(GenClusConfig::new(1, vec![AttributeId(0)])).is_err());
        let mut s = Schema::new();
        let _ = s.add_object_type("t");
        let _ = s.add_numerical_attribute("x");
        let empty = HinBuilder::new(s).build().unwrap();
        let runner = GenClus::new(GenClusConfig::new(2, vec![AttributeId(0)])).unwrap();
        assert!(matches!(
            runner.fit(&empty),
            Err(GenClusError::EmptyNetwork)
        ));
    }

    #[test]
    fn warm_start_from_a_fit_stays_near_the_fixed_point() {
        let g = planted(6, 10);
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(6)
            .with_outer_iters(8);
        let runner = GenClus::new(cfg.clone()).unwrap();
        let cold = runner.fit(&g).unwrap();
        let warm_cfg = cfg.with_warm_start(&cold.model);
        let warm = GenClus::new(warm_cfg)
            .unwrap()
            .fit_warm(&g, &cold.model)
            .unwrap();
        // Warm-starting from a converged state must not wander off: hard
        // labels are preserved and γ stays close.
        assert_eq!(warm.model.hard_labels(), cold.model.hard_labels());
        for (a, b) in warm.model.gamma.iter().zip(&cold.model.gamma) {
            assert!((a - b).abs() < 1e-3, "γ drifted: {a} vs {b}");
        }
        // And it converges in no more total EM iterations than the cold fit.
        let iters = |fit: &GenClusFit| -> usize { fit.history.total_em_iterations() };
        assert!(
            iters(&warm) <= iters(&cold),
            "warm {} EM iterations vs cold {}",
            iters(&warm),
            iters(&cold)
        );
    }

    #[test]
    fn warm_start_rejects_mismatched_seeds() {
        let g = planted(7, 8);
        let cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(7)
            .with_outer_iters(3);
        let runner = GenClus::new(cfg).unwrap();
        let fit = runner.fit(&g).unwrap();

        // Θ row count differing from the network.
        let mut short = fit.model.clone();
        short.theta = genclus_stats::MembershipMatrix::uniform(3, 2);
        assert!(matches!(
            runner.fit_warm(&g, &short),
            Err(GenClusError::InvalidConfig {
                field: "warm_start",
                ..
            })
        ));

        // A NaN Θ entry. The simplex constructors sanitize, but raw access
        // (and hand-built models) can carry one — fit_warm must reject it
        // rather than seed the kernel with it.
        let mut nan_theta = fit.model.clone();
        nan_theta.theta.as_mut_slice()[0] = f64::NAN;
        assert!(matches!(
            runner.fit_warm(&g, &nan_theta),
            Err(GenClusError::InvalidConfig {
                field: "warm_start",
                ..
            })
        ));

        // Components whose cluster count disagrees with K (would index
        // past the component arrays inside the EM kernel).
        let mut short_comps = fit.model.clone();
        short_comps.components = vec![crate::attr_model::ClusterComponents::Gaussian(
            crate::attr_model::GaussianComponents::from_params(vec![0.0], vec![1.0], 1e-6),
        )];
        assert!(matches!(
            runner.fit_warm(&g, &short_comps),
            Err(GenClusError::InvalidConfig {
                field: "warm_start",
                ..
            })
        ));

        // γ arity differing from the schema.
        let mut bad_gamma = fit.model.clone();
        bad_gamma.gamma.pop();
        assert!(matches!(
            runner.fit_warm(&g, &bad_gamma),
            Err(GenClusError::InvalidConfig {
                field: "warm_start",
                ..
            })
        ));

        // Attribute subset differing from the config's.
        let mut bad_attrs = fit.model.clone();
        bad_attrs.attributes = vec![];
        bad_attrs.components = vec![];
        assert!(matches!(
            runner.fit_warm(&g, &bad_attrs),
            Err(GenClusError::InvalidConfig {
                field: "warm_start",
                ..
            })
        ));

        // K differing from the config's.
        let k3 = GenClus::new(GenClusConfig::new(3, vec![AttributeId(0)]).with_seed(7)).unwrap();
        assert!(matches!(
            k3.fit_warm(&g, &fit.model),
            Err(GenClusError::InvalidConfig {
                field: "warm_start",
                ..
            })
        ));
    }

    #[test]
    fn membership_rows_remain_simplex_after_full_fit() {
        let out = fit(5);
        for i in 0..out.model.theta.n_objects() {
            let row = out.model.theta.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x > 0.0));
        }
        let _ = ObjectId(0);
    }
}
