//! **GenClus** — relation strength-aware clustering of heterogeneous
//! information networks with incomplete attributes.
//!
//! This crate implements the model and algorithm of
//!
//! > Yizhou Sun, Charu C. Aggarwal, Jiawei Han.
//! > *Relation Strength-Aware Clustering of Heterogeneous Information
//! > Networks with Incomplete Attributes.* PVLDB 5(5), 2012.
//!
//! Given a heterogeneous network (`genclus-hin`), a user-specified attribute
//! subset defining the clustering purpose, and a cluster count `K`, GenClus
//! learns simultaneously
//!
//! * a soft clustering `Θ` of *every* object — including objects with
//!   partial or no attribute observations, whose memberships are inferred
//!   through their links — and
//! * a non-negative strength `γ(r)` for every link type `r`, quantifying how
//!   much that relation should propagate cluster membership.
//!
//! The two are optimized alternately ([`algorithm::GenClus`]): an EM pass
//! ([`em::EmEngine`]) updates `Θ` and the attribute components `β` for fixed
//! `γ`, then a projected Newton pass ([`strength::StrengthLearner`])
//! re-learns `γ` from the pseudo-log-likelihood of the structural model,
//! whose per-object conditionals are Dirichlet distributions.
//!
//! # Quickstart
//!
//! ```
//! use genclus_core::prelude::*;
//! use genclus_hin::prelude::*;
//!
//! // A tiny network: two "sensor" clusters joined by nearest-neighbor links.
//! let mut schema = Schema::new();
//! let sensor = schema.add_object_type("sensor");
//! let nn = schema.add_relation("nn", sensor, sensor);
//! let reading = schema.add_numerical_attribute("reading");
//!
//! let mut b = HinBuilder::new(schema);
//! let vs: Vec<_> = (0..6).map(|i| b.add_object(sensor, format!("s{i}"))).collect();
//! for group in [[0usize, 1, 2], [3, 4, 5]] {
//!     for &i in &group {
//!         for &j in &group {
//!             if i != j { b.add_link(vs[i], vs[j], nn, 1.0).unwrap(); }
//!         }
//!     }
//! }
//! b.add_numeric(vs[0], reading, -5.0).unwrap(); // only two sensors report —
//! b.add_numeric(vs[3], reading, 5.0).unwrap();  // attributes are incomplete.
//! let network = b.build().unwrap();
//!
//! let config = GenClusConfig::new(2, vec![reading]).with_seed(7);
//! let fit = GenClus::new(config).unwrap().fit(&network).unwrap();
//! let labels = fit.model.hard_labels();
//! assert_eq!(labels[1], labels[0]); // un-instrumented sensors follow links
//! assert_ne!(labels[0], labels[3]);
//! ```

pub mod algorithm;
pub mod attr_model;
pub mod config;
pub mod em;
pub mod em_reference;
pub mod error;
pub mod feature;
pub mod history;
pub mod init;
pub mod model;
pub mod model_selection;
pub mod objective;
pub mod pool;
pub mod prediction;
pub mod strength;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::algorithm::{GenClus, GenClusFit, IterationView};
    pub use crate::attr_model::{CategoricalComponents, ClusterComponents, GaussianComponents};
    pub use crate::config::{GenClusConfig, InitStrategy};
    pub use crate::error::GenClusError;
    pub use crate::feature::FeatureKind;
    pub use crate::history::RunHistory;
    pub use crate::model::GenClusModel;
    pub use crate::model_selection::{best_k_by_bic, select_k, SelectionScore};
    pub use crate::prediction::{rank_candidates, rank_row, top_k, Similarity};
    pub use crate::strength::{StrengthLearner, StrengthOutcome};
}

pub use prelude::*;
