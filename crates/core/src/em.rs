//! Cluster optimization: the EM engine (Algorithm 1, step 1).
//!
//! With the strengths `γ` fixed, GenClus maximizes `g₁(Θ, β)` (Eq. 9) by an
//! EM-style fixed point. One [`EmEngine::step`] performs, for every object
//! `v`:
//!
//! * **E-step** — for every observation `x` of every specified attribute,
//!   the responsibility `p(z_{v,x} = k) ∝ θ_{v,k} · p(x | β_k)` (computed in
//!   log domain for numerical safety);
//! * **M-step (Θ)** — Eq. 10/11/12's update
//!   `θ'_{v,k} ∝ Σ_{e=⟨v,u⟩} γ(φ(e)) w(e) θ_{u,k} + Σ_X Σ_x p(z_{v,x} = k)`,
//!   i.e. a (γ·w)-weighted average of out-neighbor memberships plus the
//!   attribute responsibility mass (objects without observations are driven
//!   purely by their neighbors — this is how incomplete attributes are
//!   handled);
//! * **M-step (β)** — component re-estimation from responsibility-weighted
//!   sufficient statistics.
//!
//! All objects update from the *previous* `Θ` (a Jacobi sweep), which makes
//! the pass embarrassingly parallel: objects are partitioned into contiguous
//! chunks processed by scoped threads, each accumulating its own partial `β`
//! statistics that are merged afterwards (the parallelization the paper
//! reports a 3.19× speedup for on 4 threads).

use crate::attr_model::{ClusterComponents, ComponentAccumulator};
use genclus_hin::{AttributeData, AttributeId, HinGraph};
use genclus_stats::logsumexp::normalize_log_weights;
use genclus_stats::simplex::normalize_floored;
use genclus_stats::MembershipMatrix;

/// Result of one EM iteration.
#[derive(Debug, Clone)]
pub struct EmStepResult {
    /// Updated membership matrix.
    pub theta: MembershipMatrix,
    /// Updated attribute components.
    pub components: Vec<ClusterComponents>,
    /// Max-abs change of any membership entry — the convergence signal.
    pub max_delta: f64,
}

/// Reusable EM engine bound to a network and an attribute subset.
pub struct EmEngine<'g> {
    graph: &'g HinGraph,
    attr_ids: Vec<AttributeId>,
    k: usize,
    threads: usize,
    beta_floor: f64,
    variance_floor: f64,
    theta_smoothing: f64,
}

impl<'g> EmEngine<'g> {
    /// Creates an engine for `graph` clustering into `k` clusters according
    /// to `attr_ids`, using `threads` workers and the raw (un-smoothed)
    /// Eq. 10 update. See [`Self::with_smoothing`].
    pub fn new(
        graph: &'g HinGraph,
        attr_ids: &[AttributeId],
        k: usize,
        threads: usize,
        beta_floor: f64,
        variance_floor: f64,
    ) -> Self {
        Self {
            graph,
            attr_ids: attr_ids.to_vec(),
            k,
            threads: threads.max(1),
            beta_floor,
            variance_floor,
            theta_smoothing: 0.0,
        }
    }

    /// Mixes every updated Θ row with the uniform distribution:
    /// `θ ← (1 − ε)·θ + ε/K` — the relative form of Eq. 15's Dirichlet `+1`
    /// smoothing (see `GenClusConfig::theta_smoothing`).
    pub fn with_smoothing(mut self, epsilon: f64) -> Self {
        assert!((0.0..1.0).contains(&epsilon), "smoothing must be in [0, 1)");
        self.theta_smoothing = epsilon;
        self
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.k
    }

    /// One full E+M iteration from `(theta, components)` under fixed `gamma`.
    pub fn step(
        &self,
        theta: &MembershipMatrix,
        components: &[ClusterComponents],
        gamma: &[f64],
    ) -> EmStepResult {
        debug_assert_eq!(theta.n_objects(), self.graph.n_objects());
        debug_assert_eq!(theta.n_clusters(), self.k);
        debug_assert_eq!(components.len(), self.attr_ids.len());
        debug_assert_eq!(gamma.len(), self.graph.schema().n_relations());

        let n = self.graph.n_objects();
        let tables: Vec<&AttributeData> = self
            .attr_ids
            .iter()
            .map(|&a| self.graph.attribute(a))
            .collect();

        let mut new_theta = MembershipMatrix::uniform(n, self.k);
        let rows_per_chunk = n.div_ceil(self.threads);

        let smoothing = self.theta_smoothing;
        let (accumulators, max_delta) = if self.threads == 1 {
            let mut accs: Vec<ComponentAccumulator> = components
                .iter()
                .map(ComponentAccumulator::zeros_like)
                .collect();
            let delta = process_range(
                self.graph,
                &tables,
                components,
                theta,
                gamma,
                0,
                n,
                new_theta.as_mut_slice(),
                &mut accs,
                self.k,
                smoothing,
            );
            (accs, delta)
        } else {
            let k = self.k;
            let graph = self.graph;
            let chunks: Vec<&mut [f64]> = new_theta.par_chunks_mut(rows_per_chunk).collect();
            let results = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (chunk_idx, chunk) in chunks.into_iter().enumerate() {
                    let tables = &tables;
                    let start = chunk_idx * rows_per_chunk;
                    let end = (start + chunk.len() / k).min(n);
                    handles.push(scope.spawn(move |_| {
                        let mut accs: Vec<ComponentAccumulator> = components
                            .iter()
                            .map(ComponentAccumulator::zeros_like)
                            .collect();
                        let delta = process_range(
                            graph, tables, components, theta, gamma, start, end, chunk,
                            &mut accs, k, smoothing,
                        );
                        (accs, delta)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("EM worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("EM thread scope failed");

            let mut merged: Vec<ComponentAccumulator> = components
                .iter()
                .map(ComponentAccumulator::zeros_like)
                .collect();
            let mut max_delta = 0.0f64;
            for (accs, delta) in results {
                for (m, a) in merged.iter_mut().zip(&accs) {
                    m.merge(a);
                }
                max_delta = max_delta.max(delta);
            }
            (merged, max_delta)
        };

        let new_components: Vec<ClusterComponents> = accumulators
            .iter()
            .zip(components)
            .map(|(acc, prev)| acc.finalize(prev, self.beta_floor, self.variance_floor))
            .collect();

        EmStepResult {
            theta: new_theta,
            components: new_components,
            max_delta,
        }
    }

    /// Runs EM until `max_delta < tol` or `max_iters` iterations; returns the
    /// final state and the iteration count used.
    pub fn run(
        &self,
        mut theta: MembershipMatrix,
        mut components: Vec<ClusterComponents>,
        gamma: &[f64],
        max_iters: usize,
        tol: f64,
    ) -> (MembershipMatrix, Vec<ClusterComponents>, usize) {
        let mut iters = 0;
        for _ in 0..max_iters {
            let out = self.step(&theta, &components, gamma);
            theta = out.theta;
            components = out.components;
            iters += 1;
            if out.max_delta < tol {
                break;
            }
        }
        (theta, components, iters)
    }
}

/// Processes objects `[start, end)`, writing new membership rows into
/// `out_rows` (a flat slice starting at object `start`) and accumulating
/// sufficient statistics into `accs`. Returns the local max-abs delta.
#[allow(clippy::too_many_arguments)]
fn process_range(
    graph: &HinGraph,
    tables: &[&AttributeData],
    components: &[ClusterComponents],
    theta_old: &MembershipMatrix,
    gamma: &[f64],
    start: usize,
    end: usize,
    out_rows: &mut [f64],
    accs: &mut [ComponentAccumulator],
    k: usize,
    smoothing: f64,
) -> f64 {
    let mut resp = vec![0.0f64; k];
    let mut max_delta = 0.0f64;

    for v_idx in start..end {
        let v = genclus_hin::ObjectId::from_index(v_idx);
        let out_row = &mut out_rows[(v_idx - start) * k..(v_idx - start + 1) * k];
        out_row.iter_mut().for_each(|x| *x = 0.0);

        // Link term of Eq. 10: Σ_{e=⟨v,u⟩} γ(φ(e)) w(e) θ_{u,k}.
        for link in graph.out_links(v) {
            let gw = gamma[link.relation.index()] * link.weight;
            if gw == 0.0 {
                continue;
            }
            let tu = theta_old.row(link.endpoint.index());
            for (o, &t) in out_row.iter_mut().zip(tu) {
                *o += gw * t;
            }
        }

        // Attribute term: responsibility mass per cluster, also feeding the
        // component accumulators for the β M-step.
        let tv = theta_old.row(v_idx);
        for ((table, comp), acc) in tables.iter().zip(components).zip(accs.iter_mut()) {
            match (table, comp) {
                (AttributeData::Categorical { .. }, ClusterComponents::Categorical(cat)) => {
                    for &(term, count) in table.term_counts(v) {
                        for (kk, r) in resp.iter_mut().enumerate() {
                            *r = tv[kk].ln() + cat.log_prob(kk, term);
                        }
                        normalize_log_weights(&mut resp);
                        for (kk, &r) in resp.iter().enumerate() {
                            let mass = count * r;
                            out_row[kk] += mass;
                            acc.add_term(kk, term, mass);
                        }
                    }
                }
                (AttributeData::Numerical { .. }, ClusterComponents::Gaussian(gauss)) => {
                    for &x in table.values(v) {
                        for (kk, r) in resp.iter_mut().enumerate() {
                            *r = tv[kk].ln() + gauss.log_pdf(kk, x);
                        }
                        normalize_log_weights(&mut resp);
                        for (kk, &r) in resp.iter().enumerate() {
                            out_row[kk] += r;
                            acc.add_value(kk, x, r);
                        }
                    }
                }
                _ => unreachable!("attribute kind / component kind mismatch"),
            }
        }

        normalize_floored(out_row);
        if smoothing > 0.0 {
            let uniform = smoothing / k as f64;
            out_row
                .iter_mut()
                .for_each(|o| *o = (1.0 - smoothing) * *o + uniform);
        }
        for (o, t) in out_row.iter().zip(tv) {
            max_delta = max_delta.max((o - t).abs());
        }
    }
    max_delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_model::GaussianComponents;
    use genclus_hin::{HinBuilder, Schema};
    use genclus_stats::seeded_rng;

    /// Six objects in two planted clusters {0,1,2} and {3,4,5}; objects 0 and
    /// 3 carry clear numerical observations, the rest carry none and must be
    /// pulled in by links.
    fn planted_network() -> (HinGraph, AttributeId) {
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let r = s.add_relation("nn", t, t);
        let attr = s.add_numerical_attribute("value");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..6).map(|i| b.add_object(t, format!("v{i}"))).collect();
        // Dense intra-cluster links, both directions.
        for group in [[0usize, 1, 2], [3, 4, 5]] {
            for &i in &group {
                for &j in &group {
                    if i != j {
                        b.add_link(vs[i], vs[j], r, 1.0).unwrap();
                    }
                }
            }
        }
        // Observations only at the "anchor" objects — incomplete attributes.
        for x in [-5.0, -5.2, -4.8] {
            b.add_numeric(vs[0], attr, x).unwrap();
        }
        for x in [5.0, 5.2, 4.8] {
            b.add_numeric(vs[3], attr, x).unwrap();
        }
        (b.build().unwrap(), attr)
    }

    fn engine(g: &HinGraph, attr: AttributeId, threads: usize) -> EmEngine<'_> {
        EmEngine::new(g, &[attr], 2, threads, 1e-9, 1e-6)
    }

    fn initial_state(
        g: &HinGraph,
        attr: AttributeId,
        seed: u64,
    ) -> (MembershipMatrix, Vec<ClusterComponents>) {
        let mut rng = seeded_rng(seed);
        let theta = MembershipMatrix::random(g.n_objects(), 2, &mut rng);
        let comps = vec![ClusterComponents::init(
            2,
            g.attribute(attr),
            &mut rng,
            1e-9,
            1e-6,
        )];
        (theta, comps)
    }

    #[test]
    fn step_preserves_simplex_invariant() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 7);
        let eng = engine(&g, attr, 1);
        let out = eng.step(&theta, &comps, &[1.0]);
        for i in 0..g.n_objects() {
            let row = out.theta.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x > 0.0));
        }
        assert!(out.max_delta >= 0.0);
    }

    #[test]
    fn em_recovers_planted_clusters() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 3);
        let eng = engine(&g, attr, 1);
        let (theta, comps, iters) = eng.run(theta, comps, &[1.0], 60, 1e-8);
        assert!(iters >= 2);
        let labels = theta.hard_labels();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3], "the two planted groups must separate");
        // The Gaussian components must land near ±5.
        if let ClusterComponents::Gaussian(gc) = &comps[0] {
            let mut means = [gc.mean(0), gc.mean(1)];
            means.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert!((means[0] + 5.0).abs() < 0.5, "means {means:?}");
            assert!((means[1] - 5.0).abs() < 0.5, "means {means:?}");
        } else {
            panic!("expected Gaussian components");
        }
    }

    #[test]
    fn attributeless_objects_follow_their_neighbors() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 11);
        let eng = engine(&g, attr, 1);
        let (theta, _, _) = eng.run(theta, comps, &[1.0], 60, 1e-8);
        // Object 1 has no observations; its membership must match anchor 0's.
        let anchor = theta.row(0);
        let follower = theta.row(1);
        let k_anchor = genclus_stats::simplex::argmax(anchor);
        assert_eq!(genclus_stats::simplex::argmax(follower), k_anchor);
        assert!(follower[k_anchor] > 0.9);
    }

    #[test]
    fn parallel_step_matches_serial_exactly() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 13);
        let serial = engine(&g, attr, 1).step(&theta, &comps, &[1.0]);
        for threads in [2, 3, 4] {
            let par = engine(&g, attr, threads).step(&theta, &comps, &[1.0]);
            assert!(
                serial.theta.max_abs_diff(&par.theta) < 1e-12,
                "thread count {threads} changed Θ"
            );
            // Partial-accumulator merges reorder float additions; parameters
            // agree to summation round-off, not bit-exactly.
            match (&serial.components[0], &par.components[0]) {
                (ClusterComponents::Gaussian(a), ClusterComponents::Gaussian(b)) => {
                    for k in 0..2 {
                        assert!((a.mean(k) - b.mean(k)).abs() < 1e-9);
                        assert!((a.variance(k) - b.variance(k)).abs() < 1e-9);
                    }
                }
                _ => panic!("expected Gaussian components"),
            }
            assert!((serial.max_delta - par.max_delta).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_gamma_makes_links_irrelevant() {
        let (g, attr) = planted_network();
        // With γ = 0 and no observations, object 1's row comes out uniform.
        let theta = MembershipMatrix::uniform(g.n_objects(), 2);
        let comps = vec![ClusterComponents::Gaussian(GaussianComponents::from_params(
            vec![-5.0, 5.0],
            vec![0.1, 0.1],
            1e-6,
        ))];
        let eng = engine(&g, attr, 1);
        let out = eng.step(&theta, &comps, &[0.0]);
        let row = out.theta.row(1);
        assert!((row[0] - 0.5).abs() < 1e-9, "uniform expected, got {row:?}");
        // While anchor 0 still snaps to its observations.
        assert!(out.theta.row(0)[0] > 0.99);
    }

    #[test]
    fn smoothing_keeps_tails_off_the_floor() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 21);
        // Raw update: anchor memberships collapse towards the floor.
        let raw = engine(&g, attr, 1);
        let (theta_raw, _, _) = raw.run(theta.clone(), comps.clone(), &[1.0], 60, 1e-8);
        // Smoothed update: every entry keeps a visible tail.
        let smoothed = EmEngine::new(&g, &[attr], 2, 1, 1e-9, 1e-6).with_smoothing(0.05);
        let (theta_s, _, _) = smoothed.run(theta, comps, &[1.0], 60, 1e-8);
        let raw_min = theta_raw
            .as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let smooth_min = theta_s
            .as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(smooth_min > 0.01, "smoothed tails too small: {smooth_min}");
        assert!(smooth_min > raw_min);
        // And the planted clusters are still recovered.
        let labels = theta_s.hard_labels();
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn run_converges_and_stops_early() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 5);
        let eng = engine(&g, attr, 1);
        let (_, _, iters) = eng.run(theta, comps, &[1.0], 500, 1e-10);
        assert!(iters < 500, "EM should converge well before 500 iterations");
    }
}
