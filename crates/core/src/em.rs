//! Cluster optimization: the EM engine (Algorithm 1, step 1).
//!
//! With the strengths `γ` fixed, GenClus maximizes `g₁(Θ, β)` (Eq. 9) by an
//! EM-style fixed point. One [`EmEngine::step`] performs, for every object
//! `v`:
//!
//! * **E-step** — for every observation `x` of every specified attribute,
//!   the responsibility `p(z_{v,x} = k) ∝ θ_{v,k} · p(x | β_k)`;
//! * **M-step (Θ)** — Eq. 10/11/12's update
//!   `θ'_{v,k} ∝ Σ_{e=⟨v,u⟩} γ(φ(e)) w(e) θ_{u,k} + Σ_X Σ_x p(z_{v,x} = k)`,
//!   i.e. a (γ·w)-weighted average of out-neighbor memberships plus the
//!   attribute responsibility mass (objects without observations are driven
//!   purely by their neighbors — this is how incomplete attributes are
//!   handled);
//! * **M-step (β)** — component re-estimation from responsibility-weighted
//!   sufficient statistics.
//!
//! # Hot-path invariants
//!
//! The step kernel is deliberately allocation-free and log-table-cached;
//! [`crate::em_reference`] keeps the naive per-observation-`ln`,
//! thread-spawn-per-step kernel around as the provably-equivalent baseline
//! (`cargo run -p genclus-bench --bin bench_em` measures both). The rules
//! the optimized kernel must uphold:
//!
//! * **Jacobi sweep.** Every object's update reads only the *previous* `Θ`
//!   (`theta_old`); the new rows land in a separate output buffer. This is
//!   what makes the pass embarrassingly parallel and makes the result
//!   independent of both object order and thread count.
//! * **Chunk determinism.** Workers process contiguous row ranges and each
//!   row's arithmetic is identical in serial and parallel mode, so `Θ` is
//!   bit-for-bit the same for every thread count (the
//!   `parallel_step_matches_serial_exactly` tests assert ≤ 1e-12, and in
//!   practice the difference is exactly zero). Only the per-thread `β`
//!   accumulator *merge* reorders float additions; components therefore
//!   agree across thread counts to summation round-off, not bit-exactly.
//! * **Log-table caching.** The inner loop evaluates **zero `ln` calls**:
//!   `ln β` lives in a table inside
//!   [`CategoricalComponents`](crate::attr_model::CategoricalComponents)
//!   (for the `g₁` objective; the E-step itself uses the term-major linear
//!   table), and the Gaussian log-pdf constants (`−½ln(2πσ²)`, `1/(2σ²)`)
//!   are cached in
//!   [`GaussianComponents`](crate::attr_model::GaussianComponents).
//!   Categorical responsibilities are formed in the *linear* domain
//!   (`θ_{v,k} · β_{k,l}` is bounded below by the two floors, ≈ 1e-21, so it
//!   cannot underflow). Gaussian responsibilities keep the pdf in the log
//!   domain (`−d²/2σ²` is unbounded below) but fold `θ` in linearly after
//!   the max subtraction — `θ_k·exp(s_k − max s)` has the same normalization
//!   as `exp(ln θ_k + s_k − max)` — and skip the argmax entry's
//!   `exp(0) = 1`, leaving `K − 1` `exp`s and no `ln` per observation.
//! * **Buffer reuse.** Per-thread scratch ([`ThreadScratch`]: `β`
//!   accumulators and the responsibility row) is owned by the engine and
//!   zeroed — never reallocated — on each step;
//!   [`EmEngine::run`] double-buffers `Θ` across iterations (one swap per
//!   iteration, no per-step matrix allocation); the worker threads
//!   themselves are spawned once per engine in a persistent
//!   [`WorkerPool`](crate::pool::WorkerPool), not once per step.
//! * **Scratch is step-local.** Nothing read by a step may survive from the
//!   previous step except through the documented reset (`prepare`): the
//!   output rows are fully overwritten before accumulation, and every
//!   scratch field is zeroed or rebuilt at step entry.
//! * **Overflow transparency.** The link term iterates
//!   [`HinGraph::out_relation_segments`], which on a graph grown by
//!   old-source appends yields a relation's base chunk followed by its
//!   overflow chunk — the same link order a compacted CSR presents — so a
//!   step on an overflow-carrying graph is **bit-identical** to a step on
//!   its [`HinGraph::compact`]ed clone (warm re-fits see the full grown
//!   topology either way; asserted by
//!   `overflow_graph_steps_bit_identically_to_compacted`).

use crate::attr_model::{
    CategoricalComponents, ClusterComponents, ComponentAccumulator, GaussianComponents,
};
use crate::pool::{DisjointRows, WorkerPool};
use genclus_hin::{AttributeData, AttributeId, HinGraph};
use genclus_stats::simplex::normalize_floored;
use genclus_stats::MembershipMatrix;

/// Adds the responsibility mass of one categorical observation bag to
/// `out_row`, reporting each per-cluster mass to `sink` (the M-step's
/// sufficient-statistics accumulator; pass a no-op when the components are
/// frozen, as online fold-in does).
///
/// This *is* the optimized kernel's categorical inner loop — `step` and the
/// serve crate's fold-in share it, so both produce bit-identical
/// responsibilities. Works in the linear domain: `θ_{v,k} · β_{k,l}` is
/// floored away from zero on both factors, so neither underflow nor a zero
/// normalizer is possible.
///
/// `tv` is the object's current membership row, `terms` its `(term, count)`
/// bag, and `resp` a `K`-length scratch row.
// The shared responsibility kernels run once per (object, observation) on
// every EM sweep and every online fold-in — allocation-free by contract,
// enforced by the hot-path-alloc lint.
// lint: region(hot-path)
#[inline]
pub fn categorical_responsibility_mass(
    tv: &[f64],
    cat: &CategoricalComponents,
    terms: &[(u32, f64)],
    out_row: &mut [f64],
    resp: &mut [f64],
    mut sink: impl FnMut(usize, u32, f64),
) {
    for &(term, count) in terms {
        let probs = cat.probs_for_term(term);
        let mut sum = 0.0;
        for ((r, &t), &p) in resp.iter_mut().zip(tv).zip(probs) {
            let w = t * p;
            *r = w;
            sum += w;
        }
        let scale = count / sum;
        for (kk, &r) in resp.iter().enumerate() {
            let mass = r * scale;
            out_row[kk] += mass;
            sink(kk, term, mass);
        }
    }
}

/// Adds the responsibility mass of one numerical observation list to
/// `out_row`, reporting each `(cluster, value, mass)` to `sink` — the
/// Gaussian counterpart of [`categorical_responsibility_mass`], shared by
/// `step` and online fold-in.
///
/// Keeps the pdf in the log domain (`−d²/2σ²` is unbounded below) but folds
/// `θ` in *linearly* after the max subtraction: `θ_k·exp(s_k − max s)`
/// normalizes to exactly the same responsibilities as
/// `exp(ln θ_k + s_k − max)`, costs no `ln θ` at all, and the argmax entry's
/// `exp(0) = 1` is skipped outright — `K − 1` `exp`s and no `ln` per
/// observation. Underflow-safe because the max-`s` entry contributes
/// `θ_k·1 ≥ the Θ floor` to the sum.
#[inline]
pub fn gaussian_responsibility_mass(
    tv: &[f64],
    gauss: &GaussianComponents,
    values: &[f64],
    out_row: &mut [f64],
    resp: &mut [f64],
    mut sink: impl FnMut(usize, f64, f64),
) {
    for &x in values {
        let mut max_s = f64::NEG_INFINITY;
        let mut arg = 0usize;
        for (kk, r) in resp.iter_mut().enumerate() {
            let s = gauss.log_pdf(kk, x);
            *r = s;
            if s > max_s {
                max_s = s;
                arg = kk;
            }
        }
        let mut sum = 0.0;
        for (kk, (r, &t)) in resp.iter_mut().zip(tv).enumerate() {
            let e = if kk == arg { 1.0 } else { (*r - max_s).exp() };
            let w = t * e;
            *r = w;
            sum += w;
        }
        let inv = 1.0 / sum;
        for (kk, &r) in resp.iter().enumerate() {
            let r = r * inv;
            out_row[kk] += r;
            sink(kk, x, r);
        }
    }
}
// lint: end-region

/// Result of one EM iteration.
#[derive(Debug, Clone)]
pub struct EmStepResult {
    /// Updated membership matrix.
    pub theta: MembershipMatrix,
    /// Updated attribute components.
    pub components: Vec<ClusterComponents>,
    /// Max-abs change of any membership entry — the convergence signal.
    pub max_delta: f64,
}

/// Per-worker reusable scratch: `β` sufficient statistics and the
/// responsibility row of the observation being processed.
#[derive(Debug, Default)]
struct ThreadScratch {
    accs: Vec<ComponentAccumulator>,
    resp: Vec<f64>,
    max_delta: f64,
}

impl ThreadScratch {
    /// Readies the scratch for one step: zeroes (or, on shape change,
    /// rebuilds) the accumulators and sizes the row buffers.
    fn prepare(&mut self, components: &[ClusterComponents], k: usize) {
        let shapes_match = self.accs.len() == components.len()
            && self
                .accs
                .iter()
                .zip(components)
                .all(|(a, c)| a.shape_matches(c));
        if shapes_match {
            for a in &mut self.accs {
                a.reset();
            }
        } else {
            self.accs = components
                .iter()
                .map(ComponentAccumulator::zeros_like)
                .collect();
        }
        self.resp.clear();
        self.resp.resize(k, 0.0);
        self.max_delta = 0.0;
    }
}

/// Reusable EM engine bound to a network and an attribute subset.
///
/// The engine owns its worker pool and all per-thread scratch, so `step` /
/// `run` are `&mut self`: one engine is a single-threaded façade over a
/// persistent team of workers.
pub struct EmEngine<'g> {
    graph: &'g HinGraph,
    attr_ids: Vec<AttributeId>,
    k: usize,
    threads: usize,
    beta_floor: f64,
    variance_floor: f64,
    theta_smoothing: f64,
    /// Persistent workers (`None` when `threads == 1`).
    pool: Option<WorkerPool>,
    /// One scratch per worker slot (slot 0 doubles as the serial scratch).
    scratch: Vec<ThreadScratch>,
    /// Retired `Θ` buffer, recycled by the next `step` / `run`.
    spare: Option<MembershipMatrix>,
}

impl<'g> EmEngine<'g> {
    /// Creates an engine for `graph` clustering into `k` clusters according
    /// to `attr_ids`, using `threads` workers and the raw (un-smoothed)
    /// Eq. 10 update. See [`Self::with_smoothing`].
    ///
    /// For `threads > 1` the worker threads are spawned here, once, and live
    /// as long as the engine.
    pub fn new(
        graph: &'g HinGraph,
        attr_ids: &[AttributeId],
        k: usize,
        threads: usize,
        beta_floor: f64,
        variance_floor: f64,
    ) -> Self {
        let threads = threads.max(1);
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        let scratch = (0..threads).map(|_| ThreadScratch::default()).collect();
        Self {
            graph,
            attr_ids: attr_ids.to_vec(),
            k,
            threads,
            beta_floor,
            variance_floor,
            theta_smoothing: 0.0,
            pool,
            scratch,
            spare: None,
        }
    }

    /// Mixes every updated Θ row with the uniform distribution:
    /// `θ ← (1 − ε)·θ + ε/K` — the relative form of Eq. 15's Dirichlet `+1`
    /// smoothing (see `GenClusConfig::theta_smoothing`).
    pub fn with_smoothing(mut self, epsilon: f64) -> Self {
        assert!((0.0..1.0).contains(&epsilon), "smoothing must be in [0, 1)");
        self.theta_smoothing = epsilon;
        self
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.k
    }

    /// Instantaneous worker-pool queue depth (always 0 when serial). An
    /// observability gauge for trace events, not a scheduling signal.
    pub fn queue_depth(&self) -> u64 {
        self.pool.as_ref().map_or(0, |p| p.queue_depth())
    }

    /// One full E+M iteration from `(theta, components)` under fixed `gamma`.
    pub fn step(
        &mut self,
        theta: &MembershipMatrix,
        components: &[ClusterComponents],
        gamma: &[f64],
    ) -> EmStepResult {
        let mut out = self.take_buffer();
        let (components, max_delta) = self.step_into(theta, components, gamma, &mut out);
        EmStepResult {
            theta: out,
            components,
            max_delta,
        }
    }

    /// Runs EM until `max_delta < tol` or `max_iters` iterations; returns the
    /// final state and the iteration count used.
    ///
    /// `Θ` is double-buffered: the loop swaps two matrices instead of
    /// allocating one per iteration, and parks the retired buffer on the
    /// engine for the next call.
    pub fn run(
        &mut self,
        theta: MembershipMatrix,
        components: Vec<ClusterComponents>,
        gamma: &[f64],
        max_iters: usize,
        tol: f64,
    ) -> (MembershipMatrix, Vec<ClusterComponents>, usize) {
        let mut cur = theta;
        let mut components = components;
        let mut next = self.take_buffer();
        let mut iters = 0;
        for _ in 0..max_iters {
            let (new_components, max_delta) = self.step_into(&cur, &components, gamma, &mut next);
            std::mem::swap(&mut cur, &mut next);
            components = new_components;
            iters += 1;
            if max_delta < tol {
                break;
            }
        }
        self.spare = Some(next);
        (cur, components, iters)
    }

    /// A `Θ` buffer of the right shape: the parked spare if compatible,
    /// otherwise a fresh allocation.
    fn take_buffer(&mut self) -> MembershipMatrix {
        let n = self.graph.n_objects();
        match self.spare.take() {
            Some(m) if m.n_objects() == n && m.n_clusters() == self.k => m,
            _ => MembershipMatrix::uniform(n, self.k),
        }
    }

    /// The step kernel: writes the new `Θ` into `out` and returns the new
    /// components and the max-abs membership delta.
    fn step_into(
        &mut self,
        theta: &MembershipMatrix,
        components: &[ClusterComponents],
        gamma: &[f64],
        out: &mut MembershipMatrix,
    ) -> (Vec<ClusterComponents>, f64) {
        debug_assert_eq!(theta.n_objects(), self.graph.n_objects());
        debug_assert_eq!(theta.n_clusters(), self.k);
        debug_assert_eq!(out.n_objects(), self.graph.n_objects());
        debug_assert_eq!(out.n_clusters(), self.k);
        debug_assert_eq!(components.len(), self.attr_ids.len());
        debug_assert_eq!(gamma.len(), self.graph.schema().n_relations());

        let n = self.graph.n_objects();
        let k = self.k;
        let smoothing = self.theta_smoothing;
        let tables: Vec<&AttributeData> = self
            .attr_ids
            .iter()
            .map(|&a| self.graph.attribute(a))
            .collect();

        let n_jobs = if self.threads == 1 {
            1
        } else {
            let rows_per_chunk = n.div_ceil(self.threads);
            n.div_ceil(rows_per_chunk.max(1)).max(1)
        };

        if n_jobs == 1 {
            let scratch = &mut self.scratch[0];
            scratch.prepare(components, k);
            process_range(
                self.graph,
                &tables,
                components,
                theta,
                gamma,
                0,
                n,
                out.as_mut_slice(),
                scratch,
                k,
                smoothing,
            );
        } else {
            let rows_per_chunk = n.div_ceil(self.threads);
            let graph = self.graph;
            let pool = self.pool.as_ref().expect("threads > 1 implies a pool");
            // Scratch is lent to the workers mutably-but-disjointly: worker
            // `i` takes exactly `scratch[i]`, like the row chunks.
            let scratch_cells: Vec<std::sync::Mutex<&mut ThreadScratch>> =
                self.scratch.iter_mut().map(std::sync::Mutex::new).collect();
            let rows = DisjointRows::new(out.as_mut_slice());
            let tables = &tables;
            pool.broadcast(n_jobs, &|i| {
                let start = i * rows_per_chunk;
                let end = ((i + 1) * rows_per_chunk).min(n);
                let mut scratch = scratch_cells[i]
                    .lock()
                    .expect("scratch lock cannot be poisoned");
                scratch.prepare(components, k);
                // SAFETY: chunk `i` covers rows [start, end), disjoint from
                // every other chunk.
                let out_rows = unsafe { rows.slice_mut(start * k, end * k) };
                process_range(
                    graph,
                    tables,
                    components,
                    theta,
                    gamma,
                    start,
                    end,
                    out_rows,
                    &mut scratch,
                    k,
                    smoothing,
                );
            });
        }

        // Merge worker partials in chunk order (same order a serial pass
        // would have accumulated them in).
        let (first, rest) = self.scratch.split_at_mut(1);
        let mut max_delta = first[0].max_delta;
        for other in rest.iter().take(n_jobs.saturating_sub(1)) {
            for (m, a) in first[0].accs.iter_mut().zip(&other.accs) {
                m.merge(a);
            }
            max_delta = max_delta.max(other.max_delta);
        }

        let new_components: Vec<ClusterComponents> = first[0]
            .accs
            .iter()
            .zip(components)
            .map(|(acc, prev)| acc.finalize(prev, self.beta_floor, self.variance_floor))
            .collect();

        (new_components, max_delta)
    }
}

/// Processes objects `[start, end)`, writing new membership rows into
/// `out_rows` (a flat slice starting at object `start`) and accumulating
/// sufficient statistics into `scratch`. Leaves the local max-abs delta in
/// `scratch.max_delta`.
// lint: region(hot-path)
#[allow(clippy::too_many_arguments)]
fn process_range(
    graph: &HinGraph,
    tables: &[&AttributeData],
    components: &[ClusterComponents],
    theta_old: &MembershipMatrix,
    gamma: &[f64],
    start: usize,
    end: usize,
    out_rows: &mut [f64],
    scratch: &mut ThreadScratch,
    k: usize,
    smoothing: f64,
) {
    let ThreadScratch {
        accs,
        resp,
        max_delta,
    } = scratch;
    let mut local_delta = 0.0f64;

    for v_idx in start..end {
        let v = genclus_hin::ObjectId::from_index(v_idx);
        let out_row = &mut out_rows[(v_idx - start) * k..(v_idx - start + 1) * k];
        out_row.iter_mut().for_each(|x| *x = 0.0);

        // Link term of Eq. 10: Σ_{e=⟨v,u⟩} γ(φ(e)) w(e) θ_{u,k}, iterated
        // per relation segment so γ(φ(e)) is fetched once per relation.
        for (rel, links) in graph.out_relation_segments(v) {
            let g = gamma[rel.index()];
            if g == 0.0 {
                continue;
            }
            for link in links {
                let gw = g * link.weight;
                let tu = theta_old.row(link.endpoint.index());
                for (o, &t) in out_row.iter_mut().zip(tu) {
                    *o += gw * t;
                }
            }
        }

        // Attribute term: responsibility mass per cluster, also feeding the
        // component accumulators for the β M-step through the shared
        // kernel helpers (the serve crate's fold-in calls the same helpers
        // with a no-op sink).
        let tv = theta_old.row(v_idx);
        for ((table, comp), acc) in tables.iter().zip(components).zip(accs.iter_mut()) {
            match (table, comp) {
                (AttributeData::Categorical { .. }, ClusterComponents::Categorical(cat)) => {
                    categorical_responsibility_mass(
                        tv,
                        cat,
                        table.term_counts(v),
                        out_row,
                        resp,
                        |kk, term, mass| acc.add_term(kk, term, mass),
                    );
                }
                (AttributeData::Numerical { .. }, ClusterComponents::Gaussian(gauss)) => {
                    gaussian_responsibility_mass(
                        tv,
                        gauss,
                        table.values(v),
                        out_row,
                        resp,
                        |kk, x, r| acc.add_value(kk, x, r),
                    );
                }
                _ => unreachable!("attribute kind / component kind mismatch"),
            }
        }

        normalize_floored(out_row);
        if smoothing > 0.0 {
            let uniform = smoothing / k as f64;
            out_row
                .iter_mut()
                .for_each(|o| *o = (1.0 - smoothing) * *o + uniform);
        }
        for (o, t) in out_row.iter().zip(tv) {
            local_delta = local_delta.max((o - t).abs());
        }
    }
    *max_delta = local_delta;
}
// lint: end-region

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_model::GaussianComponents;
    use crate::em_reference::ReferenceEmKernel;
    use genclus_hin::{HinBuilder, Schema};
    use genclus_stats::seeded_rng;
    use rand::Rng;

    /// Six objects in two planted clusters {0,1,2} and {3,4,5}; objects 0 and
    /// 3 carry clear numerical observations, the rest carry none and must be
    /// pulled in by links.
    fn planted_network() -> (HinGraph, AttributeId) {
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let r = s.add_relation("nn", t, t);
        let attr = s.add_numerical_attribute("value");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..6).map(|i| b.add_object(t, format!("v{i}"))).collect();
        // Dense intra-cluster links, both directions.
        for group in [[0usize, 1, 2], [3, 4, 5]] {
            for &i in &group {
                for &j in &group {
                    if i != j {
                        b.add_link(vs[i], vs[j], r, 1.0).unwrap();
                    }
                }
            }
        }
        // Observations only at the "anchor" objects — incomplete attributes.
        for x in [-5.0, -5.2, -4.8] {
            b.add_numeric(vs[0], attr, x).unwrap();
        }
        for x in [5.0, 5.2, 4.8] {
            b.add_numeric(vs[3], attr, x).unwrap();
        }
        (b.build().unwrap(), attr)
    }

    /// A larger randomized two-type network with three relations, both
    /// attribute kinds, and ~40% missing observations — the stress shape for
    /// the serial/parallel and cached/naive equivalence tests.
    fn randomized_network(seed: u64, n_per_type: usize) -> (HinGraph, Vec<AttributeId>) {
        let mut rng = seeded_rng(seed);
        let mut s = Schema::new();
        let ta = s.add_object_type("A");
        let tb = s.add_object_type("B");
        let ab = s.add_relation("ab", ta, tb);
        let ba = s.add_relation("ba", tb, ta);
        let aa = s.add_relation("aa", ta, ta);
        let text = s.add_categorical_attribute("text", 9);
        let num = s.add_numerical_attribute("num");
        let mut b = HinBuilder::new(s);
        let a_ids: Vec<_> = (0..n_per_type)
            .map(|i| b.add_object(ta, format!("a{i}")))
            .collect();
        let b_ids: Vec<_> = (0..n_per_type)
            .map(|i| b.add_object(tb, format!("b{i}")))
            .collect();
        for i in 0..n_per_type {
            b.add_link(a_ids[i], b_ids[i], ab, 1.0).unwrap();
            b.add_link(b_ids[i], a_ids[(i + 1) % n_per_type], ba, 1.0)
                .unwrap();
            for _ in 0..3 {
                let j = rng.gen_range(0..n_per_type);
                b.add_link(a_ids[i], b_ids[j], ab, rng.gen_range(0.5..2.0))
                    .unwrap();
                let j = rng.gen_range(0..n_per_type);
                if j != i {
                    b.add_link(a_ids[i], a_ids[j], aa, rng.gen_range(0.5..3.0))
                        .unwrap();
                }
            }
            if rng.gen_bool(0.6) {
                for _ in 0..rng.gen_range(1..5) {
                    b.add_term_count(a_ids[i], text, rng.gen_range(0..9), rng.gen_range(1.0..3.0))
                        .unwrap();
                }
            }
            if rng.gen_bool(0.6) {
                for _ in 0..rng.gen_range(1..4) {
                    b.add_numeric(b_ids[i], num, rng.gen_range(-4.0..4.0))
                        .unwrap();
                }
            }
        }
        (b.build().unwrap(), vec![text, num])
    }

    fn randomized_state(
        g: &HinGraph,
        attrs: &[AttributeId],
        k: usize,
        seed: u64,
    ) -> (MembershipMatrix, Vec<ClusterComponents>) {
        let mut rng = seeded_rng(seed);
        let theta = MembershipMatrix::random(g.n_objects(), k, &mut rng);
        let comps = attrs
            .iter()
            .map(|&a| ClusterComponents::init(k, g.attribute(a), &mut rng, 1e-9, 1e-6))
            .collect();
        (theta, comps)
    }

    fn engine(g: &HinGraph, attr: AttributeId, threads: usize) -> EmEngine<'_> {
        EmEngine::new(g, &[attr], 2, threads, 1e-9, 1e-6)
    }

    fn initial_state(
        g: &HinGraph,
        attr: AttributeId,
        seed: u64,
    ) -> (MembershipMatrix, Vec<ClusterComponents>) {
        let mut rng = seeded_rng(seed);
        let theta = MembershipMatrix::random(g.n_objects(), 2, &mut rng);
        let comps = vec![ClusterComponents::init(
            2,
            g.attribute(attr),
            &mut rng,
            1e-9,
            1e-6,
        )];
        (theta, comps)
    }

    #[test]
    fn step_preserves_simplex_invariant() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 7);
        let mut eng = engine(&g, attr, 1);
        let out = eng.step(&theta, &comps, &[1.0]);
        for i in 0..g.n_objects() {
            let row = out.theta.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x > 0.0));
        }
        assert!(out.max_delta >= 0.0);
    }

    #[test]
    fn em_recovers_planted_clusters() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 3);
        let mut eng = engine(&g, attr, 1);
        let (theta, comps, iters) = eng.run(theta, comps, &[1.0], 60, 1e-8);
        assert!(iters >= 2);
        let labels = theta.hard_labels();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3], "the two planted groups must separate");
        // The Gaussian components must land near ±5.
        if let ClusterComponents::Gaussian(gc) = &comps[0] {
            let mut means = [gc.mean(0), gc.mean(1)];
            means.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert!((means[0] + 5.0).abs() < 0.5, "means {means:?}");
            assert!((means[1] - 5.0).abs() < 0.5, "means {means:?}");
        } else {
            panic!("expected Gaussian components");
        }
    }

    #[test]
    fn attributeless_objects_follow_their_neighbors() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 11);
        let mut eng = engine(&g, attr, 1);
        let (theta, _, _) = eng.run(theta, comps, &[1.0], 60, 1e-8);
        // Object 1 has no observations; its membership must match anchor 0's.
        let anchor = theta.row(0);
        let follower = theta.row(1);
        let k_anchor = genclus_stats::simplex::argmax(anchor);
        assert_eq!(genclus_stats::simplex::argmax(follower), k_anchor);
        assert!(follower[k_anchor] > 0.9);
    }

    #[test]
    fn parallel_step_matches_serial_exactly() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 13);
        let serial = engine(&g, attr, 1).step(&theta, &comps, &[1.0]);
        for threads in [2, 3, 4] {
            let par = engine(&g, attr, threads).step(&theta, &comps, &[1.0]);
            assert!(
                serial.theta.max_abs_diff(&par.theta) < 1e-12,
                "thread count {threads} changed Θ"
            );
            // Partial-accumulator merges reorder float additions; parameters
            // agree to summation round-off, not bit-exactly.
            match (&serial.components[0], &par.components[0]) {
                (ClusterComponents::Gaussian(a), ClusterComponents::Gaussian(b)) => {
                    for k in 0..2 {
                        assert!((a.mean(k) - b.mean(k)).abs() < 1e-9);
                        assert!((a.variance(k) - b.variance(k)).abs() < 1e-9);
                    }
                }
                _ => panic!("expected Gaussian components"),
            }
            assert!((serial.max_delta - par.max_delta).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_step_matches_serial_on_randomized_multi_relation_graph() {
        for seed in [5u64, 17, 4242] {
            let (g, attrs) = randomized_network(seed, 60);
            let k = 3;
            let (theta, comps) = randomized_state(&g, &attrs, k, seed ^ 0x5eed);
            let gamma = [1.3, 0.4, 2.0];
            let mut serial_eng = EmEngine::new(&g, &attrs, k, 1, 1e-9, 1e-6);
            let serial = serial_eng.step(&theta, &comps, &gamma);
            for threads in [2, 3, 4, 7] {
                let mut eng = EmEngine::new(&g, &attrs, k, threads, 1e-9, 1e-6);
                let par = eng.step(&theta, &comps, &gamma);
                assert!(
                    serial.theta.max_abs_diff(&par.theta) < 1e-12,
                    "seed {seed}, {threads} threads changed Θ by {}",
                    serial.theta.max_abs_diff(&par.theta)
                );
                assert!((serial.max_delta - par.max_delta).abs() < 1e-12);
            }
            // And the equivalence must survive several chained iterations.
            let mut eng4 = EmEngine::new(&g, &attrs, k, 4, 1e-9, 1e-6);
            let (t1, _, i1) = serial_eng.run(theta.clone(), comps.clone(), &gamma, 5, 0.0);
            let (t4, _, i4) = eng4.run(theta, comps, &gamma, 5, 0.0);
            assert_eq!(i1, i4);
            assert!(
                t1.max_abs_diff(&t4) < 1e-9,
                "seed {seed}: 5-iteration drift {}",
                t1.max_abs_diff(&t4)
            );
        }
    }

    /// The optimization acceptance gate: the cached-log kernel must be
    /// behavior-preserving against the naive per-observation-`ln` reference
    /// to ≤ 1e-12 per Θ entry.
    #[test]
    fn cached_kernel_matches_naive_reference_step() {
        for seed in [2u64, 23, 1234] {
            let (g, attrs) = randomized_network(seed, 50);
            let k = 4;
            let (theta, comps) = randomized_state(&g, &attrs, k, seed.wrapping_mul(31));
            let gamma = [0.7, 1.9, 0.1];
            for smoothing in [0.0, 0.05] {
                let mut opt = EmEngine::new(&g, &attrs, k, 1, 1e-9, 1e-6).with_smoothing(smoothing);
                let naive =
                    ReferenceEmKernel::new(&g, &attrs, k, 1, 1e-9, 1e-6).with_smoothing(smoothing);
                let a = opt.step(&theta, &comps, &gamma);
                let b = naive.step(&theta, &comps, &gamma);
                let diff = a.theta.max_abs_diff(&b.theta);
                assert!(
                    diff <= 1e-12,
                    "seed {seed} smoothing {smoothing}: cached vs naive Θ diff {diff}"
                );
                assert!((a.max_delta - b.max_delta).abs() <= 1e-12);
                for (ca, cb) in a.components.iter().zip(&b.components) {
                    match (ca, cb) {
                        (ClusterComponents::Gaussian(x), ClusterComponents::Gaussian(y)) => {
                            for kk in 0..k {
                                assert!((x.mean(kk) - y.mean(kk)).abs() < 1e-10);
                                assert!((x.variance(kk) - y.variance(kk)).abs() < 1e-10);
                            }
                        }
                        (ClusterComponents::Categorical(x), ClusterComponents::Categorical(y)) => {
                            for kk in 0..k {
                                for l in 0..x.vocab_size() as u32 {
                                    assert!((x.prob(kk, l) - y.prob(kk, l)).abs() < 1e-10);
                                }
                            }
                        }
                        _ => panic!("component kinds diverged"),
                    }
                }
            }
        }
    }

    /// A graph grown with old-source / staged→staged links (overflow
    /// segments live, not compacted) must step bit-identically to its
    /// compacted clone — the warm-refresh path fits exactly such graphs.
    #[test]
    fn overflow_graph_steps_bit_identically_to_compacted() {
        use genclus_hin::{GraphDelta, ObjectId};
        for seed in [3u64, 19] {
            let n = 40;
            let (g, attrs) = randomized_network(seed, n);
            let schema = g.schema().clone();
            let ta = schema.object_type_by_name("A").unwrap();
            let tb = schema.object_type_by_name("B").unwrap();
            let ab = schema.relation_by_name("ab").unwrap();
            let aa = schema.relation_by_name("aa").unwrap();

            let mut grown = g;
            let mut d = GraphDelta::new(&grown);
            let na = d.add_object(ta, "new-a");
            let nb = d.add_object(tb, "new-b");
            d.add_link(ObjectId(0), nb, ab, 1.3).unwrap(); // old → staged
            d.add_link(ObjectId(1), ObjectId(n as u32), ab, 0.7)
                .unwrap(); // old → old
            d.add_link(ObjectId(2), ObjectId(3), aa, 2.1).unwrap(); // old → old
            d.add_link(na, ObjectId(n as u32 + 1), ab, 0.9).unwrap(); // new → old
            d.add_link(na, nb, ab, 1.1).unwrap(); // staged → staged
            grown.append(d).unwrap();
            assert!(grown.has_overflow());
            let mut compacted = grown.clone();
            compacted.compact();
            assert!(!compacted.has_overflow());

            let k = 3;
            let (theta, comps) = randomized_state(&grown, &attrs, k, seed ^ 0xf00d);
            let gamma = [1.1, 0.6, 1.7];
            let mut live_eng = EmEngine::new(&grown, &attrs, k, 1, 1e-9, 1e-6);
            let live = live_eng.step(&theta, &comps, &gamma);
            let compact =
                EmEngine::new(&compacted, &attrs, k, 1, 1e-9, 1e-6).step(&theta, &comps, &gamma);
            assert_eq!(
                live.theta.max_abs_diff(&compact.theta),
                0.0,
                "seed {seed}: overflow vs compacted Θ must be bit-identical"
            );
            assert_eq!(live.max_delta, compact.max_delta);
            // The naive reference kernel walks the full out_links iterator
            // (base + overflow) and must agree with the cached kernel on
            // the overflow graph too.
            let naive = ReferenceEmKernel::new(&grown, &attrs, k, 1, 1e-9, 1e-6)
                .step(&theta, &comps, &gamma);
            assert!(live.theta.max_abs_diff(&naive.theta) <= 1e-12);
            // And the parallel path sees the same adjacency.
            let par = EmEngine::new(&grown, &attrs, k, 3, 1e-9, 1e-6).step(&theta, &comps, &gamma);
            assert!(live.theta.max_abs_diff(&par.theta) < 1e-12);
            // Multi-iteration runs stay locked together.
            let (t_live, _, i_live) = live_eng.run(theta.clone(), comps.clone(), &gamma, 5, 0.0);
            let (t_comp, _, i_comp) = EmEngine::new(&compacted, &attrs, k, 1, 1e-9, 1e-6)
                .run(theta, comps, &gamma, 5, 0.0);
            assert_eq!(i_live, i_comp);
            assert_eq!(t_live.max_abs_diff(&t_comp), 0.0);
        }
    }

    /// The reference kernel's parallel path is equivalent too, so the
    /// bench harness can compare like against like at any thread count.
    #[test]
    fn naive_reference_parallel_matches_its_serial() {
        let (g, attrs) = randomized_network(77, 40);
        let (theta, comps) = randomized_state(&g, &attrs, 3, 99);
        let gamma = [1.0, 1.0, 1.0];
        let serial =
            ReferenceEmKernel::new(&g, &attrs, 3, 1, 1e-9, 1e-6).step(&theta, &comps, &gamma);
        let par = ReferenceEmKernel::new(&g, &attrs, 3, 4, 1e-9, 1e-6).step(&theta, &comps, &gamma);
        assert!(serial.theta.max_abs_diff(&par.theta) < 1e-12);
    }

    #[test]
    fn zero_gamma_makes_links_irrelevant() {
        let (g, attr) = planted_network();
        // With γ = 0 and no observations, object 1's row comes out uniform.
        let theta = MembershipMatrix::uniform(g.n_objects(), 2);
        let comps = vec![ClusterComponents::Gaussian(
            GaussianComponents::from_params(vec![-5.0, 5.0], vec![0.1, 0.1], 1e-6),
        )];
        let mut eng = engine(&g, attr, 1);
        let out = eng.step(&theta, &comps, &[0.0]);
        let row = out.theta.row(1);
        assert!((row[0] - 0.5).abs() < 1e-9, "uniform expected, got {row:?}");
        // While anchor 0 still snaps to its observations.
        assert!(out.theta.row(0)[0] > 0.99);
    }

    #[test]
    fn smoothing_keeps_tails_off_the_floor() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 21);
        // Raw update: anchor memberships collapse towards the floor.
        let mut raw = engine(&g, attr, 1);
        let (theta_raw, _, _) = raw.run(theta.clone(), comps.clone(), &[1.0], 60, 1e-8);
        // Smoothed update: every entry keeps a visible tail.
        let mut smoothed = EmEngine::new(&g, &[attr], 2, 1, 1e-9, 1e-6).with_smoothing(0.05);
        let (theta_s, _, _) = smoothed.run(theta, comps, &[1.0], 60, 1e-8);
        let raw_min = theta_raw
            .as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let smooth_min = theta_s
            .as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(smooth_min > 0.01, "smoothed tails too small: {smooth_min}");
        assert!(smooth_min > raw_min);
        // And the planted clusters are still recovered.
        let labels = theta_s.hard_labels();
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn run_converges_and_stops_early() {
        let (g, attr) = planted_network();
        let (theta, comps) = initial_state(&g, attr, 5);
        let mut eng = engine(&g, attr, 1);
        let (_, _, iters) = eng.run(theta, comps, &[1.0], 500, 1e-10);
        assert!(iters < 500, "EM should converge well before 500 iterations");
    }

    #[test]
    fn engine_reuse_across_runs_is_stable() {
        // The double-buffer spare and scratch reuse must not leak state
        // between runs: re-running from the same start gives the same answer.
        let (g, attr) = planted_network();
        let mut eng = engine(&g, attr, 2);
        let (theta, comps) = initial_state(&g, attr, 3);
        let (t1, _, _) = eng.run(theta.clone(), comps.clone(), &[1.0], 20, 1e-9);
        let (t2, _, _) = eng.run(theta, comps, &[1.0], 20, 1e-9);
        assert_eq!(t1.max_abs_diff(&t2), 0.0);
    }
}
