//! Choosing the number of clusters `K` by information criteria.
//!
//! The paper explicitly scopes this out: "we will not study the problem of
//! how to determine the best number of clusters K, which belongs to the
//! model selection problem and has been covered in a large number of
//! studies by using various criteria, such as AIC and BIC for probabilistic
//! models" (§2.2). This module supplies exactly that deferred piece for
//! downstream users: fit candidate `K` values and score them.
//!
//! Conventions (standard for mixture-model selection):
//!
//! * the likelihood is the attribute mixture likelihood (Eqs. 3–5) — the
//!   structural term is a prior over `Θ`, not a data likelihood, so it is
//!   excluded from the criterion;
//! * free parameters count the shared components (`K·(m−1)` per categorical
//!   attribute, `2K` per Gaussian attribute), the `|R|` strengths, **and**
//!   the `|V|·(K−1)` membership degrees of freedom. Unlike an ordinary
//!   mixture, GenClus (like PLSA) fits a separate mixing vector per object,
//!   so memberships are genuinely free parameters and must be penalized —
//!   counting components alone lets the criterion reward splitting clusters
//!   to absorb per-object sampling noise;
//! * `n` is the total observation count across the specified attributes.

use crate::algorithm::{GenClus, GenClusFit};
use crate::config::GenClusConfig;
use crate::error::GenClusError;
use crate::objective::attribute_log_likelihood;
use genclus_hin::{AttributeKind, HinGraph};

/// Scores for one fitted cluster count.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionScore {
    /// Cluster count scored.
    pub k: usize,
    /// Attribute mixture log-likelihood of the fit.
    pub log_likelihood: f64,
    /// Free parameters counted (components + strengths).
    pub n_params: usize,
    /// Total attribute observations.
    pub n_observations: f64,
    /// `−2 ln L + p · ln n` (lower is better).
    pub bic: f64,
    /// `−2 ln L + 2 p` (lower is better).
    pub aic: f64,
}

/// Counts the free parameters of a `K`-cluster model on `graph` over the
/// attribute subset of `config`.
pub fn n_free_parameters(graph: &HinGraph, config: &GenClusConfig, k: usize) -> usize {
    let mut p = graph.schema().n_relations(); // strengths γ
    p += graph.n_objects() * k.saturating_sub(1); // per-object memberships θ_v
    for &a in &config.attributes {
        p += match graph.schema().attribute(a).kind {
            AttributeKind::Categorical { vocab_size } => k * vocab_size.saturating_sub(1),
            AttributeKind::Numerical => 2 * k,
        };
    }
    p
}

/// Scores an existing fit with BIC/AIC.
pub fn score_fit(graph: &HinGraph, config: &GenClusConfig, fit: &GenClusFit) -> SelectionScore {
    let k = config.n_clusters;
    let ll = attribute_log_likelihood(
        graph,
        &config.attributes,
        &fit.model.theta,
        &fit.model.components,
    );
    let n: f64 = config
        .attributes
        .iter()
        .map(|&a| graph.attribute(a).n_observations())
        .sum();
    let p = n_free_parameters(graph, config, k);
    SelectionScore {
        k,
        log_likelihood: ll,
        n_params: p,
        n_observations: n,
        bic: -2.0 * ll + p as f64 * n.max(1.0).ln(),
        aic: -2.0 * ll + 2.0 * p as f64,
    }
}

/// Fits every `K` in `k_range` (reusing `base` for all other settings) and
/// returns the scores in ascending-`K` order.
///
/// # Errors
/// Propagates configuration/fit errors from any candidate.
pub fn select_k(
    graph: &HinGraph,
    base: &GenClusConfig,
    k_range: std::ops::RangeInclusive<usize>,
) -> Result<Vec<SelectionScore>, GenClusError> {
    let mut out = Vec::new();
    for k in k_range {
        let mut cfg = base.clone();
        cfg.n_clusters = k;
        let fit = GenClus::new(cfg.clone())?.fit(graph)?;
        out.push(score_fit(graph, &cfg, &fit));
    }
    Ok(out)
}

/// The `K` with the lowest BIC among `scores`.
///
/// # Panics
/// Panics if `scores` is empty.
pub fn best_k_by_bic(scores: &[SelectionScore]) -> usize {
    scores
        .iter()
        .min_by(|a, b| {
            a.bic
                .partial_cmp(&b.bic)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one candidate score")
        .k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitStrategy;
    use genclus_hin::{AttributeId, HinBuilder, Schema};

    /// 60 objects in 2 crisp Gaussian clusters (±4), ring links inside each.
    fn two_cluster_network() -> HinGraph {
        let mut rng = genclus_stats::seeded_rng(5);
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let r = s.add_relation("nn", t, t);
        let attr = s.add_numerical_attribute("x");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..60).map(|i| b.add_object(t, format!("v{i}"))).collect();
        for half in [0usize, 1] {
            let ids = &vs[half * 30..(half + 1) * 30];
            for w in ids.windows(2) {
                b.add_link(w[0], w[1], r, 1.0).unwrap();
                b.add_link(w[1], w[0], r, 1.0).unwrap();
            }
        }
        for (i, &v) in vs.iter().enumerate() {
            let mu = if i < 30 { -4.0 } else { 4.0 };
            for _ in 0..5 {
                b.add_numeric(
                    v,
                    attr,
                    mu + 0.3 * genclus_stats::rng::standard_normal(&mut rng),
                )
                .unwrap();
            }
        }
        b.build().unwrap()
    }

    fn base_config() -> GenClusConfig {
        let mut cfg = GenClusConfig::new(2, vec![AttributeId(0)])
            .with_seed(1)
            .with_outer_iters(3);
        cfg.init = InitStrategy::BestOfSeeds {
            candidates: 3,
            warmup_iters: 3,
        };
        cfg
    }

    #[test]
    fn parameter_counting_matches_conventions() {
        let g = two_cluster_network();
        let cfg = base_config();
        // 1 relation + 2K Gaussian parameters + 60(K−1) memberships.
        assert_eq!(n_free_parameters(&g, &cfg, 2), 1 + 4 + 60);
        assert_eq!(n_free_parameters(&g, &cfg, 5), 1 + 10 + 240);
    }

    #[test]
    fn bic_prefers_the_true_cluster_count() {
        let g = two_cluster_network();
        let scores = select_k(&g, &base_config(), 2..=5).unwrap();
        assert_eq!(scores.len(), 4);
        let best = best_k_by_bic(&scores);
        assert_eq!(best, 2, "scores: {scores:?}");
        // Likelihood must be non-decreasing-ish in K; BIC penalty flips it.
        assert!(scores[0].bic < scores.last().unwrap().bic);
    }

    #[test]
    fn aic_and_bic_agree_on_crisp_data() {
        let g = two_cluster_network();
        let scores = select_k(&g, &base_config(), 2..=4).unwrap();
        let best_aic = scores
            .iter()
            .min_by(|a, b| a.aic.partial_cmp(&b.aic).unwrap())
            .unwrap()
            .k;
        assert_eq!(best_aic, 2);
    }

    #[test]
    fn score_fields_are_consistent() {
        let g = two_cluster_network();
        let cfg = base_config();
        let fit = GenClus::new(cfg.clone()).unwrap().fit(&g).unwrap();
        let s = score_fit(&g, &cfg, &fit);
        assert_eq!(s.k, 2);
        assert_eq!(s.n_observations, 300.0);
        assert!(
            (s.bic - (-2.0 * s.log_likelihood + s.n_params as f64 * 300.0f64.ln())).abs() < 1e-9
        );
        assert!((s.aic - (-2.0 * s.log_likelihood + 2.0 * s.n_params as f64)).abs() < 1e-9);
    }
}
