//! Per-outer-iteration run history.
//!
//! Fig. 10 of the paper tracks clustering accuracy and the strength vector
//! across the outer iterations ("a typical running case"); the history makes
//! that data available without re-instrumenting the algorithm, and doubles
//! as the timing source for the efficiency study (Fig. 11).

/// Snapshot of one outer iteration.
#[derive(Debug, Clone)]
pub struct OuterIterationRecord {
    /// 1-based outer iteration index.
    pub iteration: usize,
    /// Strength vector *after* this iteration's strength-learning step.
    pub gamma: Vec<f64>,
    /// `g₁(Θ, β)` after the cluster-optimization step.
    pub g1: f64,
    /// `g₂'(γ)` after the strength-learning step.
    pub g2: f64,
    /// EM iterations used by the cluster-optimization step.
    pub em_iterations: usize,
    /// Wall-clock seconds of the cluster-optimization step.
    pub em_seconds: f64,
    /// Wall-clock seconds of the strength-learning step.
    pub strength_seconds: f64,
}

/// History of a full [`crate::algorithm::GenClus::fit`] run.
#[derive(Debug, Clone, Default)]
pub struct RunHistory {
    /// One record per executed outer iteration.
    pub records: Vec<OuterIterationRecord>,
}

impl RunHistory {
    /// Number of outer iterations executed.
    pub fn n_iterations(&self) -> usize {
        self.records.len()
    }

    /// The trajectory of one relation's strength across iterations.
    pub fn gamma_trajectory(&self, relation: usize) -> Vec<f64> {
        self.records.iter().map(|r| r.gamma[relation]).collect()
    }

    /// Total EM iterations summed over every outer iteration — the
    /// convergence currency the warm-start refresh bench and the serving
    /// layer's refresh op both report.
    pub fn total_em_iterations(&self) -> usize {
        self.records.iter().map(|r| r.em_iterations).sum()
    }

    /// Mean EM wall-clock seconds per *inner* iteration, the quantity
    /// Fig. 11 plots.
    pub fn mean_em_seconds_per_inner_iteration(&self) -> f64 {
        let total_secs: f64 = self.records.iter().map(|r| r.em_seconds).sum();
        let total_iters = self.total_em_iterations();
        if total_iters == 0 {
            0.0
        } else {
            total_secs / total_iters as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, g: f64, em_iters: usize, em_secs: f64) -> OuterIterationRecord {
        OuterIterationRecord {
            iteration: i,
            gamma: vec![g, 2.0 * g],
            g1: -1.0,
            g2: -2.0,
            em_iterations: em_iters,
            em_seconds: em_secs,
            strength_seconds: 0.01,
        }
    }

    #[test]
    fn trajectory_extracts_per_relation_series() {
        let h = RunHistory {
            records: vec![record(1, 1.0, 5, 0.5), record(2, 1.5, 4, 0.4)],
        };
        assert_eq!(h.n_iterations(), 2);
        assert_eq!(h.gamma_trajectory(0), vec![1.0, 1.5]);
        assert_eq!(h.gamma_trajectory(1), vec![2.0, 3.0]);
        assert_eq!(h.total_em_iterations(), 9);
    }

    #[test]
    fn per_inner_iteration_timing() {
        let h = RunHistory {
            records: vec![record(1, 1.0, 5, 0.5), record(2, 1.0, 5, 0.5)],
        };
        assert!((h.mean_em_seconds_per_inner_iteration() - 0.1).abs() < 1e-12);
        assert_eq!(
            RunHistory::default().mean_em_seconds_per_inner_iteration(),
            0.0
        );
    }
}
