//! A persistent scoped worker pool for the parallel E-step.
//!
//! The seed implementation spawned fresh OS threads inside every
//! [`crate::em::EmEngine::step`] call, so a 100-iteration EM run paid thread
//! start-up 100 times. [`WorkerPool`] spawns its workers once (when the
//! engine is built) and hands them borrowed-closure jobs per step through
//! channels; [`WorkerPool::broadcast`] blocks until every job has finished,
//! which is what makes lending non-`'static` closures to the long-lived
//! workers sound.
//!
//! [`WorkerPool::submit`] is the non-barriering counterpart: it hands one
//! `'static` job to a worker and returns a [`JobHandle`] the caller can
//! poll ([`JobHandle::try_join`]) or block on ([`JobHandle::join`]) for the
//! job's return value — the serving layer's background re-fit runs through
//! it. Submitted jobs share the per-worker FIFO queues with broadcast
//! jobs, so a long-running submission delays that worker's share of later
//! broadcasts; callers that need isolation (like the background refresher)
//! dedicate a pool to their submissions.
//!
//! [`DisjointRows`] is the companion write-side primitive: it lets the
//! workers write concurrently into *disjoint* ranges of one flat `Θ` buffer
//! without locking, with the disjointness obligation carried by the single
//! `unsafe` call site in the engine.

use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A queued unit of work. Completion signalling lives *inside* the box:
/// broadcast jobs report to the pool's shared `done` channel, submitted
/// jobs to their handle's private one — so the two kinds can interleave on
/// the same workers without confusing each other's accounting.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads executing broadcast jobs.
pub struct WorkerPool {
    job_txs: Vec<Sender<Job>>,
    /// Kept alive so `done_rx.recv()` in `broadcast` can never observe a
    /// spurious disconnect; cloned into each broadcast job.
    done_tx: Sender<std::thread::Result<()>>,
    done_rx: Receiver<std::thread::Result<()>>,
    handles: Vec<JoinHandle<()>>,
    /// Round-robin cursor for `submit` placement.
    next_submit: Cell<usize>,
    /// Jobs dispatched but not yet finished, across broadcast and submit;
    /// shared with the job boxes so completion decrements from any worker.
    inflight: Arc<AtomicU64>,
}

/// The result channel of one [`WorkerPool::submit`] call.
///
/// Holds the job's return value once the worker finishes it. A panicking
/// job surfaces as `Err(payload)` (the pool worker survives); a job whose
/// pool was torn down before the result was read reports a synthetic
/// `Err` instead of blocking forever.
pub struct JobHandle<T> {
    rx: Receiver<std::thread::Result<T>>,
}

impl<T> JobHandle<T> {
    fn disconnected() -> std::thread::Result<T> {
        Err(Box::new(
            "worker pool shut down before the job's result was read".to_string(),
        ))
    }

    /// Non-blocking completion check: `None` while the job is still queued
    /// or running, `Some(result)` once it finished. After a completion has
    /// been returned once, further calls report the job as gone.
    pub fn try_join(&self) -> Option<std::thread::Result<T>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Self::disconnected()),
        }
    }

    /// Blocks until the job finishes and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        self.rx.recv().unwrap_or_else(|_| Self::disconnected())
    }
}

impl WorkerPool {
    /// Spawns `n` (≥ 1) workers, alive until the pool is dropped.
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        let (done_tx, done_rx) = channel::<std::thread::Result<()>>();
        let mut job_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("genclus-em-{i}"))
                .spawn(move || {
                    // Each job signals its own completion (and catches its
                    // own panics); the loop ends when the pool drops the
                    // sender, after draining any still-queued jobs.
                    for job in rx {
                        job();
                    }
                })
                .expect("failed to spawn EM worker thread");
            job_txs.push(tx);
            handles.push(handle);
        }
        Self {
            job_txs,
            done_tx,
            done_rx,
            handles,
            next_submit: Cell::new(0),
            inflight: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.job_txs.len()
    }

    /// Jobs currently dispatched but not yet finished (queued + running),
    /// across `broadcast` and `submit`. An instantaneous observability
    /// gauge — by the time the caller reads it the value may have moved.
    pub fn queue_depth(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Runs `f(0), …, f(n_jobs − 1)`, one call per worker, and blocks until
    /// all of them have completed. `n_jobs` is clamped to the worker count.
    /// If any job panicked, the panic is resumed on the caller's thread —
    /// but only after every job has finished, so borrows held by `f` are
    /// never outlived.
    pub fn broadcast<F>(&self, n_jobs: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        let n = n_jobs.min(self.job_txs.len());
        // Dispatch. A failed send means that worker's thread is gone; its
        // job box is returned inside the error and dropped without ever
        // running, so it owes no completion message — but jobs already
        // handed to *other* workers are running and must be joined before
        // this function may unwind (see the SAFETY argument below).
        let mut dispatched = 0usize;
        for (i, tx) in self.job_txs.iter().take(n).enumerate() {
            let f_ref: &(dyn Fn(usize) + Sync) = f;
            // SAFETY: every job that was actually sent is joined via the
            // completion loop below before this function returns or
            // unwinds, so the transmuted borrow never outlives the real
            // one.
            let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };
            let done = self.done_tx.clone();
            let inflight = Arc::clone(&self.inflight);
            let job: Job = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f_static(i)));
                inflight.fetch_sub(1, Ordering::Relaxed);
                let _ = done.send(result);
            });
            self.inflight.fetch_add(1, Ordering::Relaxed);
            if tx.send(job).is_err() {
                // The box never ran (it came back in the error and is
                // dropped here), so it owes no decrement.
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                break;
            }
            dispatched += 1;
        }
        let mut panic = None;
        for _ in 0..dispatched {
            // Cannot disconnect: the pool itself holds `done_tx`, and every
            // dispatched job box sends exactly one message (its clone of
            // the sender is dropped only after the send, or with the box
            // when the worker drains a closed queue — which cannot happen
            // while this `&self` borrow pins the pool alive).
            match self
                .done_rx
                .recv()
                .expect("pool holds a live completion sender")
            {
                Ok(()) => {}
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        assert_eq!(
            dispatched, n,
            "EM worker thread disappeared before job dispatch"
        );
    }

    /// Queues `f` on one worker (round-robin) and returns a [`JobHandle`]
    /// for its result — no barrier, the caller keeps running while the job
    /// does. Panics inside `f` are caught and surface as the handle's
    /// `Err`; the worker thread survives to take further jobs.
    ///
    /// The job shares its worker's FIFO queue with `broadcast` work: a
    /// long-running submission delays that worker's share of later
    /// broadcasts (and pool teardown waits for it). Dedicate a pool to
    /// long submissions — the serving layer's background refresher owns a
    /// one-worker pool for exactly this reason.
    pub fn submit<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = channel::<std::thread::Result<T>>();
        let inflight = Arc::clone(&self.inflight);
        let mut job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            inflight.fetch_sub(1, Ordering::Relaxed);
            let _ = tx.send(result);
        });
        let k = self.job_txs.len();
        let start = self.next_submit.get();
        self.next_submit.set((start + 1) % k);
        self.inflight.fetch_add(1, Ordering::Relaxed);
        for offset in 0..k {
            match self.job_txs[(start + offset) % k].send(job) {
                Ok(()) => return JobHandle { rx },
                // That worker is gone; the unrun box comes back in the
                // error — try the next one.
                Err(failed) => job = failed.0,
            }
        }
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        panic!("every worker thread disappeared before job dispatch");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's receive loop.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A shareable writer over one flat `f64` buffer that hands out mutable
/// sub-slices to concurrent workers.
///
/// Safety contract: the ranges requested through [`Self::slice_mut`] while
/// other slices are live must be pairwise disjoint. The EM engine satisfies
/// it by giving worker `i` exclusively the rows of chunk `i`.
pub struct DisjointRows<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: access is restricted to disjoint ranges by the `slice_mut`
// contract, so concurrent use from multiple threads cannot alias.
unsafe impl Sync for DisjointRows<'_> {}
// SAFETY: the wrapper owns no thread-affine state — it is a raw pointer
// plus a length borrowed from the caller's slice, and the disjointness
// contract above covers writes from whichever thread holds a range.
unsafe impl Send for DisjointRows<'_> {}

impl<'a> DisjointRows<'a> {
    /// Wraps `buffer` for disjoint concurrent writes.
    pub fn new(buffer: &'a mut [f64]) -> Self {
        Self {
            ptr: buffer.as_mut_ptr(),
            len: buffer.len(),
            _marker: PhantomData,
        }
    }

    /// Total buffer length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sub-slice `[start, end)`.
    ///
    /// # Safety
    /// No other live slice obtained from this writer may overlap
    /// `[start, end)`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [f64] {
        debug_assert!(start <= end && end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_index_and_can_repeat() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.n_workers(), 4);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.broadcast(4, &|i| {
                assert!(i < 4);
                hits.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn broadcast_clamps_to_worker_count() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.broadcast(10, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn borrowed_state_is_visible_after_broadcast() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0.0f64; 3 * 5];
        {
            let rows = DisjointRows::new(&mut data);
            pool.broadcast(3, &|i| {
                // SAFETY: each worker writes its own 5-element chunk.
                let chunk = unsafe { rows.slice_mut(i * 5, (i + 1) * 5) };
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (i * 5 + j) as f64;
                }
            });
        }
        let expected: Vec<f64> = (0..15).map(|x| x as f64).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn submit_returns_the_job_result() {
        let pool = WorkerPool::new(2);
        let handle = pool.submit(|| 6 * 7);
        assert_eq!(handle.join().expect("job succeeds"), 42);
    }

    #[test]
    fn queue_depth_tracks_inflight_jobs() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.queue_depth(), 0);
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let blocker = pool.submit(move || {
            let _ = started_tx.send(());
            let _ = release_rx.recv();
        });
        started_rx.recv().unwrap();
        let queued = pool.submit(|| ());
        // One job running, one queued behind it on the same worker.
        assert_eq!(pool.queue_depth(), 2);
        release_tx.send(()).unwrap();
        blocker.join().unwrap();
        queued.join().unwrap();
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn try_join_polls_without_blocking() {
        let pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let handle = pool.submit(move || {
            gate_rx.recv().expect("gate stays open");
            "done"
        });
        // Still running (blocked on the gate): try_join must not block.
        assert!(handle.try_join().is_none());
        gate_tx.send(()).unwrap();
        let result = loop {
            if let Some(r) = handle.try_join() {
                break r;
            }
            std::thread::yield_now();
        };
        assert_eq!(result.expect("job succeeds"), "done");
    }

    #[test]
    fn submitted_panic_surfaces_in_the_handle_and_spares_the_pool() {
        let pool = WorkerPool::new(1);
        let handle = pool.submit(|| -> usize { panic!("refit exploded") });
        let err = handle.join().expect_err("panic must surface");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-string payload>");
        assert_eq!(msg, "refit exploded");
        // The worker survives for both submit and broadcast work.
        assert_eq!(pool.submit(|| 7).join().expect("pool alive"), 7);
        let hits = AtomicUsize::new(0);
        pool.broadcast(1, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn submissions_and_broadcasts_interleave_on_the_same_pool() {
        let pool = WorkerPool::new(3);
        let handles: Vec<_> = (0..6).map(|i| pool.submit(move || i * i)).collect();
        let hits = AtomicUsize::new(0);
        for _ in 0..20 {
            pool.broadcast(3, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 60);
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().expect("job succeeds"), i * i);
        }
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(2, &|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked job.
        let hits = AtomicUsize::new(0);
        pool.broadcast(2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
