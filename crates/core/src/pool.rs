//! A persistent scoped worker pool for the parallel E-step.
//!
//! The seed implementation spawned fresh OS threads inside every
//! [`crate::em::EmEngine::step`] call, so a 100-iteration EM run paid thread
//! start-up 100 times. [`WorkerPool`] spawns its workers once (when the
//! engine is built) and hands them borrowed-closure jobs per step through
//! channels; [`WorkerPool::broadcast`] blocks until every job has finished,
//! which is what makes lending non-`'static` closures to the long-lived
//! workers sound.
//!
//! [`DisjointRows`] is the companion write-side primitive: it lets the
//! workers write concurrently into *disjoint* ranges of one flat `Θ` buffer
//! without locking, with the disjointness obligation carried by the single
//! `unsafe` call site in the engine.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads executing broadcast jobs.
pub struct WorkerPool {
    job_txs: Vec<Sender<Job>>,
    done_rx: Receiver<std::thread::Result<()>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `n` (≥ 1) workers, alive until the pool is dropped.
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        let (done_tx, done_rx) = channel::<std::thread::Result<()>>();
        let mut job_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = channel::<Job>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("genclus-em-{i}"))
                .spawn(move || {
                    for job in rx {
                        let result = catch_unwind(AssertUnwindSafe(job));
                        if done.send(result).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn EM worker thread");
            job_txs.push(tx);
            handles.push(handle);
        }
        Self {
            job_txs,
            done_rx,
            handles,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.job_txs.len()
    }

    /// Runs `f(0), …, f(n_jobs − 1)`, one call per worker, and blocks until
    /// all of them have completed. `n_jobs` is clamped to the worker count.
    /// If any job panicked, the panic is resumed on the caller's thread —
    /// but only after every job has finished, so borrows held by `f` are
    /// never outlived.
    pub fn broadcast<F>(&self, n_jobs: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        let n = n_jobs.min(self.job_txs.len());
        // Dispatch. A failed send means that worker's thread is gone; its
        // job box is returned inside the error and dropped without ever
        // running, so it owes no completion message — but jobs already
        // handed to *other* workers are running and must be joined before
        // this function may unwind (see the SAFETY argument below).
        let mut dispatched = 0usize;
        for (i, tx) in self.job_txs.iter().take(n).enumerate() {
            let f_ref: &(dyn Fn(usize) + Sync) = f;
            // SAFETY: every job that was actually sent is joined via the
            // completion loop below before this function returns or
            // unwinds, so the transmuted borrow never outlives the real
            // one.
            let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };
            if tx.send(Box::new(move || f_static(i))).is_err() {
                break;
            }
            dispatched += 1;
        }
        let mut panic = None;
        for _ in 0..dispatched {
            match self.done_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) => panic = Some(payload),
                // A worker vanished mid-job: its thread died without
                // unwinding, so the job's borrow of `f` can never be proven
                // finished. Unwinding here would free state the lost job
                // may still touch — nothing can be salvaged.
                Err(_) => std::process::abort(),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        assert_eq!(
            dispatched, n,
            "EM worker thread disappeared before job dispatch"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's receive loop.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A shareable writer over one flat `f64` buffer that hands out mutable
/// sub-slices to concurrent workers.
///
/// Safety contract: the ranges requested through [`Self::slice_mut`] while
/// other slices are live must be pairwise disjoint. The EM engine satisfies
/// it by giving worker `i` exclusively the rows of chunk `i`.
pub struct DisjointRows<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: access is restricted to disjoint ranges by the `slice_mut`
// contract, so concurrent use from multiple threads cannot alias.
unsafe impl Sync for DisjointRows<'_> {}
unsafe impl Send for DisjointRows<'_> {}

impl<'a> DisjointRows<'a> {
    /// Wraps `buffer` for disjoint concurrent writes.
    pub fn new(buffer: &'a mut [f64]) -> Self {
        Self {
            ptr: buffer.as_mut_ptr(),
            len: buffer.len(),
            _marker: PhantomData,
        }
    }

    /// Total buffer length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sub-slice `[start, end)`.
    ///
    /// # Safety
    /// No other live slice obtained from this writer may overlap
    /// `[start, end)`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [f64] {
        debug_assert!(start <= end && end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_index_and_can_repeat() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.n_workers(), 4);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.broadcast(4, &|i| {
                assert!(i < 4);
                hits.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn broadcast_clamps_to_worker_count() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.broadcast(10, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn borrowed_state_is_visible_after_broadcast() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0.0f64; 3 * 5];
        {
            let rows = DisjointRows::new(&mut data);
            pool.broadcast(3, &|i| {
                // SAFETY: each worker writes its own 5-element chunk.
                let chunk = unsafe { rows.slice_mut(i * 5, (i + 1) * 5) };
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (i * 5 + j) as f64;
                }
            });
        }
        let expected: Vec<f64> = (0..15).map(|x| x as f64).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(2, &|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked job.
        let hits = AtomicUsize::new(0);
        pool.broadcast(2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
