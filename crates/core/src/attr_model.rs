//! Attribute mixture components (`β`).
//!
//! Every attribute in the user-specified subset is modelled as a mixture with
//! one component per cluster, shared by all objects; an object's mixing
//! proportions are its membership row `θ_v` (§3.2). Two component families
//! are supported, exactly as in the paper:
//!
//! * categorical distributions over a term vocabulary (text attributes,
//!   Eq. 3), and
//! * Gaussians over the reals (numerical attributes, Eq. 4).
//!
//! The M-step re-estimates components from responsibility-weighted
//! observation statistics; [`ComponentAccumulator`] collects those per worker
//! thread and merges across threads.

use genclus_hin::AttributeData;
use rand::Rng;

/// Categorical components: a `K × m` row-stochastic matrix of term
/// probabilities, `β_{k,l}` in Eq. 3.
///
/// Construction precomputes two derived tables so the EM hot path never
/// calls `ln` per observation and never strides across component rows:
/// a `K × m` log-probability table backing [`Self::log_prob`], and a
/// term-major `m × K` transpose backing [`Self::probs_for_term`] (all `K`
/// probabilities of one term in one cache line).
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalComponents {
    k: usize,
    m: usize,
    /// Row-major `K × m` probabilities; each row sums to 1 and is floored so
    /// `log` stays finite.
    beta: Vec<f64>,
    /// Cached `ln β`, row-major `K × m`.
    log_beta: Vec<f64>,
    /// Cached transpose of `beta`, term-major `m × K`.
    beta_by_term: Vec<f64>,
}

impl CategoricalComponents {
    /// Initializes near the corpus-wide term distribution with multiplicative
    /// noise, the standard PLSA-style random start: components begin distinct
    /// but none starts absurdly far from the data.
    pub fn init<R: Rng + ?Sized>(
        k: usize,
        table: &AttributeData,
        rng: &mut R,
        beta_floor: f64,
    ) -> Self {
        let m = table.vocab_size();
        let mut global = vec![0.0f64; m];
        for &(t, c) in table.all_term_counts() {
            global[t as usize] += c;
        }
        let total: f64 = global.iter().sum();
        if total <= 0.0 {
            global.iter_mut().for_each(|g| *g = 1.0);
        }
        let mut beta = vec![0.0; k * m];
        for row in beta.chunks_mut(m) {
            for (b, &g) in row.iter_mut().zip(&global) {
                *b = (g.max(beta_floor)) * (0.5 + rng.gen::<f64>());
            }
            normalize_with_floor(row, beta_floor);
        }
        Self::from_normalized(k, m, beta)
    }

    /// Builds from already row-normalized probabilities, deriving the cached
    /// log and transposed tables.
    fn from_normalized(k: usize, m: usize, beta: Vec<f64>) -> Self {
        debug_assert_eq!(beta.len(), k * m);
        let log_beta: Vec<f64> = beta.iter().map(|&b| b.ln()).collect();
        let mut beta_by_term = vec![0.0; k * m];
        for kk in 0..k {
            for l in 0..m {
                beta_by_term[l * k + kk] = beta[kk * m + l];
            }
        }
        Self {
            k,
            m,
            beta,
            log_beta,
            beta_by_term,
        }
    }

    /// Builds from explicit rows (tests / resuming).
    ///
    /// # Panics
    /// Panics if `rows` is not `K` rows of equal length.
    pub fn from_rows(rows: &[Vec<f64>], beta_floor: f64) -> Self {
        let k = rows.len();
        assert!(k > 0);
        let m = rows[0].len();
        let mut beta = Vec::with_capacity(k * m);
        for r in rows {
            assert_eq!(r.len(), m, "ragged component rows");
            beta.extend_from_slice(r);
        }
        for row in beta.chunks_mut(m) {
            normalize_with_floor(row, beta_floor);
        }
        Self::from_normalized(k, m, beta)
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.k
    }

    /// Vocabulary size.
    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.m
    }

    /// `β_{k,l}`.
    #[inline]
    pub fn prob(&self, k: usize, term: u32) -> f64 {
        self.beta[k * self.m + term as usize]
    }

    /// `ln β_{k,l}` (cached table lookup, no `ln` at call time).
    #[inline]
    pub fn log_prob(&self, k: usize, term: u32) -> f64 {
        self.log_beta[k * self.m + term as usize]
    }

    /// All `K` probabilities of `term`, contiguous (`β_{1,l} … β_{K,l}`) —
    /// the cache-friendly access pattern of the EM responsibility loop.
    #[inline]
    pub fn probs_for_term(&self, term: u32) -> &[f64] {
        let base = term as usize * self.k;
        &self.beta_by_term[base..base + self.k]
    }

    /// The `n` highest-probability terms of component `k`, descending —
    /// used by examples to label discovered clusters.
    pub fn top_terms(&self, k: usize, n: usize) -> Vec<(u32, f64)> {
        let row = &self.beta[k * self.m..(k + 1) * self.m];
        let mut idx: Vec<u32> = (0..self.m as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            row[b as usize]
                .partial_cmp(&row[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(n);
        idx.into_iter().map(|t| (t, row[t as usize])).collect()
    }
}

/// Gaussian components: one `(μ_k, σ_k²)` per cluster, Eq. 4.
///
/// Construction precomputes the per-component log-pdf constants so
/// [`Self::log_pdf`] is two flops and two table reads — no `ln` per
/// observation on the EM hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianComponents {
    mu: Vec<f64>,
    var: Vec<f64>,
    /// Cached `−½·ln(2π σ_k²)`.
    log_norm: Vec<f64>,
    /// Cached `1 / (2 σ_k²)`.
    inv_two_var: Vec<f64>,
}

impl GaussianComponents {
    /// Initializes means at the quantile midpoints of the pooled
    /// observations (plus a small seed-dependent jitter for multi-start
    /// diversity) and all variances at the global variance.
    ///
    /// Quantile seeding matters beyond convergence speed: when several
    /// numerical attributes are clustered jointly (the weather networks),
    /// each attribute gets its *own* component set and only the shared `Θ`
    /// ties them together. Random-draw means can lock the two attributes
    /// into different cluster permutations — a local optimum in which the
    /// cross-type links look inconsistent and strength learning drives
    /// their `γ` to zero. Ordering both attributes' components by value
    /// starts them aligned whenever cluster means are ordered consistently.
    pub fn init<R: Rng + ?Sized>(
        k: usize,
        table: &AttributeData,
        rng: &mut R,
        variance_floor: f64,
    ) -> Self {
        let mut all = table.all_values().to_vec();
        let (g_mean, g_std) = if all.is_empty() {
            (0.0, 1.0)
        } else {
            let mean = all.iter().sum::<f64>() / all.len() as f64;
            let var =
                all.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / all.len().max(1) as f64;
            (mean, var.max(variance_floor).sqrt())
        };
        all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        // Percentile-clipped value range: robust to stray observations while
        // spanning all mixture modes.
        let (lo, hi) = if all.is_empty() {
            (g_mean - 1.0, g_mean + 1.0)
        } else {
            let p = |q: f64| all[((q * all.len() as f64) as usize).min(all.len() - 1)];
            (p(0.01), p(0.99))
        };
        let span = (hi - lo).max(1e-9);
        let mut mu: Vec<f64> = (0..k)
            .map(|i| {
                let jitter = 0.1 * g_std * genclus_stats::rng::standard_normal(rng);
                // Midpoint of the i-th of k equal-width value bands: means
                // are ordered by value, so co-clustered attributes with
                // consistently ordered cluster means start aligned.
                lo + span * (i as f64 + 0.5) / k as f64 + jitter
            })
            .collect();
        // Half the random starts shuffle the component order. Ordered starts
        // align attributes whose cluster means share an ordering; shuffled
        // starts explore other mean *combinations* (needed when clusters are
        // XOR-like in the attribute space, e.g. weather Setting 2), and
        // multi-start selection keeps whichever basin scores best.
        if rng.gen::<f64>() < 0.5 {
            use rand::seq::SliceRandom;
            mu.shuffle(rng);
        }
        Self::from_moments(mu, vec![g_std * g_std; k])
    }

    /// Builds from explicit parameters (tests / resuming).
    pub fn from_params(mu: Vec<f64>, var: Vec<f64>, variance_floor: f64) -> Self {
        assert_eq!(mu.len(), var.len());
        let var = var.into_iter().map(|v| v.max(variance_floor)).collect();
        Self::from_moments(mu, var)
    }

    /// Builds from positive variances, deriving the cached log-pdf
    /// constants.
    fn from_moments(mu: Vec<f64>, var: Vec<f64>) -> Self {
        debug_assert_eq!(mu.len(), var.len());
        debug_assert!(var.iter().all(|&v| v > 0.0));
        let log_norm = var
            .iter()
            .map(|&v| -0.5 * (2.0 * std::f64::consts::PI * v).ln())
            .collect();
        let inv_two_var = var.iter().map(|&v| 0.5 / v).collect();
        Self {
            mu,
            var,
            log_norm,
            inv_two_var,
        }
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.mu.len()
    }

    /// Mean of component `k`.
    #[inline]
    pub fn mean(&self, k: usize) -> f64 {
        self.mu[k]
    }

    /// Variance of component `k`.
    #[inline]
    pub fn variance(&self, k: usize) -> f64 {
        self.var[k]
    }

    /// `ln N(x; μ_k, σ_k²)` from the cached constants — allocation- and
    /// `ln`-free.
    #[inline]
    pub fn log_pdf(&self, k: usize, x: f64) -> f64 {
        let d = x - self.mu[k];
        self.log_norm[k] - d * d * self.inv_two_var[k]
    }
}

/// Components of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterComponents {
    /// Text attribute.
    Categorical(CategoricalComponents),
    /// Numerical attribute.
    Gaussian(GaussianComponents),
}

impl ClusterComponents {
    /// Random initialization matched to the attribute's kind.
    pub fn init<R: Rng + ?Sized>(
        k: usize,
        table: &AttributeData,
        rng: &mut R,
        beta_floor: f64,
        variance_floor: f64,
    ) -> Self {
        match table {
            AttributeData::Categorical { .. } => {
                Self::Categorical(CategoricalComponents::init(k, table, rng, beta_floor))
            }
            AttributeData::Numerical { .. } => {
                Self::Gaussian(GaussianComponents::init(k, table, rng, variance_floor))
            }
        }
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        match self {
            Self::Categorical(c) => c.n_clusters(),
            Self::Gaussian(g) => g.n_clusters(),
        }
    }

    /// Serializes the component parameters (`β` rows or `μ/σ²` pairs) in
    /// the [`genclus_stats::bytesio`] convention. Only the primary
    /// parameters are written; the cached log/transpose tables are
    /// re-derived on load, bit-exactly (they are pure functions of the
    /// parameters), so write → read → write is byte-identical.
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        use genclus_stats::bytesio::{put_f64_slice, put_u64};
        match self {
            Self::Categorical(c) => {
                put_u64(out, 0);
                put_u64(out, c.k as u64);
                put_u64(out, c.m as u64);
                put_f64_slice(out, &c.beta);
            }
            Self::Gaussian(g) => {
                put_u64(out, 1);
                put_f64_slice(out, &g.mu);
                put_f64_slice(out, &g.var);
            }
        }
    }

    /// Inverse of [`Self::to_bytes`]; `None` on truncation, an unknown
    /// kind tag, shape mismatches, or parameters outside their domain
    /// (non-finite `β`/`μ`, non-positive `σ²`).
    pub fn from_bytes(r: &mut genclus_stats::bytesio::ByteReader<'_>) -> Option<Self> {
        match r.u64()? {
            0 => {
                let k: usize = r.u64()?.try_into().ok()?;
                let m: usize = r.u64()?.try_into().ok()?;
                let beta = r.f64_slice()?;
                if k == 0 || m == 0 || beta.len() != k.checked_mul(m)? {
                    return None;
                }
                if beta.iter().any(|&b| !(b > 0.0 && b.is_finite())) {
                    return None;
                }
                Some(Self::Categorical(CategoricalComponents::from_normalized(
                    k, m, beta,
                )))
            }
            1 => {
                let mu = r.f64_slice()?;
                let var = r.f64_slice()?;
                if mu.is_empty() || mu.len() != var.len() {
                    return None;
                }
                if mu.iter().any(|x| !x.is_finite())
                    || var.iter().any(|&v| !(v > 0.0 && v.is_finite()))
                {
                    return None;
                }
                Some(Self::Gaussian(GaussianComponents::from_moments(mu, var)))
            }
            _ => None,
        }
    }
}

/// Responsibility-weighted sufficient statistics for one attribute's M-step.
#[derive(Debug, Clone)]
pub enum ComponentAccumulator {
    /// `counts[k·m + l] = Σ_v c_{v,l} p(z_{v,l} = k)` (Eq. 10's β update).
    Categorical {
        /// Clusters.
        k: usize,
        /// Vocabulary size.
        m: usize,
        /// Flat `K × m` responsibility-weighted counts.
        counts: Vec<f64>,
    },
    /// Weighted moments for Eq. 11's μ/σ² updates.
    Gaussian {
        /// `Σ p(z = k)` per cluster.
        sum_w: Vec<f64>,
        /// `Σ x · p(z = k)` per cluster.
        sum_wx: Vec<f64>,
        /// `Σ x² · p(z = k)` per cluster.
        sum_wx2: Vec<f64>,
    },
}

impl ComponentAccumulator {
    /// A zeroed accumulator shaped like `components`.
    pub fn zeros_like(components: &ClusterComponents) -> Self {
        match components {
            ClusterComponents::Categorical(c) => Self::Categorical {
                k: c.n_clusters(),
                m: c.vocab_size(),
                counts: vec![0.0; c.n_clusters() * c.vocab_size()],
            },
            ClusterComponents::Gaussian(g) => Self::Gaussian {
                sum_w: vec![0.0; g.n_clusters()],
                sum_wx: vec![0.0; g.n_clusters()],
                sum_wx2: vec![0.0; g.n_clusters()],
            },
        }
    }

    /// Whether this accumulator's kind and dimensions fit `components`, i.e.
    /// whether a reset — rather than a rebuild — suffices to reuse it.
    pub fn shape_matches(&self, components: &ClusterComponents) -> bool {
        match (self, components) {
            (Self::Categorical { k, m, .. }, ClusterComponents::Categorical(c)) => {
                *k == c.n_clusters() && *m == c.vocab_size()
            }
            (Self::Gaussian { sum_w, .. }, ClusterComponents::Gaussian(g)) => {
                sum_w.len() == g.n_clusters()
            }
            _ => false,
        }
    }

    /// Zeroes the statistics so the buffer can be reused by the next EM step
    /// without reallocating.
    pub fn reset(&mut self) {
        match self {
            Self::Categorical { counts, .. } => counts.iter_mut().for_each(|c| *c = 0.0),
            Self::Gaussian {
                sum_w,
                sum_wx,
                sum_wx2,
            } => {
                sum_w.iter_mut().for_each(|x| *x = 0.0);
                sum_wx.iter_mut().for_each(|x| *x = 0.0);
                sum_wx2.iter_mut().for_each(|x| *x = 0.0);
            }
        }
    }

    /// Adds `weight` responsibility mass for `term` in cluster `k`.
    #[inline]
    pub fn add_term(&mut self, k: usize, term: u32, weight: f64) {
        match self {
            Self::Categorical { m, counts, .. } => counts[k * *m + term as usize] += weight,
            Self::Gaussian { .. } => unreachable!("term added to Gaussian accumulator"),
        }
    }

    /// Adds responsibility mass `weight` for value `x` in cluster `k`.
    #[inline]
    pub fn add_value(&mut self, k: usize, x: f64, weight: f64) {
        match self {
            Self::Gaussian {
                sum_w,
                sum_wx,
                sum_wx2,
            } => {
                sum_w[k] += weight;
                sum_wx[k] += weight * x;
                sum_wx2[k] += weight * x * x;
            }
            Self::Categorical { .. } => unreachable!("value added to categorical accumulator"),
        }
    }

    /// Merges another accumulator (from a worker thread) into this one.
    pub fn merge(&mut self, other: &Self) {
        match (self, other) {
            (Self::Categorical { counts, .. }, Self::Categorical { counts: oc, .. }) => {
                for (a, b) in counts.iter_mut().zip(oc) {
                    *a += b;
                }
            }
            (
                Self::Gaussian {
                    sum_w,
                    sum_wx,
                    sum_wx2,
                },
                Self::Gaussian {
                    sum_w: ow,
                    sum_wx: owx,
                    sum_wx2: owx2,
                },
            ) => {
                for (a, b) in sum_w.iter_mut().zip(ow) {
                    *a += b;
                }
                for (a, b) in sum_wx.iter_mut().zip(owx) {
                    *a += b;
                }
                for (a, b) in sum_wx2.iter_mut().zip(owx2) {
                    *a += b;
                }
            }
            _ => unreachable!("mismatched accumulator kinds"),
        }
    }

    /// Finalizes the M-step: turns sufficient statistics into new components.
    ///
    /// Clusters with (numerically) zero responsibility mass keep their
    /// previous parameters — re-estimating them from nothing would produce
    /// NaNs and destroy the component for good.
    pub fn finalize(
        &self,
        previous: &ClusterComponents,
        beta_floor: f64,
        variance_floor: f64,
    ) -> ClusterComponents {
        match (self, previous) {
            (Self::Categorical { k, m, counts }, ClusterComponents::Categorical(prev)) => {
                let mut beta = counts.clone();
                for (kk, row) in beta.chunks_mut(*m).enumerate() {
                    let mass: f64 = row.iter().sum();
                    if mass <= 0.0 {
                        for (b, l) in row.iter_mut().zip(0..*m as u32) {
                            *b = prev.prob(kk, l);
                        }
                    } else {
                        normalize_with_floor(row, beta_floor);
                    }
                }
                ClusterComponents::Categorical(CategoricalComponents::from_normalized(*k, *m, beta))
            }
            (
                Self::Gaussian {
                    sum_w,
                    sum_wx,
                    sum_wx2,
                },
                ClusterComponents::Gaussian(prev),
            ) => {
                let kn = sum_w.len();
                let mut mu = Vec::with_capacity(kn);
                let mut var = Vec::with_capacity(kn);
                for k in 0..kn {
                    if sum_w[k] <= 1e-12 {
                        mu.push(prev.mean(k));
                        var.push(prev.variance(k));
                    } else {
                        let m = sum_wx[k] / sum_w[k];
                        let v = (sum_wx2[k] / sum_w[k] - m * m).max(variance_floor);
                        mu.push(m);
                        var.push(v);
                    }
                }
                ClusterComponents::Gaussian(GaussianComponents::from_moments(mu, var))
            }
            _ => unreachable!("mismatched accumulator/component kinds"),
        }
    }
}

/// Normalizes a slice to sum 1 with a positive floor.
fn normalize_with_floor(row: &mut [f64], floor: f64) {
    let sum: f64 = row.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        let u = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|x| *x = u);
        return;
    }
    for x in row.iter_mut() {
        *x = (*x / sum).max(floor);
    }
    let sum: f64 = row.iter().sum();
    row.iter_mut().for_each(|x| *x /= sum);
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_stats::seeded_rng;

    fn text_table() -> AttributeData {
        AttributeData::categorical_from_rows(
            4,
            &[
                vec![(0, 5.0), (1, 1.0)],
                vec![(2, 3.0)],
                vec![(3, 2.0), (0, 1.0)],
            ],
        )
    }

    fn num_table() -> AttributeData {
        AttributeData::numerical_from_rows(&[vec![1.0, 1.2], vec![], vec![5.0]])
    }

    #[test]
    fn categorical_init_rows_are_stochastic() {
        let mut rng = seeded_rng(1);
        let c = CategoricalComponents::init(3, &text_table(), &mut rng, 1e-9);
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.vocab_size(), 4);
        for k in 0..3 {
            let sum: f64 = (0..4).map(|l| c.prob(k, l)).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for l in 0..4u32 {
                assert!(c.prob(k, l) > 0.0);
            }
        }
    }

    #[test]
    fn categorical_init_differs_across_components() {
        let mut rng = seeded_rng(2);
        let c = CategoricalComponents::init(2, &text_table(), &mut rng, 1e-9);
        let diff: f64 = (0..4u32).map(|l| (c.prob(0, l) - c.prob(1, l)).abs()).sum();
        assert!(diff > 1e-4, "components must start distinct, diff = {diff}");
    }

    #[test]
    fn gaussian_init_uses_data_scale() {
        let mut rng = seeded_rng(3);
        let g = GaussianComponents::init(2, &num_table(), &mut rng, 1e-6);
        for k in 0..2 {
            assert!(g.mean(k) >= 1.0 && g.mean(k) <= 5.0);
            assert!(g.variance(k) > 0.0);
        }
    }

    #[test]
    fn gaussian_log_pdf_matches_closed_form() {
        let g = GaussianComponents::from_params(vec![0.0], vec![1.0], 1e-6);
        // N(0; 0, 1) = 1/√(2π)
        let expected = -(0.5 * (2.0 * std::f64::consts::PI).ln());
        assert!((g.log_pdf(0, 0.0) - expected).abs() < 1e-12);
        // Symmetry and monotone decay.
        assert!((g.log_pdf(0, 1.0) - g.log_pdf(0, -1.0)).abs() < 1e-12);
        assert!(g.log_pdf(0, 0.5) > g.log_pdf(0, 2.0));
    }

    #[test]
    fn accumulator_roundtrip_categorical() {
        let prev = ClusterComponents::Categorical(CategoricalComponents::from_rows(
            &[vec![0.25; 4], vec![0.25; 4]],
            1e-9,
        ));
        let mut acc = ComponentAccumulator::zeros_like(&prev);
        acc.add_term(0, 1, 3.0);
        acc.add_term(0, 2, 1.0);
        acc.add_term(1, 3, 2.0);
        let new = acc.finalize(&prev, 1e-9, 1e-6);
        if let ClusterComponents::Categorical(c) = new {
            assert!((c.prob(0, 1) - 0.75).abs() < 1e-6);
            assert!((c.prob(0, 2) - 0.25).abs() < 1e-6);
            assert!((c.prob(1, 3) - 1.0).abs() < 1e-6);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn accumulator_roundtrip_gaussian() {
        let prev = ClusterComponents::Gaussian(GaussianComponents::from_params(
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            1e-6,
        ));
        let mut acc = ComponentAccumulator::zeros_like(&prev);
        // Cluster 0 sees {1, 3} with unit weight: mean 2, var 1.
        acc.add_value(0, 1.0, 1.0);
        acc.add_value(0, 3.0, 1.0);
        let new = acc.finalize(&prev, 1e-9, 1e-6);
        if let ClusterComponents::Gaussian(g) = new {
            assert!((g.mean(0) - 2.0).abs() < 1e-12);
            assert!((g.variance(0) - 1.0).abs() < 1e-12);
            // Cluster 1 got no mass: keeps previous parameters.
            assert_eq!(g.mean(1), 0.0);
            assert_eq!(g.variance(1), 1.0);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn merge_combines_worker_partials() {
        let prev = ClusterComponents::Gaussian(GaussianComponents::from_params(
            vec![0.0],
            vec![1.0],
            1e-6,
        ));
        let mut a = ComponentAccumulator::zeros_like(&prev);
        let mut b = ComponentAccumulator::zeros_like(&prev);
        a.add_value(0, 1.0, 1.0);
        b.add_value(0, 3.0, 1.0);
        a.merge(&b);
        let new = a.finalize(&prev, 1e-9, 1e-6);
        if let ClusterComponents::Gaussian(g) = new {
            assert!((g.mean(0) - 2.0).abs() < 1e-12);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn variance_floor_is_applied() {
        let prev = ClusterComponents::Gaussian(GaussianComponents::from_params(
            vec![0.0],
            vec![1.0],
            1e-6,
        ));
        let mut acc = ComponentAccumulator::zeros_like(&prev);
        acc.add_value(0, 2.0, 1.0);
        acc.add_value(0, 2.0, 1.0); // zero empirical variance
        let new = acc.finalize(&prev, 1e-9, 1e-4);
        if let ClusterComponents::Gaussian(g) = new {
            assert_eq!(g.variance(0), 1e-4);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn top_terms_sorted_descending() {
        let c = CategoricalComponents::from_rows(&[vec![0.1, 0.6, 0.05, 0.25]], 1e-9);
        let top = c.top_terms(0, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 3);
        assert!(top[0].1 > top[1].1);
    }
}
