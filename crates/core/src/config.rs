//! Model configuration.

use crate::error::GenClusError;
use genclus_hin::AttributeId;
use genclus_obs::{TraceHandle, TraceSink};
use genclus_stats::NewtonOptions;
use std::sync::Arc;

/// How the membership matrix `Θ` is initialized before the first EM pass.
///
/// The paper (§4.3) describes both options: plain random assignment, and
/// "start with several random seeds, run the EM algorithm for a few steps for
/// each random seed, and choose the one with the highest value of the
/// objective function g₁" — the latter "will produce more stable results" and
/// is what the weather experiments use.
#[derive(Debug, Clone, PartialEq)]
pub enum InitStrategy {
    /// Rows drawn uniformly from the simplex.
    Random,
    /// Multi-start: run `candidates` random initializations for
    /// `warmup_iters` EM iterations each (with the initial `γ`) and keep the
    /// one with the highest `g₁`.
    BestOfSeeds {
        /// Number of random candidates.
        candidates: usize,
        /// EM iterations per candidate before scoring.
        warmup_iters: usize,
    },
}

/// Full configuration of a GenClus run.
///
/// Defaults mirror the paper's experimental settings: `σ = 0.1` for the
/// strength prior, 10 outer iterations, all-ones initial `γ`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenClusConfig {
    /// Number of clusters `K`.
    pub n_clusters: usize,
    /// The user-specified attribute subset that defines the clustering
    /// purpose (§2.2). Order is preserved in the fitted components.
    pub attributes: Vec<AttributeId>,
    /// Standard deviation of the zero-mean Gaussian prior on `γ` (§3.4).
    pub sigma: f64,
    /// Outer alternations between cluster optimization and strength learning.
    pub outer_iters: usize,
    /// Maximum EM iterations per cluster-optimization step.
    pub em_iters: usize,
    /// EM stops early when the max-abs change of `Θ` falls below this.
    pub em_tol: f64,
    /// Early outer-loop stop when the max-abs change of `γ` falls below this.
    pub gamma_tol: f64,
    /// Newton–Raphson options for the strength-learning step.
    pub newton: NewtonOptions,
    /// Θ initialization strategy.
    pub init: InitStrategy,
    /// Initial strength for every link type (the paper uses all-ones: every
    /// link type starts equally important).
    pub gamma_init: f64,
    /// RNG seed — every stochastic choice derives from it.
    pub seed: u64,
    /// Worker threads for the E/M pass (1 = serial). The EM pass is the
    /// bottleneck component and parallelizes near-linearly (§5.4).
    pub threads: usize,
    /// Laplace-style floor applied to categorical component probabilities.
    pub beta_floor: f64,
    /// Floor applied to Gaussian component variances.
    pub variance_floor: f64,
    /// Uniform-mixing weight `ε` applied after every Θ update:
    /// `θ ← (1 − ε)·θ + ε/K`.
    ///
    /// The structural model's per-object conditional is `Dirichlet(α_i)`
    /// with `α_ik = Σ_e γ w θ_jk + 1` (Eq. 15) — the `+1` smooths
    /// memberships away from zero. Carrying that effect into the Eq. 10
    /// fixed point as a *relative* mixture (rather than an absolute
    /// pseudocount) keeps tails bounded regardless of how much evidence an
    /// object has, so `ln θ` in the cross-entropy feature stays on the
    /// scale of the paper's published membership rows (Table 1 tails are
    /// ≈ 0.04–0.1, not 1e-12) without washing out objects with few
    /// observations. Set to `0.0` for the raw un-smoothed update.
    pub theta_smoothing: f64,
    /// Optional trace hook: when set, the fit loop emits one
    /// `em_outer_iteration` event per outer iteration (wall time,
    /// objective, Θ movement, worker-pool queue depth). When unset the
    /// loop skips all trace-only work, so leaving this `none` costs
    /// nothing. Compares by sink identity (see [`TraceHandle`]).
    pub trace: TraceHandle,
}

impl GenClusConfig {
    /// A configuration with paper-default hyperparameters for `K` clusters
    /// over the given attribute subset.
    pub fn new(n_clusters: usize, attributes: Vec<AttributeId>) -> Self {
        Self {
            n_clusters,
            attributes,
            sigma: 0.1,
            outer_iters: 10,
            em_iters: 30,
            em_tol: 1e-4,
            gamma_tol: 1e-4,
            newton: NewtonOptions::default(),
            init: InitStrategy::Random,
            gamma_init: 1.0,
            seed: 0,
            threads: 1,
            beta_floor: 1e-9,
            variance_floor: 1e-6,
            theta_smoothing: 0.05,
            trace: TraceHandle::none(),
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the outer iteration count (builder style).
    pub fn with_outer_iters(mut self, outer_iters: usize) -> Self {
        self.outer_iters = outer_iters;
        self
    }

    /// Sets the init strategy (builder style).
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Installs a trace sink for per-iteration fit events (builder style).
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = TraceHandle::new(sink);
        self
    }

    /// Aligns this configuration with a fitted model for a warm-start
    /// re-fit (builder style): copies `K`, the attribute subset, and the
    /// `ε` smoothing from `model` so that
    /// [`crate::algorithm::GenClus::fit_warm`] accepts the model as its
    /// seed and iterates the *same* smoothed Eq. 10 operator the model's
    /// `Θ` rows are fixed points of. All other knobs (tolerances, iteration
    /// budgets, `σ`) keep their current values.
    pub fn with_warm_start(mut self, model: &crate::model::GenClusModel) -> Self {
        self.n_clusters = model.n_clusters();
        self.attributes = model.attributes.clone();
        self.theta_smoothing = model.theta_smoothing;
        self
    }

    /// Validates field ranges (schema-dependent checks happen in
    /// [`crate::algorithm::GenClus::fit`]).
    pub fn validate(&self) -> Result<(), GenClusError> {
        if self.n_clusters < 2 {
            return Err(GenClusError::InvalidClusterCount(self.n_clusters));
        }
        if self.attributes.is_empty() {
            return Err(GenClusError::NoAttributes);
        }
        if self.sigma <= 0.0 || self.sigma.is_nan() {
            return Err(GenClusError::InvalidConfig {
                field: "sigma",
                reason: format!("must be positive, got {}", self.sigma),
            });
        }
        if self.outer_iters == 0 {
            return Err(GenClusError::InvalidConfig {
                field: "outer_iters",
                reason: "must be at least 1".into(),
            });
        }
        if self.em_iters == 0 {
            return Err(GenClusError::InvalidConfig {
                field: "em_iters",
                reason: "must be at least 1".into(),
            });
        }
        if self.threads == 0 {
            return Err(GenClusError::InvalidConfig {
                field: "threads",
                reason: "must be at least 1".into(),
            });
        }
        if self.gamma_init < 0.0 {
            return Err(GenClusError::InvalidConfig {
                field: "gamma_init",
                reason: "strengths are constrained non-negative".into(),
            });
        }
        if let InitStrategy::BestOfSeeds { candidates, .. } = self.init {
            if candidates == 0 {
                return Err(GenClusError::InvalidConfig {
                    field: "init.candidates",
                    reason: "must be at least 1".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GenClusConfig::new(4, vec![AttributeId(0)]);
        assert_eq!(c.sigma, 0.1);
        assert_eq!(c.outer_iters, 10);
        assert_eq!(c.gamma_init, 1.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let base = GenClusConfig::new(4, vec![AttributeId(0)]);

        let mut c = base.clone();
        c.n_clusters = 1;
        assert!(matches!(
            c.validate(),
            Err(GenClusError::InvalidClusterCount(1))
        ));

        let mut c = base.clone();
        c.attributes.clear();
        assert_eq!(c.validate(), Err(GenClusError::NoAttributes));

        let mut c = base.clone();
        c.sigma = 0.0;
        assert!(matches!(
            c.validate(),
            Err(GenClusError::InvalidConfig { .. })
        ));

        let mut c = base.clone();
        c.threads = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.init = InitStrategy::BestOfSeeds {
            candidates: 0,
            warmup_iters: 3,
        };
        assert!(c.validate().is_err());

        let mut c = base;
        c.gamma_init = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_helpers_compose() {
        let c = GenClusConfig::new(3, vec![AttributeId(1)])
            .with_seed(99)
            .with_threads(4)
            .with_outer_iters(5)
            .with_init(InitStrategy::BestOfSeeds {
                candidates: 3,
                warmup_iters: 2,
            });
        assert_eq!(c.seed, 99);
        assert_eq!(c.threads, 4);
        assert_eq!(c.outer_iters, 5);
        assert!(c.validate().is_ok());
    }
}
