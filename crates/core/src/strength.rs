//! Link-type strength learning (Algorithm 1, step 2).
//!
//! With `(Θ, β)` fixed, GenClus maximizes the regularized
//! pseudo-log-likelihood `g₂'(γ)` of Eq. 14 over `γ ≥ 0`:
//!
//! ```text
//! g₂'(γ) = Σ_i [ Σ_{e=⟨v_i,v_j⟩} f(θ_i, θ_j, e, γ) − ln B(α_i(γ)) ] − ‖γ‖²/(2σ²)
//! α_ik(γ) = Σ_{e=⟨v_i,v_j⟩} γ(φ(e)) w(e) θ_{j,k} + 1
//! ```
//!
//! because each conditional `p(θ_i | out-neighbors)` is a `Dirichlet(α_i)`
//! (Eq. 15), whose local partition function `Z_i = B(α_i)` makes the gradient
//! (Eq. 16) and Hessian (Eq. 17) closed-form in digamma/trigamma. `g₂'` is
//! concave (Appendix B), so the projected Newton solver from `genclus-stats`
//! converges in a handful of iterations.
//!
//! The effect, in the paper's words: link types that connect objects with
//! dissimilar memberships are *punished* with low strengths; consistent link
//! types earn high strengths, and thereafter dominate membership propagation
//! in the next cluster-optimization step.

use genclus_hin::HinGraph;
use genclus_stats::dirichlet::ln_beta;
use genclus_stats::special::{digamma, trigamma};
use genclus_stats::{Matrix, MembershipMatrix, NewtonOptions, NewtonOutcome, ProjectedNewton};

/// Per-object, per-relation sufficient statistics of the pseudo-likelihood.
///
/// For object `i` and relation `r` with at least one out-link `⟨v_i, v_j⟩`:
/// `w = Σ_e w(e)`, `feat = Σ_e w(e) Σ_k θ_{j,k} ln θ_{i,k}` (the feature sum
/// divided by `γ_r`), and `s[k] = Σ_e w(e) θ_{j,k}` (so `α_ik = Σ_r γ_r s_irk
/// + 1`).
#[derive(Debug, Clone)]
struct Entry {
    r: usize,
    w: f64,
    feat: f64,
    s_start: usize,
}

/// The concave objective `g₂'` as a [`genclus_stats::newton::NewtonProblem`].
struct PseudoLikelihood {
    /// Entry ranges per object: `entries[obj_ranges[i]..obj_ranges[i+1]]`.
    obj_ranges: Vec<usize>,
    entries: Vec<Entry>,
    /// Flat storage for all `s` vectors (length `entries.len() * k`).
    s_values: Vec<f64>,
    n_relations: usize,
    k: usize,
    sigma2: f64,
}

impl PseudoLikelihood {
    /// Builds the statistics from the network and current memberships.
    ///
    /// The graph's per-relation out-link segments
    /// ([`HinGraph::out_relation_segments`]) already group every object's
    /// links by relation, so the per-object statistics stream straight into
    /// `entries` — no per-relation scratch accumulators, no re-bucketing of
    /// links on every outer iteration. A graph carrying overflow segments
    /// yields up to two consecutive chunks per relation (base, then
    /// overflow); they accumulate into **one** entry, link by link in the
    /// same order a compacted CSR would present — the statistics are
    /// bit-identical either way.
    fn build(graph: &HinGraph, theta: &MembershipMatrix, sigma: f64) -> Self {
        let n_relations = graph.schema().n_relations();
        let k = theta.n_clusters();
        let mut obj_ranges = Vec::with_capacity(graph.n_objects() + 1);
        let mut entries: Vec<Entry> = Vec::new();
        let mut s_values = Vec::new();

        // ln θ_i scratch, reused across objects.
        let mut ln_ti = vec![0.0f64; k];

        obj_ranges.push(0);
        for v in graph.objects() {
            if graph.has_out_links(v) {
                for (l, &x) in ln_ti.iter_mut().zip(theta.row(v.index())) {
                    *l = x.ln();
                }
            }
            let obj_start = entries.len();
            for (rel, links) in graph.out_relation_segments(v) {
                // An overflow chunk continues the relation's entry opened
                // by its base chunk (chunks of one relation are adjacent).
                let continues = entries.len() > obj_start
                    && entries.last().expect("non-empty past obj_start").r == rel.index();
                if !continues {
                    let s_start = s_values.len();
                    s_values.resize(s_start + k, 0.0);
                    entries.push(Entry {
                        r: rel.index(),
                        w: 0.0,
                        feat: 0.0,
                        s_start,
                    });
                }
                let e = entries.last_mut().expect("entry just ensured");
                let s = &mut s_values[e.s_start..e.s_start + k];
                for link in links {
                    let w = link.weight;
                    e.w += w;
                    let tj = theta.row(link.endpoint.index());
                    let mut dot = 0.0;
                    for (kk, &tjk) in tj.iter().enumerate() {
                        dot += tjk * ln_ti[kk];
                        s[kk] += w * tjk;
                    }
                    e.feat += w * dot;
                }
            }
            obj_ranges.push(entries.len());
        }

        Self {
            obj_ranges,
            entries,
            s_values,
            n_relations,
            k,
            sigma2: sigma * sigma,
        }
    }

    #[inline]
    fn s(&self, e: &Entry) -> &[f64] {
        &self.s_values[e.s_start..e.s_start + self.k]
    }

    /// Objects that have at least one out-link, as entry ranges.
    fn object_entries(&self) -> impl Iterator<Item = &[Entry]> {
        self.obj_ranges
            .windows(2)
            .map(move |w| &self.entries[w[0]..w[1]])
            .filter(|es| !es.is_empty())
    }
}

impl genclus_stats::newton::NewtonProblem for PseudoLikelihood {
    fn value(&self, gamma: &[f64]) -> f64 {
        let mut alpha = vec![0.0f64; self.k];
        let mut total = 0.0;
        for es in self.object_entries() {
            alpha.iter_mut().for_each(|a| *a = 1.0);
            for e in es {
                total += gamma[e.r] * e.feat;
                let s = self.s(e);
                for (a, &sv) in alpha.iter_mut().zip(s) {
                    *a += gamma[e.r] * sv;
                }
            }
            total -= ln_beta(&alpha);
        }
        total - gamma.iter().map(|g| g * g).sum::<f64>() / (2.0 * self.sigma2)
    }

    fn gradient(&self, gamma: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        let mut alpha = vec![0.0f64; self.k];
        let mut psi = vec![0.0f64; self.k];
        for es in self.object_entries() {
            alpha.iter_mut().for_each(|a| *a = 1.0);
            for e in es {
                let s = self.s(e);
                for (a, &sv) in alpha.iter_mut().zip(s) {
                    *a += gamma[e.r] * sv;
                }
            }
            let alpha_sum: f64 = alpha.iter().sum();
            for (p, &a) in psi.iter_mut().zip(&alpha) {
                *p = digamma(a);
            }
            let psi_sum = digamma(alpha_sum);
            // Eq. 16 per relation present at this object.
            for e in es {
                let s = self.s(e);
                let mut dot = 0.0;
                for (kk, &sv) in s.iter().enumerate() {
                    dot += psi[kk] * sv;
                }
                out[e.r] += e.feat - (dot - psi_sum * e.w);
            }
        }
        for (r, o) in out.iter_mut().enumerate() {
            *o -= gamma[r] / self.sigma2;
        }
    }

    fn hessian(&self, gamma: &[f64], out: &mut Matrix) {
        debug_assert_eq!(out.rows(), self.n_relations);
        for r1 in 0..self.n_relations {
            for r2 in 0..self.n_relations {
                out[(r1, r2)] = 0.0;
            }
        }
        let mut alpha = vec![0.0f64; self.k];
        let mut psi1 = vec![0.0f64; self.k];
        for es in self.object_entries() {
            alpha.iter_mut().for_each(|a| *a = 1.0);
            for e in es {
                let s = self.s(e);
                for (a, &sv) in alpha.iter_mut().zip(s) {
                    *a += gamma[e.r] * sv;
                }
            }
            let alpha_sum: f64 = alpha.iter().sum();
            for (p, &a) in psi1.iter_mut().zip(&alpha) {
                *p = trigamma(a);
            }
            let psi1_sum = trigamma(alpha_sum);
            // Eq. 17 over all relation pairs present at this object.
            for e1 in es {
                let s1 = self.s(e1);
                for e2 in es {
                    let s2 = self.s(e2);
                    let mut acc = 0.0;
                    for kk in 0..self.k {
                        acc -= psi1[kk] * s1[kk] * s2[kk];
                    }
                    acc += psi1_sum * e1.w * e2.w;
                    out[(e1.r, e2.r)] += acc;
                }
            }
        }
        for r in 0..self.n_relations {
            out[(r, r)] -= 1.0 / self.sigma2;
        }
    }
}

/// Outcome of one strength-learning step.
#[derive(Debug, Clone)]
pub struct StrengthOutcome {
    /// The learned strengths, `γ ≥ 0`, indexed by `RelationId`.
    pub gamma: Vec<f64>,
    /// Final `g₂'(γ)` value.
    pub objective: f64,
    /// Newton iterations used.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Learns link-type strengths for fixed memberships.
#[derive(Debug, Clone)]
pub struct StrengthLearner {
    /// Std-dev of the zero-mean Gaussian prior on `γ` (§3.4; paper uses 0.1).
    pub sigma: f64,
    /// Newton solver options.
    pub newton: NewtonOptions,
}

impl StrengthLearner {
    /// Creates a learner with the given prior scale and solver options.
    pub fn new(sigma: f64, newton: NewtonOptions) -> Self {
        Self { sigma, newton }
    }

    /// Maximizes `g₂'(γ)` starting from `gamma0`.
    pub fn learn(
        &self,
        graph: &HinGraph,
        theta: &MembershipMatrix,
        gamma0: &[f64],
    ) -> StrengthOutcome {
        debug_assert_eq!(gamma0.len(), graph.schema().n_relations());
        let problem = PseudoLikelihood::build(graph, theta, self.sigma);
        let outcome: NewtonOutcome =
            ProjectedNewton::new(self.newton.clone()).maximize(gamma0, &problem);
        StrengthOutcome {
            gamma: outcome.x,
            objective: outcome.value,
            iterations: outcome.iterations,
            converged: outcome.converged,
        }
    }

    /// Evaluates `g₂'(γ)` without optimizing (diagnostics and tests).
    pub fn objective(&self, graph: &HinGraph, theta: &MembershipMatrix, gamma: &[f64]) -> f64 {
        use genclus_stats::newton::NewtonProblem;
        PseudoLikelihood::build(graph, theta, self.sigma).value(gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::{HinBuilder, HinGraph, Schema};
    use genclus_stats::newton::NewtonProblem;
    use rand::Rng;

    /// 20 objects in 2 planted clusters with two relations: `good` connects
    /// within clusters, `bad` connects uniformly at random.
    fn two_relation_network(seed: u64) -> (HinGraph, MembershipMatrix) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let good = s.add_relation("good", t, t);
        let bad = s.add_relation("bad", t, t);
        let mut b = HinBuilder::new(s);
        let n = 20;
        let vs: Vec<_> = (0..n).map(|i| b.add_object(t, format!("v{i}"))).collect();
        let cluster = |i: usize| i % 2;
        let mut theta_rows = Vec::new();
        for i in 0..n {
            // Concentrated memberships matching the planted clusters.
            let mut row = vec![0.05; 2];
            row[cluster(i)] = 0.95;
            theta_rows.push(row);
        }
        for i in 0..n {
            // good: 3 links to same-cluster objects.
            let mut placed = 0;
            while placed < 3 {
                let j = rng.gen_range(0..n);
                if j != i && cluster(j) == cluster(i) {
                    b.add_link(vs[i], vs[j], good, 1.0).unwrap();
                    placed += 1;
                }
            }
            // bad: 3 links to arbitrary objects.
            for _ in 0..3 {
                let mut j = rng.gen_range(0..n);
                while j == i {
                    j = rng.gen_range(0..n);
                }
                b.add_link(vs[i], vs[j], bad, 1.0).unwrap();
            }
        }
        (
            b.build().unwrap(),
            MembershipMatrix::from_rows(&theta_rows, 2),
        )
    }

    #[test]
    fn consistent_relation_earns_higher_strength() {
        let (g, theta) = two_relation_network(42);
        let learner = StrengthLearner::new(0.5, NewtonOptions::default());
        let out = learner.learn(&g, &theta, &[1.0, 1.0]);
        assert!(out.converged);
        assert!(
            out.gamma[0] > out.gamma[1] + 0.05,
            "good relation should dominate: {:?}",
            out.gamma
        );
        assert!(out.gamma.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let (g, theta) = two_relation_network(7);
        let problem = PseudoLikelihood::build(&g, &theta, 0.3);
        let gamma = [0.8, 1.7];
        let mut grad = [0.0, 0.0];
        problem.gradient(&gamma, &mut grad);
        let h = 1e-6;
        for r in 0..2 {
            let mut gp = gamma;
            gp[r] += h;
            let mut gm = gamma;
            gm[r] -= h;
            let numeric = (problem.value(&gp) - problem.value(&gm)) / (2.0 * h);
            assert!(
                (grad[r] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "relation {r}: analytic {} vs numeric {numeric}",
                grad[r]
            );
        }
    }

    #[test]
    fn analytic_hessian_matches_finite_differences() {
        let (g, theta) = two_relation_network(19);
        let problem = PseudoLikelihood::build(&g, &theta, 0.3);
        let gamma = [1.2, 0.6];
        let mut hess = Matrix::zeros(2, 2);
        problem.hessian(&gamma, &mut hess);
        let h = 1e-5;
        for r1 in 0..2 {
            for r2 in 0..2 {
                let mut gp = gamma;
                gp[r2] += h;
                let mut gm = gamma;
                gm[r2] -= h;
                let mut grad_p = [0.0, 0.0];
                let mut grad_m = [0.0, 0.0];
                problem.gradient(&gp, &mut grad_p);
                problem.gradient(&gm, &mut grad_m);
                let numeric = (grad_p[r1] - grad_m[r1]) / (2.0 * h);
                assert!(
                    (hess[(r1, r2)] - numeric).abs() < 1e-3 * (1.0 + numeric.abs()),
                    "H[{r1},{r2}] analytic {} vs numeric {numeric}",
                    hess[(r1, r2)]
                );
            }
        }
    }

    #[test]
    fn hessian_is_symmetric_with_negative_diagonal() {
        let (g, theta) = two_relation_network(3);
        let problem = PseudoLikelihood::build(&g, &theta, 0.1);
        let mut hess = Matrix::zeros(2, 2);
        problem.hessian(&[1.0, 1.0], &mut hess);
        assert!((hess[(0, 1)] - hess[(1, 0)]).abs() < 1e-9);
        assert!(hess[(0, 0)] < 0.0 && hess[(1, 1)] < 0.0);
    }

    #[test]
    fn empty_relation_is_driven_to_zero_by_the_prior() {
        // A schema with a relation that has no links: its only gradient
        // contribution is the prior pulling it to zero.
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let used = s.add_relation("used", t, t);
        let _unused = s.add_relation("unused", t, t);
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "a");
        let v1 = b.add_object(t, "b");
        b.add_link(v0, v1, used, 1.0).unwrap();
        b.add_link(v1, v0, used, 1.0).unwrap();
        let g = b.build().unwrap();
        let theta = MembershipMatrix::from_rows(&[vec![0.9, 0.1], vec![0.85, 0.15]], 2);
        let learner = StrengthLearner::new(0.1, NewtonOptions::default());
        let out = learner.learn(&g, &theta, &[1.0, 1.0]);
        assert!(
            out.gamma[1] < 1e-6,
            "unused relation must decay: {:?}",
            out.gamma
        );
    }

    #[test]
    fn stronger_prior_shrinks_strengths() {
        let (g, theta) = two_relation_network(11);
        let loose =
            StrengthLearner::new(1.0, NewtonOptions::default()).learn(&g, &theta, &[1.0, 1.0]);
        let tight =
            StrengthLearner::new(0.02, NewtonOptions::default()).learn(&g, &theta, &[1.0, 1.0]);
        assert!(
            tight.gamma[0] < loose.gamma[0],
            "tighter prior must shrink γ: {:?} vs {:?}",
            tight.gamma,
            loose.gamma
        );
    }

    #[test]
    fn overflow_graph_statistics_match_compacted() {
        // The pseudo-likelihood must see old-source links sitting in
        // overflow segments; merging a relation's base and overflow chunks
        // into one entry link-by-link makes the statistics bit-identical
        // to a compacted CSR's.
        use genclus_hin::{GraphDelta, ObjectId};
        let (g, theta) = two_relation_network(42);
        let t = g.schema().object_type_by_name("node").unwrap();
        let good = g.schema().relation_by_name("good").unwrap();
        let bad = g.schema().relation_by_name("bad").unwrap();
        let mut grown = g;
        let mut d = GraphDelta::new(&grown);
        let v = d.add_object(t, "extra");
        d.add_link(ObjectId(0), v, good, 1.5).unwrap(); // old → new
        d.add_link(ObjectId(0), ObjectId(5), bad, 2.0).unwrap(); // old → old
        d.add_link(ObjectId(7), ObjectId(2), good, 0.5).unwrap(); // old → old
        d.add_link(v, ObjectId(1), good, 1.0).unwrap(); // new → old
        grown.append(d).unwrap();
        assert!(grown.has_overflow());
        let mut rows: Vec<Vec<f64>> = (0..theta.n_objects())
            .map(|i| theta.row(i).to_vec())
            .collect();
        rows.push(vec![0.6, 0.4]);
        let theta = MembershipMatrix::from_rows(&rows, 2);
        let mut compacted = grown.clone();
        compacted.compact();

        let live = PseudoLikelihood::build(&grown, &theta, 0.3);
        let compact = PseudoLikelihood::build(&compacted, &theta, 0.3);
        let gamma = [0.9, 1.4];
        assert_eq!(live.value(&gamma), compact.value(&gamma));
        let (mut g_live, mut g_comp) = ([0.0, 0.0], [0.0, 0.0]);
        live.gradient(&gamma, &mut g_live);
        compact.gradient(&gamma, &mut g_comp);
        assert_eq!(g_live, g_comp);
        let mut h_live = Matrix::zeros(2, 2);
        let mut h_comp = Matrix::zeros(2, 2);
        live.hessian(&gamma, &mut h_live);
        compact.hessian(&gamma, &mut h_comp);
        for r1 in 0..2 {
            for r2 in 0..2 {
                assert_eq!(h_live[(r1, r2)], h_comp[(r1, r2)]);
            }
        }
        // End to end: the learned strengths agree.
        let learner = StrengthLearner::new(0.5, NewtonOptions::default());
        let a = learner.learn(&grown, &theta, &[1.0, 1.0]);
        let b = learner.learn(&compacted, &theta, &[1.0, 1.0]);
        assert_eq!(a.gamma, b.gamma);
    }

    #[test]
    fn objective_increases_from_the_start() {
        let (g, theta) = two_relation_network(23);
        let learner = StrengthLearner::new(0.5, NewtonOptions::default());
        let before = learner.objective(&g, &theta, &[1.0, 1.0]);
        let out = learner.learn(&g, &theta, &[1.0, 1.0]);
        assert!(out.objective >= before - 1e-9);
    }
}
