//! The link feature function (Eq. 6) and structural consistency score.
//!
//! For a link `e = ⟨v_i, v_j⟩` of relation `r`, the paper's feature function
//! is the negative weighted cross entropy
//!
//! ```text
//! f(θ_i, θ_j, e, γ) = −γ(r) · w(e) · H(θ_j, θ_i)
//!                   =  γ(r) · w(e) · Σ_k θ_{j,k} ln θ_{i,k}
//! ```
//!
//! It is non-positive, increases with the similarity of the two membership
//! rows, decreases with the learned strength `γ(r)` and the input weight
//! `w(e)`, and is deliberately *asymmetric* in `(θ_i, θ_j)` (§3.3's three
//! desiderata). Two alternatives are provided for the ablation benches: the
//! KL divergence the paper explicitly rejects, and a symmetrized cross
//! entropy that violates desideratum 3.

use genclus_hin::HinGraph;
use genclus_stats::simplex::{cross_entropy, kl_divergence};
use genclus_stats::MembershipMatrix;

/// Which divergence drives the structural consistency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureKind {
    /// The paper's choice: `f = −γ·w·H(θ_j, θ_i)` — favors concentrated
    /// source memberships.
    #[default]
    CrossEntropy,
    /// `f = −γ·w·KL(θ_j ‖ θ_i)` — rejected by §3.3 because it does not
    /// reward concentration; kept for the ablation bench.
    KlDivergence,
    /// `f = −γ·w·(H(θ_j, θ_i) + H(θ_i, θ_j))/2` — violates the asymmetry
    /// desideratum; kept for the ablation bench.
    SymmetricCrossEntropy,
}

impl FeatureKind {
    /// The divergence `D(θ_i, θ_j)` such that `f = −γ·w·D`.
    #[inline]
    pub fn divergence(self, theta_i: &[f64], theta_j: &[f64]) -> f64 {
        match self {
            Self::CrossEntropy => cross_entropy(theta_j, theta_i),
            Self::KlDivergence => kl_divergence(theta_j, theta_i),
            Self::SymmetricCrossEntropy => {
                0.5 * (cross_entropy(theta_j, theta_i) + cross_entropy(theta_i, theta_j))
            }
        }
    }
}

/// `f(θ_i, θ_j, e, γ)` for a single link.
#[inline]
pub fn feature_value(
    kind: FeatureKind,
    theta_i: &[f64],
    theta_j: &[f64],
    gamma_r: f64,
    weight: f64,
) -> f64 {
    -gamma_r * weight * kind.divergence(theta_i, theta_j)
}

/// `Σ_{e ∈ E} f(θ_i, θ_j, e, γ)` — the log of the unnormalized structural
/// model (Eq. 7) and the first term of both `g₁` (Eq. 9) and `g₂'` (Eq. 14).
pub fn structural_score(
    graph: &HinGraph,
    theta: &MembershipMatrix,
    gamma: &[f64],
    kind: FeatureKind,
) -> f64 {
    debug_assert_eq!(gamma.len(), graph.schema().n_relations());
    let mut acc = 0.0;
    for v in graph.objects() {
        let ti = theta.row(v.index());
        for link in graph.out_links(v) {
            let tj = theta.row(link.endpoint.index());
            acc += feature_value(kind, ti, tj, gamma[link.relation.index()], link.weight);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::{HinBuilder, Schema};

    #[test]
    fn satisfies_desideratum_1_similarity() {
        // More similar memberships ⇒ larger f (less negative).
        let focused = [0.875, 0.0625, 0.0625];
        let near = [5.0 / 6.0, 1.0 / 12.0, 1.0 / 12.0];
        let neutral = [1.0 / 3.0; 3];
        let opposite = [0.0625, 0.0625, 0.875];
        let f_near = feature_value(FeatureKind::CrossEntropy, &near, &focused, 1.0, 1.0);
        let f_neutral = feature_value(FeatureKind::CrossEntropy, &near, &neutral, 1.0, 1.0);
        let f_opposite = feature_value(FeatureKind::CrossEntropy, &near, &opposite, 1.0, 1.0);
        assert!(f_near > f_neutral && f_neutral > f_opposite);
    }

    #[test]
    fn satisfies_desideratum_2_strength_and_weight() {
        let a = [0.7, 0.2, 0.1];
        let b = [0.6, 0.3, 0.1];
        let f1 = feature_value(FeatureKind::CrossEntropy, &a, &b, 1.0, 1.0);
        let f2 = feature_value(FeatureKind::CrossEntropy, &a, &b, 2.0, 1.0);
        let f3 = feature_value(FeatureKind::CrossEntropy, &a, &b, 1.0, 3.0);
        assert!(f2 < f1 && f3 < f1, "larger γ or w must decrease f");
    }

    #[test]
    fn satisfies_desideratum_3_asymmetry() {
        // Paper example: expert → neutral differs from neutral → expert.
        let expert = [5.0 / 6.0, 1.0 / 12.0, 1.0 / 12.0];
        let neutral = [1.0 / 3.0; 3];
        let f_e_to_n = feature_value(FeatureKind::CrossEntropy, &expert, &neutral, 1.0, 1.0);
        let f_n_to_e = feature_value(FeatureKind::CrossEntropy, &neutral, &expert, 1.0, 1.0);
        assert!((f_e_to_n - -1.7174).abs() < 5e-4);
        assert!((f_n_to_e - -1.0986).abs() < 5e-4);
        assert!(f_e_to_n < f_n_to_e);
        // The symmetric variant, by construction, cannot distinguish them.
        let s1 = feature_value(
            FeatureKind::SymmetricCrossEntropy,
            &expert,
            &neutral,
            1.0,
            1.0,
        );
        let s2 = feature_value(
            FeatureKind::SymmetricCrossEntropy,
            &neutral,
            &expert,
            1.0,
            1.0,
        );
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn kl_variant_is_zero_at_equal_rows() {
        let p = [0.5, 0.3, 0.2];
        assert!(feature_value(FeatureKind::KlDivergence, &p, &p, 2.0, 3.0).abs() < 1e-12);
        // Cross entropy is not: it pays the entropy of p.
        assert!(feature_value(FeatureKind::CrossEntropy, &p, &p, 2.0, 3.0) < -1e-3);
    }

    #[test]
    fn structural_score_sums_over_links() {
        let mut s = Schema::new();
        let t = s.add_object_type("t");
        let r = s.add_relation("r", t, t);
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "0");
        let v1 = b.add_object(t, "1");
        b.add_link(v0, v1, r, 2.0).unwrap();
        b.add_link(v1, v0, r, 1.0).unwrap();
        let g = b.build().unwrap();

        let theta = MembershipMatrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]], 2);
        let gamma = [1.5];
        let score = structural_score(&g, &theta, &gamma, FeatureKind::CrossEntropy);
        let manual = feature_value(
            FeatureKind::CrossEntropy,
            theta.row(0),
            theta.row(1),
            1.5,
            2.0,
        ) + feature_value(
            FeatureKind::CrossEntropy,
            theta.row(1),
            theta.row(0),
            1.5,
            1.0,
        );
        assert!((score - manual).abs() < 1e-12);
        assert!(score < 0.0, "cross-entropy features are non-positive");
    }

    #[test]
    fn structural_score_scales_linearly_in_gamma() {
        let mut s = Schema::new();
        let t = s.add_object_type("t");
        let r = s.add_relation("r", t, t);
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "0");
        let v1 = b.add_object(t, "1");
        b.add_link(v0, v1, r, 1.0).unwrap();
        let g = b.build().unwrap();
        let theta = MembershipMatrix::from_rows(&[vec![0.7, 0.3], vec![0.4, 0.6]], 2);
        let s1 = structural_score(&g, &theta, &[1.0], FeatureKind::CrossEntropy);
        let s2 = structural_score(&g, &theta, &[2.0], FeatureKind::CrossEntropy);
        assert!((s2 - 2.0 * s1).abs() < 1e-12);
    }
}
