//! Membership and component initialization (§4.3).
//!
//! Two strategies from the paper: pure random simplex rows, or a multi-start
//! scheme that warms up several random candidates with a few EM iterations
//! and keeps the one with the highest `g₁` — "the latter approach will
//! produce more stable results".

use crate::attr_model::ClusterComponents;
use crate::config::{GenClusConfig, InitStrategy};
use crate::em::EmEngine;
use crate::error::GenClusError;
use crate::objective::g1;
use genclus_hin::HinGraph;
use genclus_stats::{seeded_rng, MembershipMatrix};
use rand::Rng;

/// Validates the attribute subset against the network schema.
pub fn validate_attributes(graph: &HinGraph, config: &GenClusConfig) -> Result<(), GenClusError> {
    for &a in &config.attributes {
        if a.index() >= graph.schema().n_attributes() {
            return Err(GenClusError::UnknownAttribute(a));
        }
    }
    Ok(())
}

/// Draws one random starting state `(Θ, β)`.
pub fn random_state<R: Rng>(
    graph: &HinGraph,
    config: &GenClusConfig,
    rng: &mut R,
) -> (MembershipMatrix, Vec<ClusterComponents>) {
    let theta = MembershipMatrix::random(graph.n_objects(), config.n_clusters, rng);
    let comps = config
        .attributes
        .iter()
        .map(|&a| {
            ClusterComponents::init(
                config.n_clusters,
                graph.attribute(a),
                rng,
                config.beta_floor,
                config.variance_floor,
            )
        })
        .collect();
    (theta, comps)
}

/// Produces the initial `(Θ, β)` according to `config.init`.
pub fn initialize(
    graph: &HinGraph,
    config: &GenClusConfig,
    gamma: &[f64],
) -> Result<(MembershipMatrix, Vec<ClusterComponents>), GenClusError> {
    validate_attributes(graph, config)?;
    if graph.n_objects() == 0 {
        return Err(GenClusError::EmptyNetwork);
    }
    let mut rng = seeded_rng(config.seed);
    match config.init {
        InitStrategy::Random => Ok(random_state(graph, config, &mut rng)),
        InitStrategy::BestOfSeeds {
            candidates,
            warmup_iters,
        } => {
            let mut engine = EmEngine::new(
                graph,
                &config.attributes,
                config.n_clusters,
                config.threads,
                config.beta_floor,
                config.variance_floor,
            )
            .with_smoothing(config.theta_smoothing);
            let mut best: Option<(f64, MembershipMatrix, Vec<ClusterComponents>)> = None;
            for _ in 0..candidates.max(1) {
                let (theta0, comps0) = random_state(graph, config, &mut rng);
                let (theta, comps, _) =
                    engine.run(theta0, comps0, gamma, warmup_iters.max(1), config.em_tol);
                let score = g1(graph, &config.attributes, &theta, &comps, gamma);
                let better = best.as_ref().is_none_or(|(s, _, _)| score > *s);
                if better {
                    best = Some((score, theta, comps));
                }
            }
            let (_, theta, comps) = best.expect("candidates >= 1");
            Ok((theta, comps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::{AttributeId, HinBuilder, Schema};

    fn network() -> HinGraph {
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let r = s.add_relation("nn", t, t);
        let attr = s.add_numerical_attribute("x");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..8).map(|i| b.add_object(t, format!("v{i}"))).collect();
        for i in 0..8 {
            b.add_link(vs[i], vs[(i + 1) % 8], r, 1.0).unwrap();
        }
        for (i, &v) in vs.iter().enumerate() {
            let x = if i < 4 { -2.0 } else { 2.0 };
            b.add_numeric(v, AttributeId(0), x + 0.1 * i as f64)
                .unwrap();
        }
        let _ = attr;
        b.build().unwrap()
    }

    #[test]
    fn rejects_unknown_attribute() {
        let g = network();
        let config = GenClusConfig::new(2, vec![AttributeId(5)]);
        assert_eq!(
            initialize(&g, &config, &[1.0]),
            Err(GenClusError::UnknownAttribute(AttributeId(5)))
        );
    }

    #[test]
    fn rejects_empty_network() {
        let mut s = Schema::new();
        let _t = s.add_object_type("node");
        let _a = s.add_numerical_attribute("x");
        let g = HinBuilder::new(s).build().unwrap();
        let config = GenClusConfig::new(2, vec![AttributeId(0)]);
        assert_eq!(
            initialize(&g, &config, &[]),
            Err(GenClusError::EmptyNetwork)
        );
    }

    #[test]
    fn random_init_is_seed_deterministic() {
        let g = network();
        let config = GenClusConfig::new(2, vec![AttributeId(0)]).with_seed(5);
        let (t1, c1) = initialize(&g, &config, &[1.0]).unwrap();
        let (t2, c2) = initialize(&g, &config, &[1.0]).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(c1, c2);
        let other = GenClusConfig::new(2, vec![AttributeId(0)]).with_seed(6);
        let (t3, _) = initialize(&g, &other, &[1.0]).unwrap();
        assert!(t1.max_abs_diff(&t3) > 1e-6, "different seeds must differ");
    }

    #[test]
    fn best_of_seeds_scores_at_least_as_well_as_random() {
        let g = network();
        let attrs = vec![AttributeId(0)];
        let random_cfg = GenClusConfig::new(2, attrs.clone()).with_seed(1);
        let multi_cfg = GenClusConfig::new(2, attrs.clone()).with_seed(1).with_init(
            InitStrategy::BestOfSeeds {
                candidates: 4,
                warmup_iters: 3,
            },
        );
        let gamma = [1.0];
        let (tr, cr) = initialize(&g, &random_cfg, &gamma).unwrap();
        let (tm, cm) = initialize(&g, &multi_cfg, &gamma).unwrap();
        // The warm-started candidate has had 3 EM iterations; it must score
        // at least as well as a raw random draw scored after the same warmup.
        let mut engine =
            EmEngine::new(&g, &attrs, 2, 1, 1e-9, 1e-6).with_smoothing(random_cfg.theta_smoothing);
        let (tr, cr, _) = engine.run(tr, cr, &gamma, 3, 0.0);
        let s_random = g1(&g, &attrs, &tr, &cr, &gamma);
        let s_multi = g1(&g, &attrs, &tm, &cm, &gamma);
        assert!(
            s_multi >= s_random - 1e-9,
            "multi-start {s_multi} < warmed random {s_random}"
        );
    }
}
