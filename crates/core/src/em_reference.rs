//! The naive EM step kernel, kept as a provably-equivalent baseline.
//!
//! This is the seed implementation of the inner EM sweep, preserved
//! verbatim in spirit: it calls `ln` **per observation** (`θ_{v,k}.ln()`
//! and `β_{k,l}.ln()` / the Gaussian `ln(2πσ²)` every time), allocates its
//! scratch (responsibility row, accumulators, output matrix) on **every
//! step**, and spawns scoped OS threads **per step** instead of keeping a
//! worker pool. The optimized kernel in [`crate::em`] must produce the same
//! `Θ` to ≤ 1e-12 per entry (asserted by `cached_kernel_matches_naive_*`
//! tests) and beat it on wall-time (measured by the `bench_em` binary, see
//! `BENCH_em.json`).
//!
//! Do not "fix" the inefficiencies here — they are the yardstick.

use crate::attr_model::{ClusterComponents, ComponentAccumulator};
use crate::em::EmStepResult;
use genclus_hin::{AttributeData, AttributeId, HinGraph};
use genclus_stats::logsumexp::normalize_log_weights;
use genclus_stats::simplex::normalize_floored;
use genclus_stats::MembershipMatrix;

/// Configuration mirror of [`crate::em::EmEngine`] for the naive kernel.
pub struct ReferenceEmKernel<'g> {
    graph: &'g HinGraph,
    attr_ids: Vec<AttributeId>,
    k: usize,
    threads: usize,
    beta_floor: f64,
    variance_floor: f64,
    theta_smoothing: f64,
}

impl<'g> ReferenceEmKernel<'g> {
    /// Creates the naive kernel with the same parameters as
    /// [`crate::em::EmEngine::new`].
    pub fn new(
        graph: &'g HinGraph,
        attr_ids: &[AttributeId],
        k: usize,
        threads: usize,
        beta_floor: f64,
        variance_floor: f64,
    ) -> Self {
        Self {
            graph,
            attr_ids: attr_ids.to_vec(),
            k,
            threads: threads.max(1),
            beta_floor,
            variance_floor,
            theta_smoothing: 0.0,
        }
    }

    /// See [`crate::em::EmEngine::with_smoothing`].
    pub fn with_smoothing(mut self, epsilon: f64) -> Self {
        assert!((0.0..1.0).contains(&epsilon), "smoothing must be in [0, 1)");
        self.theta_smoothing = epsilon;
        self
    }

    /// One naive E+M iteration: fresh allocations throughout and, for
    /// `threads > 1`, a fresh scoped thread spawn.
    pub fn step(
        &self,
        theta: &MembershipMatrix,
        components: &[ClusterComponents],
        gamma: &[f64],
    ) -> EmStepResult {
        let n = self.graph.n_objects();
        let k = self.k;
        let tables: Vec<&AttributeData> = self
            .attr_ids
            .iter()
            .map(|&a| self.graph.attribute(a))
            .collect();

        let mut new_theta = MembershipMatrix::uniform(n, k);
        let rows_per_chunk = n.div_ceil(self.threads);
        let smoothing = self.theta_smoothing;

        let (accumulators, max_delta) = if self.threads == 1 {
            let mut accs: Vec<ComponentAccumulator> = components
                .iter()
                .map(ComponentAccumulator::zeros_like)
                .collect();
            let delta = naive_range(
                self.graph,
                &tables,
                components,
                theta,
                gamma,
                0,
                n,
                new_theta.as_mut_slice(),
                &mut accs,
                k,
                smoothing,
            );
            (accs, delta)
        } else {
            let graph = self.graph;
            let chunks: Vec<&mut [f64]> = new_theta.par_chunks_mut(rows_per_chunk).collect();
            let tables = &tables;
            let results: Vec<(Vec<ComponentAccumulator>, f64)> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (chunk_idx, chunk) in chunks.into_iter().enumerate() {
                    let start = chunk_idx * rows_per_chunk;
                    let end = (start + chunk.len() / k).min(n);
                    handles.push(scope.spawn(move || {
                        let mut accs: Vec<ComponentAccumulator> = components
                            .iter()
                            .map(ComponentAccumulator::zeros_like)
                            .collect();
                        let delta = naive_range(
                            graph, tables, components, theta, gamma, start, end, chunk, &mut accs,
                            k, smoothing,
                        );
                        (accs, delta)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("EM worker panicked"))
                    .collect()
            });

            let mut merged: Vec<ComponentAccumulator> = components
                .iter()
                .map(ComponentAccumulator::zeros_like)
                .collect();
            let mut max_delta = 0.0f64;
            for (accs, delta) in results {
                for (m, a) in merged.iter_mut().zip(&accs) {
                    m.merge(a);
                }
                max_delta = max_delta.max(delta);
            }
            (merged, max_delta)
        };

        let new_components: Vec<ClusterComponents> = accumulators
            .iter()
            .zip(components)
            .map(|(acc, prev)| acc.finalize(prev, self.beta_floor, self.variance_floor))
            .collect();

        EmStepResult {
            theta: new_theta,
            components: new_components,
            max_delta,
        }
    }
}

/// The naive per-object pass: `ln` per observation, no cached tables.
#[allow(clippy::too_many_arguments)]
fn naive_range(
    graph: &HinGraph,
    tables: &[&AttributeData],
    components: &[ClusterComponents],
    theta_old: &MembershipMatrix,
    gamma: &[f64],
    start: usize,
    end: usize,
    out_rows: &mut [f64],
    accs: &mut [ComponentAccumulator],
    k: usize,
    smoothing: f64,
) -> f64 {
    let mut resp = vec![0.0f64; k];
    let mut max_delta = 0.0f64;

    for v_idx in start..end {
        let v = genclus_hin::ObjectId::from_index(v_idx);
        let out_row = &mut out_rows[(v_idx - start) * k..(v_idx - start + 1) * k];
        out_row.iter_mut().for_each(|x| *x = 0.0);

        for link in graph.out_links(v) {
            let gw = gamma[link.relation.index()] * link.weight;
            if gw == 0.0 {
                continue;
            }
            let tu = theta_old.row(link.endpoint.index());
            for (o, &t) in out_row.iter_mut().zip(tu) {
                *o += gw * t;
            }
        }

        let tv = theta_old.row(v_idx);
        for ((table, comp), acc) in tables.iter().zip(components).zip(accs.iter_mut()) {
            match (table, comp) {
                (AttributeData::Categorical { .. }, ClusterComponents::Categorical(cat)) => {
                    for &(term, count) in table.term_counts(v) {
                        for (kk, r) in resp.iter_mut().enumerate() {
                            // Per-observation logs, recomputed every time.
                            *r = tv[kk].ln() + cat.prob(kk, term).ln();
                        }
                        normalize_log_weights(&mut resp);
                        for (kk, &r) in resp.iter().enumerate() {
                            let mass = count * r;
                            out_row[kk] += mass;
                            acc.add_term(kk, term, mass);
                        }
                    }
                }
                (AttributeData::Numerical { .. }, ClusterComponents::Gaussian(gauss)) => {
                    for &x in table.values(v) {
                        for (kk, r) in resp.iter_mut().enumerate() {
                            let d = x - gauss.mean(kk);
                            let var = gauss.variance(kk);
                            // The closed form with its ln(2πσ²) per
                            // observation.
                            *r = tv[kk].ln()
                                - 0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
                        }
                        normalize_log_weights(&mut resp);
                        for (kk, &r) in resp.iter().enumerate() {
                            out_row[kk] += r;
                            acc.add_value(kk, x, r);
                        }
                    }
                }
                _ => unreachable!("attribute kind / component kind mismatch"),
            }
        }

        normalize_floored(out_row);
        if smoothing > 0.0 {
            let uniform = smoothing / k as f64;
            out_row
                .iter_mut()
                .for_each(|o| *o = (1.0 - smoothing) * *o + uniform);
        }
        for (o, t) in out_row.iter().zip(tv) {
            max_delta = max_delta.max((o - t).abs());
        }
    }
    max_delta
}
