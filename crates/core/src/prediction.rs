//! Link prediction from membership similarity (§5.2.2).
//!
//! The paper tests clustering quality by ranking candidate objects for a
//! query object with a similarity function on their membership vectors.
//! Three similarity functions appear in Tables 2–4; the asymmetric
//! `−H(θ_j, θ_i)` is the paper's own feature function and gives the best
//! accuracy in its experiments.

use genclus_hin::ObjectId;
use genclus_stats::simplex::cross_entropy;
use genclus_stats::MembershipMatrix;

/// Similarity function between a query membership `θ_i` and a candidate
/// membership `θ_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Similarity {
    /// `cos(θ_i, θ_j)`.
    Cosine,
    /// `−‖θ_i − θ_j‖₂`.
    NegEuclidean,
    /// `−H(θ_j, θ_i)` — asymmetric, mirrors the model's feature function.
    NegCrossEntropy,
}

impl Similarity {
    /// All three functions, in the order the paper's tables list them.
    pub const ALL: [Similarity; 3] = [
        Similarity::Cosine,
        Similarity::NegEuclidean,
        Similarity::NegCrossEntropy,
    ];

    /// Human-readable label matching the paper's table rows.
    pub fn label(self) -> &'static str {
        match self {
            Self::Cosine => "cos(theta_i,theta_j)",
            Self::NegEuclidean => "-||theta_i - theta_j||",
            Self::NegCrossEntropy => "-H(theta_j,theta_i)",
        }
    }

    /// Evaluates the similarity of `candidate` to `query`.
    pub fn score(self, query: &[f64], candidate: &[f64]) -> f64 {
        match self {
            Self::Cosine => {
                let dot: f64 = query.iter().zip(candidate).map(|(a, b)| a * b).sum();
                let na: f64 = query.iter().map(|a| a * a).sum::<f64>().sqrt();
                let nb: f64 = candidate.iter().map(|b| b * b).sum::<f64>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na * nb)
                }
            }
            Self::NegEuclidean => -query
                .iter()
                .zip(candidate)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt(),
            Self::NegCrossEntropy => -cross_entropy(candidate, query),
        }
    }
}

/// Scores and ranks `candidates` for `query`, descending by similarity.
///
/// Ties are broken by object id so the ranking is deterministic.
pub fn rank_candidates(
    theta: &MembershipMatrix,
    query: ObjectId,
    candidates: &[ObjectId],
    sim: Similarity,
) -> Vec<(ObjectId, f64)> {
    rank_row(theta, theta.row(query.index()), candidates, sim)
}

/// [`rank_candidates`] for a query membership row that need not belong to
/// an object of `theta` — e.g. a row produced by online fold-in of a new
/// object that was never committed to the network.
pub fn rank_row(
    theta: &MembershipMatrix,
    query_row: &[f64],
    candidates: &[ObjectId],
    sim: Similarity,
) -> Vec<(ObjectId, f64)> {
    let mut scored: Vec<(ObjectId, f64)> = candidates
        .iter()
        .map(|&c| (c, sim.score(query_row, theta.row(c.index()))))
        .collect();
    scored.sort_by(cmp_scored);
    scored
}

/// The `k` best candidates for `query_row`, descending, with the same
/// deterministic tie-breaking as [`rank_candidates`]. Uses an `O(n)`
/// selection + `O(k log k)` sort instead of sorting all `n` candidates —
/// the serving top-k path scores every object of a type per query, so the
/// full sort is measurable at batch sizes.
///
/// If `k ≥ candidates.len()` the full ranking is returned.
pub fn top_k(
    theta: &MembershipMatrix,
    query_row: &[f64],
    candidates: &[ObjectId],
    sim: Similarity,
    k: usize,
) -> Vec<(ObjectId, f64)> {
    let mut scored: Vec<(ObjectId, f64)> = candidates
        .iter()
        .map(|&c| (c, sim.score(query_row, theta.row(c.index()))))
        .collect();
    if k < scored.len() {
        scored.select_nth_unstable_by(k, cmp_scored);
        scored.truncate(k);
    }
    scored.sort_by(cmp_scored);
    scored
}

/// Descending by score with NaN ranked strictly last, ascending by id on
/// ties (including among NaNs) — the one ordering every ranking entry
/// point shares. This is a **total** order: treating NaN as "equal to
/// everything" (the old behavior) breaks transitivity, and
/// `sort_by`/`select_nth_unstable_by` may panic on comparators that do not
/// implement a total order when scores mix NaN and finite values.
fn cmp_scored(a: &(ObjectId, f64), b: &(ObjectId, f64)) -> std::cmp::Ordering {
    match b.1.partial_cmp(&a.1) {
        Some(o) => o.then(a.0.cmp(&b.0)),
        // At least one NaN: non-NaN first, then ascending id.
        None => a.1.is_nan().cmp(&b.1.is_nan()).then(a.0.cmp(&b.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        let a = [1.0, 0.0];
        assert!((Similarity::Cosine.score(&a, &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(Similarity::Cosine.score(&a, &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn euclidean_is_zero_at_identity_and_negative_elsewhere() {
        let a = [0.5, 0.5];
        assert_eq!(Similarity::NegEuclidean.score(&a, &a), 0.0);
        assert!(Similarity::NegEuclidean.score(&a, &[0.9, 0.1]) < 0.0);
    }

    #[test]
    fn neg_cross_entropy_is_asymmetric() {
        let focused = [0.9, 0.05, 0.05];
        let uniform = [1.0 / 3.0; 3];
        let s1 = Similarity::NegCrossEntropy.score(&focused, &uniform);
        let s2 = Similarity::NegCrossEntropy.score(&uniform, &focused);
        assert!((s1 - s2).abs() > 1e-3, "must be asymmetric: {s1} vs {s2}");
    }

    #[test]
    fn all_sims_prefer_the_matching_candidate() {
        let query = [0.9, 0.05, 0.05];
        let matching = [0.8, 0.1, 0.1];
        let opposite = [0.05, 0.05, 0.9];
        for sim in Similarity::ALL {
            assert!(
                sim.score(&query, &matching) > sim.score(&query, &opposite),
                "{} failed",
                sim.label()
            );
        }
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let theta = MembershipMatrix::from_rows(
            &[
                vec![0.9, 0.1], // query
                vec![0.2, 0.8],
                vec![0.85, 0.15],
                vec![0.5, 0.5],
            ],
            2,
        );
        let candidates = [ObjectId(1), ObjectId(2), ObjectId(3)];
        let ranked = rank_candidates(&theta, ObjectId(0), &candidates, Similarity::Cosine);
        assert_eq!(ranked[0].0, ObjectId(2));
        assert_eq!(ranked.last().unwrap().0, ObjectId(1));
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn top_k_truncates_and_matches_full_ranking() {
        let theta = MembershipMatrix::from_rows(
            &[
                vec![0.9, 0.1], // query
                vec![0.2, 0.8],
                vec![0.85, 0.15],
                vec![0.5, 0.5],
                vec![0.88, 0.12],
                vec![0.1, 0.9],
            ],
            2,
        );
        let candidates: Vec<ObjectId> = (1..6).map(ObjectId).collect();
        for sim in Similarity::ALL {
            let full = rank_candidates(&theta, ObjectId(0), &candidates, sim);
            for k in 0..=candidates.len() + 2 {
                let top = top_k(&theta, theta.row(0), &candidates, sim, k);
                assert_eq!(
                    top.len(),
                    k.min(candidates.len()),
                    "k > candidates returns everything, never panics"
                );
                assert_eq!(
                    top,
                    full[..top.len()],
                    "{}: top-{k} must equal the full ranking's prefix",
                    sim.label()
                );
            }
        }
    }

    #[test]
    fn ties_break_by_object_id_in_every_entry_point() {
        // Three candidates share the query's exact row — all tie at the
        // maximum similarity; ids must decide the order deterministically.
        let row = vec![0.6, 0.4];
        let theta = MembershipMatrix::from_rows(
            &[row.clone(), row.clone(), vec![0.1, 0.9], row.clone(), row],
            2,
        );
        let candidates = [ObjectId(3), ObjectId(1), ObjectId(4), ObjectId(2)];
        for sim in Similarity::ALL {
            let full = rank_candidates(&theta, ObjectId(0), &candidates, sim);
            let tied: Vec<ObjectId> = full.iter().take(3).map(|&(c, _)| c).collect();
            assert_eq!(
                tied,
                vec![ObjectId(1), ObjectId(3), ObjectId(4)],
                "{}: tied candidates sort by id",
                sim.label()
            );
            assert_eq!(full.last().unwrap().0, ObjectId(2));
            let top2 = top_k(&theta, theta.row(0), &candidates, sim, 2);
            assert_eq!(top2, full[..2], "{}: selection respects ties", sim.label());
        }
    }

    #[test]
    fn all_sims_rank_a_planted_match_first() {
        // One candidate is nearly identical to the query, the rest are far;
        // every similarity variant must put the plant on top.
        let theta = MembershipMatrix::from_rows(
            &[
                vec![0.7, 0.2, 0.1],                   // query
                vec![0.1, 0.8, 0.1],                   // far
                vec![0.69, 0.21, 0.1],                 // planted match
                vec![0.1, 0.1, 0.8],                   // far
                vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], // uniform
            ],
            3,
        );
        let candidates: Vec<ObjectId> = (1..5).map(ObjectId).collect();
        for sim in Similarity::ALL {
            let ranked = rank_candidates(&theta, ObjectId(0), &candidates, sim);
            assert_eq!(
                ranked[0].0,
                ObjectId(2),
                "{} must find the planted match",
                sim.label()
            );
            let top1 = top_k(&theta, theta.row(0), &candidates, sim, 1);
            assert_eq!(top1[0].0, ObjectId(2));
        }
    }

    #[test]
    fn nan_scores_rank_last_with_id_ties_in_every_entry_point() {
        // `rank_row`/`top_k` accept *external* query rows (fold-in output,
        // operator input), so NaN scores are reachable: a NaN query makes
        // every candidate score NaN under Cosine / NegEuclidean. The
        // documented ordering — descending score, NaN strictly last,
        // ascending id on ties (including among the NaNs) — must hold
        // without panicking in the sort or the selection (a comparator
        // that maps NaN to "equal" is not a total order, which `sort_by` /
        // `select_nth_unstable_by` are allowed to reject at runtime).
        let theta = MembershipMatrix::from_rows(
            &[
                vec![0.9, 0.1],
                vec![0.8, 0.2],
                vec![0.5, 0.5],
                vec![0.3, 0.7],
                vec![0.2, 0.8],
            ],
            2,
        );
        let candidates = [ObjectId(4), ObjectId(3), ObjectId(2), ObjectId(1)];
        let all_nan = [f64::NAN, f64::NAN];
        for sim in [Similarity::Cosine, Similarity::NegEuclidean] {
            let ranked = rank_row(&theta, &all_nan, &candidates, sim);
            assert!(ranked.iter().all(|&(_, s)| s.is_nan()), "{}", sim.label());
            let got: Vec<ObjectId> = ranked.iter().map(|&(c, _)| c).collect();
            assert_eq!(
                got,
                vec![ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(4)],
                "{}: all-NaN ties order by ascending id",
                sim.label()
            );
            for k in 0..=candidates.len() + 1 {
                let top = top_k(&theta, &all_nan, &candidates, sim, k);
                assert_eq!(top.len(), k.min(candidates.len()));
                let prefix: Vec<ObjectId> = top.iter().map(|&(c, _)| c).collect();
                assert_eq!(prefix, got[..prefix.len()], "top-{k} prefix");
            }
        }
    }

    #[test]
    fn cmp_scored_is_a_total_order_over_mixed_nan_scores() {
        use std::cmp::Ordering;
        // The comparator itself (shared by every entry point) on a sample
        // mixing finite values, infinities, and NaN: NaN strictly after
        // every number, ids break ties everywhere — and the relation is a
        // genuine total order (antisymmetric, transitive), which is what
        // keeps `sort_by`'s runtime total-order check happy.
        let sample = [
            (ObjectId(3), f64::NAN),
            (ObjectId(0), 1.0),
            (ObjectId(1), f64::NAN),
            (ObjectId(2), f64::NEG_INFINITY),
            (ObjectId(4), 1.0),
            (ObjectId(5), f64::INFINITY),
        ];
        // Pairwise antisymmetry.
        for a in &sample {
            for b in &sample {
                assert_eq!(cmp_scored(a, b), cmp_scored(b, a).reverse(), "{a:?} {b:?}");
            }
        }
        // Transitivity over every triple.
        for a in &sample {
            for b in &sample {
                for c in &sample {
                    if cmp_scored(a, b) != Ordering::Greater
                        && cmp_scored(b, c) != Ordering::Greater
                    {
                        assert_ne!(
                            cmp_scored(a, c),
                            Ordering::Greater,
                            "transitivity violated on {a:?} {b:?} {c:?}"
                        );
                    }
                }
            }
        }
        let mut sorted = sample;
        sorted.sort_by(cmp_scored);
        let ids: Vec<u32> = sorted.iter().map(|&(c, _)| c.0).collect();
        // +inf, the finite tie by id, −inf, then the NaNs by id.
        assert_eq!(ids, vec![5, 0, 4, 2, 1, 3]);
    }

    #[test]
    fn rank_row_accepts_external_query_rows() {
        let theta =
            MembershipMatrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8], vec![0.5, 0.5]], 2);
        let folded = [0.15, 0.85]; // a fold-in result, not a row of theta
        let candidates = [ObjectId(0), ObjectId(1), ObjectId(2)];
        let ranked = rank_row(&theta, &folded, &candidates, Similarity::NegEuclidean);
        assert_eq!(ranked[0].0, ObjectId(1));
        assert_eq!(ranked.last().unwrap().0, ObjectId(0));
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(Similarity::Cosine.label(), "cos(theta_i,theta_j)");
        assert_eq!(Similarity::NegCrossEntropy.label(), "-H(theta_j,theta_i)");
    }
}
