//! Error type for model configuration and fitting.

use genclus_hin::AttributeId;

/// Everything that can go wrong configuring or fitting GenClus.
#[derive(Debug, Clone, PartialEq)]
pub enum GenClusError {
    /// `K` must be at least 2 (a single cluster is degenerate).
    InvalidClusterCount(usize),
    /// The user-specified attribute set referenced an attribute missing from
    /// the network's schema.
    UnknownAttribute(AttributeId),
    /// The user-specified attribute set was empty — the model needs at least
    /// one attribute to anchor the hidden space (§2.2).
    NoAttributes,
    /// The network has no objects.
    EmptyNetwork,
    /// A configuration field was out of range.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
}

impl std::fmt::Display for GenClusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidClusterCount(k) => {
                write!(f, "cluster count must be >= 2, got {k}")
            }
            Self::UnknownAttribute(a) => {
                write!(f, "attribute {a} is not declared in the network schema")
            }
            Self::NoAttributes => write!(
                f,
                "the clustering purpose must specify at least one attribute"
            ),
            Self::EmptyNetwork => write!(f, "cannot cluster an empty network"),
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for GenClusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(GenClusError::InvalidClusterCount(1)
            .to_string()
            .contains(">= 2"));
        assert!(GenClusError::UnknownAttribute(AttributeId(3))
            .to_string()
            .contains("AttributeId(3)"));
        let e = GenClusError::InvalidConfig {
            field: "sigma",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("sigma"));
    }
}
