//! The fitted model: memberships `Θ`, strengths `γ`, components `β`.

use crate::attr_model::ClusterComponents;
use genclus_hin::{AttributeId, ObjectId, RelationId};
use genclus_stats::MembershipMatrix;

/// A fitted GenClus model (§2.2's two outputs plus the attribute components
/// the paper's `β`).
#[derive(Debug, Clone)]
pub struct GenClusModel {
    /// Soft memberships `Θ (|V| × K)`; rows are strictly positive simplex
    /// points.
    pub theta: MembershipMatrix,
    /// Learned link-type strengths `γ (|R|)`, indexed by [`RelationId`].
    pub gamma: Vec<f64>,
    /// Attribute components in the order of `attributes`.
    pub components: Vec<ClusterComponents>,
    /// The attribute subset this model was fitted for (the clustering
    /// purpose).
    pub attributes: Vec<AttributeId>,
}

impl GenClusModel {
    /// Number of clusters `K`.
    pub fn n_clusters(&self) -> usize {
        self.theta.n_clusters()
    }

    /// Membership row of object `v`.
    pub fn membership(&self, v: ObjectId) -> &[f64] {
        self.theta.row(v.index())
    }

    /// Learned strength of relation `r`.
    pub fn strength(&self, r: RelationId) -> f64 {
        self.gamma[r.index()]
    }

    /// Hard labels (argmax per row).
    pub fn hard_labels(&self) -> Vec<usize> {
        self.theta.hard_labels()
    }

    /// The components fitted for `attribute`, if it was part of the
    /// clustering purpose.
    pub fn components_for(&self, attribute: AttributeId) -> Option<&ClusterComponents> {
        self.attributes
            .iter()
            .position(|&a| a == attribute)
            .map(|i| &self.components[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_model::GaussianComponents;

    fn tiny_model() -> GenClusModel {
        GenClusModel {
            theta: MembershipMatrix::from_rows(&[vec![0.8, 0.2], vec![0.3, 0.7]], 2),
            gamma: vec![1.5, 0.0],
            components: vec![ClusterComponents::Gaussian(
                GaussianComponents::from_params(vec![0.0, 1.0], vec![1.0, 1.0], 1e-6),
            )],
            attributes: vec![AttributeId(2)],
        }
    }

    #[test]
    fn accessors_are_consistent() {
        let m = tiny_model();
        assert_eq!(m.n_clusters(), 2);
        assert_eq!(m.membership(ObjectId(0))[0], 0.8);
        assert_eq!(m.strength(RelationId(0)), 1.5);
        assert_eq!(m.strength(RelationId(1)), 0.0);
        assert_eq!(m.hard_labels(), vec![0, 1]);
    }

    #[test]
    fn components_lookup_by_attribute() {
        let m = tiny_model();
        assert!(m.components_for(AttributeId(2)).is_some());
        assert!(m.components_for(AttributeId(0)).is_none());
    }
}
