//! The fitted model: memberships `Θ`, strengths `γ`, components `β`.

use crate::attr_model::ClusterComponents;
use genclus_hin::{AttributeId, ObjectId, RelationId};
use genclus_stats::MembershipMatrix;

/// A fitted GenClus model (§2.2's two outputs plus the attribute components
/// the paper's `β`).
#[derive(Debug, Clone)]
pub struct GenClusModel {
    /// Soft memberships `Θ (|V| × K)`; rows are strictly positive simplex
    /// points.
    pub theta: MembershipMatrix,
    /// Learned link-type strengths `γ (|R|)`, indexed by [`RelationId`].
    pub gamma: Vec<f64>,
    /// Attribute components in the order of `attributes`.
    pub components: Vec<ClusterComponents>,
    /// The attribute subset this model was fitted for (the clustering
    /// purpose).
    pub attributes: Vec<AttributeId>,
    /// Uniform-mixing weight `ε` the fit applied after every `Θ` update
    /// (`GenClusConfig::theta_smoothing`). Part of the model because the
    /// fitted `Θ` rows are fixed points of the *smoothed* Eq. 10 operator —
    /// online fold-in must apply the same `ε` to land on the same rows.
    pub theta_smoothing: f64,
}

impl GenClusModel {
    /// Number of clusters `K`.
    pub fn n_clusters(&self) -> usize {
        self.theta.n_clusters()
    }

    /// Membership row of object `v`.
    pub fn membership(&self, v: ObjectId) -> &[f64] {
        self.theta.row(v.index())
    }

    /// Learned strength of relation `r`.
    pub fn strength(&self, r: RelationId) -> f64 {
        self.gamma[r.index()]
    }

    /// Hard labels (argmax per row).
    pub fn hard_labels(&self) -> Vec<usize> {
        self.theta.hard_labels()
    }

    /// The components fitted for `attribute`, if it was part of the
    /// clustering purpose.
    pub fn components_for(&self, attribute: AttributeId) -> Option<&ClusterComponents> {
        self.attributes
            .iter()
            .position(|&a| a == attribute)
            .map(|i| &self.components[i])
    }

    /// Serializes the fitted model in the [`genclus_stats::bytesio`]
    /// convention: `γ`, components, the attribute subset, `ε`, and `Θ`
    /// **last**. Returns the byte offset of the first `Θ` entry within the
    /// emitted bytes; every item before it is 8 bytes wide, so a caller
    /// that starts writing at an 8-aligned position gets an 8-aligned `Θ`
    /// payload — the serve crate's zero-copy view depends on this.
    pub fn to_bytes(&self, out: &mut Vec<u8>) -> usize {
        use genclus_stats::bytesio::{put_f64, put_f64_slice, put_u64};
        let start = out.len();
        put_f64_slice(out, &self.gamma);
        put_u64(out, self.components.len() as u64);
        for c in &self.components {
            c.to_bytes(out);
        }
        put_u64(out, self.attributes.len() as u64);
        for a in &self.attributes {
            put_u64(out, a.index() as u64);
        }
        put_f64(out, self.theta_smoothing);
        let theta_start = out.len() - start;
        theta_start + self.theta.to_bytes(out)
    }

    /// Inverse of [`Self::to_bytes`]; `None` on malformed input or
    /// cross-field inconsistencies (component/attribute count mismatch,
    /// `Θ` column count differing across components, `ε` outside `[0, 1)`).
    pub fn from_bytes(r: &mut genclus_stats::bytesio::ByteReader<'_>) -> Option<Self> {
        let gamma = r.f64_slice()?;
        if gamma.iter().any(|&g| !(g >= 0.0 && g.is_finite())) {
            return None;
        }
        let n_comp = r.count(8)?;
        let mut components = Vec::with_capacity(n_comp);
        for _ in 0..n_comp {
            components.push(ClusterComponents::from_bytes(r)?);
        }
        let n_attr = r.count(8)?;
        if n_attr != n_comp {
            return None;
        }
        let mut attributes = Vec::with_capacity(n_attr);
        for _ in 0..n_attr {
            let a: usize = r.u64()?.try_into().ok()?;
            if a > u16::MAX as usize {
                // Out of the id space — return None rather than tripping
                // `AttributeId::from_index`'s assertion on crafted input.
                return None;
            }
            attributes.push(AttributeId::from_index(a));
        }
        let theta_smoothing = r.f64()?;
        if !(0.0..1.0).contains(&theta_smoothing) {
            return None;
        }
        let theta = MembershipMatrix::from_bytes(r)?;
        if components
            .iter()
            .any(|c| c.n_clusters() != theta.n_clusters())
        {
            return None;
        }
        Some(Self {
            theta,
            gamma,
            components,
            attributes,
            theta_smoothing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_model::GaussianComponents;

    fn tiny_model() -> GenClusModel {
        GenClusModel {
            theta: MembershipMatrix::from_rows(&[vec![0.8, 0.2], vec![0.3, 0.7]], 2),
            gamma: vec![1.5, 0.0],
            components: vec![ClusterComponents::Gaussian(
                GaussianComponents::from_params(vec![0.0, 1.0], vec![1.0, 1.0], 1e-6),
            )],
            attributes: vec![AttributeId(2)],
            theta_smoothing: 0.05,
        }
    }

    #[test]
    fn accessors_are_consistent() {
        let m = tiny_model();
        assert_eq!(m.n_clusters(), 2);
        assert_eq!(m.membership(ObjectId(0))[0], 0.8);
        assert_eq!(m.strength(RelationId(0)), 1.5);
        assert_eq!(m.strength(RelationId(1)), 0.0);
        assert_eq!(m.hard_labels(), vec![0, 1]);
    }

    #[test]
    fn components_lookup_by_attribute() {
        let m = tiny_model();
        assert!(m.components_for(AttributeId(2)).is_some());
        assert!(m.components_for(AttributeId(0)).is_none());
    }

    #[test]
    fn bytes_round_trip_is_byte_identical_with_aligned_theta() {
        let m = tiny_model();
        let mut bytes = Vec::new();
        let theta_off = m.to_bytes(&mut bytes);
        assert_eq!(theta_off % 8, 0, "Θ data must stay 8-aligned");
        // The Θ payload really does live at the reported offset.
        let first = f64::from_bits(u64::from_le_bytes(
            bytes[theta_off..theta_off + 8].try_into().unwrap(),
        ));
        assert_eq!(first, m.theta.row(0)[0]);
        let mut r = genclus_stats::bytesio::ByteReader::new(&bytes);
        let back = GenClusModel::from_bytes(&mut r).unwrap();
        assert_eq!(back.gamma, m.gamma);
        assert_eq!(back.attributes, m.attributes);
        assert_eq!(back.theta_smoothing, m.theta_smoothing);
        assert_eq!(back.theta, m.theta);
        assert_eq!(back.components, m.components);
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, bytes, "save → load → save must be byte-identical");
    }

    #[test]
    fn malformed_model_bytes_are_rejected() {
        let m = tiny_model();
        let mut bytes = Vec::new();
        m.to_bytes(&mut bytes);
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            let mut r = genclus_stats::bytesio::ByteReader::new(&bytes[..cut]);
            assert!(GenClusModel::from_bytes(&mut r).is_none());
        }
        // A negative strength must be rejected.
        let mut bad = bytes.clone();
        let neg = (-1.0f64).to_bits().to_le_bytes();
        bad[8..16].copy_from_slice(&neg); // first gamma entry
        let mut r = genclus_stats::bytesio::ByteReader::new(&bad);
        assert!(GenClusModel::from_bytes(&mut r).is_none());
    }
}
