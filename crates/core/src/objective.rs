//! Objective functions: attribute likelihood, `g₁` (Eq. 9) and the
//! pseudo-log-likelihood `g₂'` (Eq. 14).
//!
//! `g₁` is what cluster optimization maximizes for fixed `γ`; `g₂'` is what
//! strength learning maximizes for fixed `(Θ, β)`. The full regularized
//! objective `g` (Eq. 8) differs from `g₁` only by the intractable partition
//! function and the `γ` prior, both constant during cluster optimization.

use crate::attr_model::ClusterComponents;
use crate::feature::{structural_score, FeatureKind};
use genclus_hin::{AttributeData, AttributeId, HinGraph};
use genclus_stats::logsumexp::log_sum_exp;
use genclus_stats::MembershipMatrix;

/// `Σ_X Σ_{v ∈ V_X} Σ_{x ∈ v[X]} ln Σ_k θ_{v,k} p(x | β_k)` — the mixture
/// log-likelihood of all observations of the specified attributes
/// (Eqs. 3–5, in log form).
pub fn attribute_log_likelihood(
    graph: &HinGraph,
    attr_ids: &[AttributeId],
    theta: &MembershipMatrix,
    components: &[ClusterComponents],
) -> f64 {
    debug_assert_eq!(attr_ids.len(), components.len());
    let k = theta.n_clusters();
    let mut buf = vec![0.0f64; k];
    let mut total = 0.0;
    for (&a, comp) in attr_ids.iter().zip(components) {
        let table = graph.attribute(a);
        match (table, comp) {
            (AttributeData::Categorical { .. }, ClusterComponents::Categorical(cat)) => {
                for v in graph.objects() {
                    let tv = theta.row(v.index());
                    for &(term, count) in table.term_counts(v) {
                        for (kk, b) in buf.iter_mut().enumerate() {
                            *b = tv[kk].ln() + cat.log_prob(kk, term);
                        }
                        total += count * log_sum_exp(&buf);
                    }
                }
            }
            (AttributeData::Numerical { .. }, ClusterComponents::Gaussian(gauss)) => {
                for v in graph.objects() {
                    let tv = theta.row(v.index());
                    for &x in table.values(v) {
                        for (kk, b) in buf.iter_mut().enumerate() {
                            *b = tv[kk].ln() + gauss.log_pdf(kk, x);
                        }
                        total += log_sum_exp(&buf);
                    }
                }
            }
            _ => unreachable!("attribute kind / component kind mismatch"),
        }
    }
    total
}

/// `g₁(Θ, β)` (Eq. 9): structural score plus attribute log-likelihood.
pub fn g1(
    graph: &HinGraph,
    attr_ids: &[AttributeId],
    theta: &MembershipMatrix,
    components: &[ClusterComponents],
    gamma: &[f64],
) -> f64 {
    structural_score(graph, theta, gamma, FeatureKind::CrossEntropy)
        + attribute_log_likelihood(graph, attr_ids, theta, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_model::{CategoricalComponents, GaussianComponents};
    use genclus_hin::{HinBuilder, Schema};

    fn tiny_text_network() -> (HinGraph, AttributeId) {
        let mut s = Schema::new();
        let t = s.add_object_type("doc");
        let r = s.add_relation("cite", t, t);
        let text = s.add_categorical_attribute("text", 3);
        let mut b = HinBuilder::new(s);
        let d0 = b.add_object(t, "d0");
        let d1 = b.add_object(t, "d1");
        b.add_link(d0, d1, r, 1.0).unwrap();
        b.add_term_count(d0, text, 0, 2.0).unwrap();
        b.add_term_count(d1, text, 2, 1.0).unwrap();
        (b.build().unwrap(), text)
    }

    #[test]
    fn categorical_likelihood_matches_hand_computation() {
        let (g, text) = tiny_text_network();
        let theta = MembershipMatrix::from_rows(&[vec![0.9, 0.1], vec![0.3, 0.7]], 2);
        let comps = vec![ClusterComponents::Categorical(
            CategoricalComponents::from_rows(&[vec![0.8, 0.1, 0.1], vec![0.1, 0.1, 0.8]], 1e-12),
        )];
        let ll = attribute_log_likelihood(&g, &[text], &theta, &comps);
        // d0: term 0 count 2 → 2·ln(0.9·0.8 + 0.1·0.1)
        // d1: term 2 count 1 → ln(0.3·0.1 + 0.7·0.8)
        let expected = 2.0 * (0.9f64 * 0.8 + 0.1 * 0.1).ln() + (0.3f64 * 0.1 + 0.7 * 0.8).ln();
        assert!((ll - expected).abs() < 1e-9, "{ll} vs {expected}");
    }

    #[test]
    fn gaussian_likelihood_matches_hand_computation() {
        let mut s = Schema::new();
        let t = s.add_object_type("sensor");
        let attr = s.add_numerical_attribute("temp");
        let mut b = HinBuilder::new(s);
        let v = b.add_object(t, "s0");
        b.add_numeric(v, attr, 1.0).unwrap();
        let g = b.build().unwrap();

        let theta = MembershipMatrix::from_rows(&[vec![0.6, 0.4]], 2);
        let gauss = GaussianComponents::from_params(vec![0.0, 2.0], vec![1.0, 1.0], 1e-6);
        let p0 = (gauss.log_pdf(0, 1.0)).exp();
        let p1 = (gauss.log_pdf(1, 1.0)).exp();
        let comps = vec![ClusterComponents::Gaussian(gauss)];
        let ll = attribute_log_likelihood(&g, &[attr], &theta, &comps);
        let expected = (0.6 * p0 + 0.4 * p1).ln();
        assert!((ll - expected).abs() < 1e-9);
    }

    #[test]
    fn better_fitting_theta_scores_higher_g1() {
        let (g, text) = tiny_text_network();
        let comps = vec![ClusterComponents::Categorical(
            CategoricalComponents::from_rows(&[vec![0.8, 0.1, 0.1], vec![0.1, 0.1, 0.8]], 1e-12),
        )];
        // d0 emits term 0 (cluster 0's term), d1 emits term 2 (cluster 1's).
        let good = MembershipMatrix::from_rows(&[vec![0.95, 0.05], vec![0.05, 0.95]], 2);
        let bad = MembershipMatrix::from_rows(&[vec![0.05, 0.95], vec![0.95, 0.05]], 2);
        let g_good = g1(&g, &[text], &good, &comps, &[1.0]);
        let g_bad = g1(&g, &[text], &bad, &comps, &[1.0]);
        assert!(g_good > g_bad);
    }

    #[test]
    fn likelihood_ignores_unobserved_objects() {
        // An object with zero observations contributes nothing.
        let mut s = Schema::new();
        let t = s.add_object_type("doc");
        let text = s.add_categorical_attribute("text", 2);
        let mut b = HinBuilder::new(s);
        let _lonely = b.add_object(t, "no-obs");
        let g = b.build().unwrap();
        let theta = MembershipMatrix::uniform(1, 2);
        let comps = vec![ClusterComponents::Categorical(
            CategoricalComponents::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]], 1e-12),
        )];
        assert_eq!(attribute_log_likelihood(&g, &[text], &theta, &comps), 0.0);
    }
}
