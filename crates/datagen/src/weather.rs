//! Synthetic weather sensor network generator (paper Appendix C).
//!
//! The construction follows the appendix step by step:
//!
//! 1. **Network size** — `#T` temperature sensors, `#P` precipitation
//!    sensors, `k` nearest neighbors per sensor type.
//! 2. **Network structure** — every sensor gets a uniform random location in
//!    the unit disk; an out-link exists from `i` to each of its `k` nearest
//!    neighbors *of each type*.
//! 3. **Weather pattern** — `K` patterns, each a Gaussian over
//!    (temperature, precipitation); the disk is partitioned into `K` equal-
//!    width rings by distance from the center, one pattern per ring.
//! 4. **Cluster membership** — soft memberships from the reciprocal distance
//!    of the sensor's radius to the nearby ring centers. Following §5.1,
//!    temperature sensors blend their **two** nearest rings (less noisy)
//!    while precipitation sensors blend their **three** nearest rings (more
//!    noisy).
//! 5. **Attribute observations** — each sensor draws `#obs` values from the
//!    mixture of its ring patterns weighted by its membership; temperature
//!    sensors observe only temperature, precipitation sensors only
//!    precipitation — the incomplete-attribute situation of Example 2.

use genclus_hin::prelude::*;
use genclus_stats::rng::{sample_categorical, sample_gaussian};
use rand::Rng;

/// The two weather pattern layouts of §5.1.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternSetting {
    /// Means (1,1), (2,2), (3,3), (4,4); σ = 0.2 for both attributes. Either
    /// attribute alone suffices to tell clusters apart.
    Setting1,
    /// Means (1,1), (−1,1), (−1,−1), (1,−1); σ = 0.2. XOR-like: both
    /// attributes are required ("more difficult", §5.1).
    Setting2,
    /// Custom pattern means and per-attribute standard deviations.
    Custom {
        /// `(temperature mean, precipitation mean)` per cluster.
        means: Vec<(f64, f64)>,
        /// Temperature std-dev.
        std_temp: f64,
        /// Precipitation std-dev.
        std_precip: f64,
    },
}

impl PatternSetting {
    /// The pattern means `(μ_T, μ_P)` per cluster.
    pub fn means(&self) -> Vec<(f64, f64)> {
        match self {
            Self::Setting1 => vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)],
            Self::Setting2 => vec![(1.0, 1.0), (-1.0, 1.0), (-1.0, -1.0), (1.0, -1.0)],
            Self::Custom { means, .. } => means.clone(),
        }
    }

    /// Per-attribute standard deviations `(σ_T, σ_P)`.
    pub fn stds(&self) -> (f64, f64) {
        match self {
            Self::Setting1 | Self::Setting2 => (0.2, 0.2),
            Self::Custom {
                std_temp,
                std_precip,
                ..
            } => (*std_temp, *std_precip),
        }
    }
}

/// Generator parameters (paper defaults: 5-NN per type, 4 clusters).
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherConfig {
    /// Number of temperature sensors `#T`.
    pub n_temp: usize,
    /// Number of precipitation sensors `#P`.
    pub n_precip: usize,
    /// Nearest neighbors per sensor type (`k`; the paper uses 5, so each
    /// sensor has 10 out-links in total).
    pub k_neighbors: usize,
    /// Observations per sensor (`#obs`; 1, 5 or 20 in the paper).
    pub n_obs: usize,
    /// Weather pattern layout.
    pub pattern: PatternSetting,
    /// RNG seed.
    pub seed: u64,
}

impl WeatherConfig {
    /// The paper's base configuration for a given setting:
    /// `#T = 1000`, `#P = 250`, 5-NN, 5 observations.
    pub fn paper_default(pattern: PatternSetting) -> Self {
        Self {
            n_temp: 1000,
            n_precip: 250,
            k_neighbors: 5,
            n_obs: 5,
            pattern,
            seed: 0,
        }
    }
}

/// Relation ids of the four kNN link types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeatherRelations {
    /// ⟨T, T⟩.
    pub tt: RelationId,
    /// ⟨T, P⟩.
    pub tp: RelationId,
    /// ⟨P, T⟩.
    pub pt: RelationId,
    /// ⟨P, P⟩.
    pub pp: RelationId,
}

impl WeatherRelations {
    /// `(label, id)` pairs in the paper's Table 5 column order.
    pub fn labeled(&self) -> [(&'static str, RelationId); 4] {
        [
            ("<T,T>", self.tt),
            ("<T,P>", self.tp),
            ("<P,T>", self.pt),
            ("<P,P>", self.pp),
        ]
    }
}

/// A generated weather sensor network with its ground truth.
#[derive(Debug, Clone)]
pub struct WeatherNetwork {
    /// The network: sensors, kNN links, observations.
    pub graph: HinGraph,
    /// Hard ground-truth cluster per sensor (argmax of the soft membership).
    pub labels: Vec<usize>,
    /// Soft ground-truth memberships used by the generator.
    pub true_membership: Vec<Vec<f64>>,
    /// Temperature attribute id.
    pub temp_attr: AttributeId,
    /// Precipitation attribute id.
    pub precip_attr: AttributeId,
    /// The four kNN relations.
    pub relations: WeatherRelations,
    /// Object ids of temperature sensors (index-aligned with the first
    /// `n_temp` label entries).
    pub temp_sensors: Vec<ObjectId>,
    /// Object ids of precipitation sensors.
    pub precip_sensors: Vec<ObjectId>,
    /// Number of clusters.
    pub n_clusters: usize,
}

/// Generates a weather sensor network per Appendix C.
///
/// # Panics
/// Panics if either sensor count is zero or `k_neighbors` is zero.
pub fn generate(config: &WeatherConfig) -> WeatherNetwork {
    assert!(
        config.n_temp > 0 && config.n_precip > 0,
        "need sensors of both types"
    );
    assert!(
        config.k_neighbors > 0,
        "need at least one neighbor per type"
    );
    let means = config.pattern.means();
    let k_clusters = means.len();
    let (std_t, std_p) = config.pattern.stds();
    let mut rng = genclus_stats::seeded_rng(config.seed);

    let n = config.n_temp + config.n_precip;
    // Step 2: uniform positions in the unit disk (area-uniform: r = √u).
    let mut pos = Vec::with_capacity(n);
    for _ in 0..n {
        let r = rng.gen::<f64>().sqrt();
        let phi = rng.gen::<f64>() * std::f64::consts::TAU;
        pos.push((r * phi.cos(), r * phi.sin()));
    }

    // Steps 3–4: ring-based soft memberships. "Partitioned equally into K
    // rings" = equal-*area* rings (so the K weather patterns cover the same
    // number of sensors): ring k spans radii [√(k/K), √((k+1)/K)), and its
    // center radius is the band midpoint.
    let ring_center = |k: usize| {
        let lo = (k as f64 / k_clusters as f64).sqrt();
        let hi = ((k as f64 + 1.0) / k_clusters as f64).sqrt();
        0.5 * (lo + hi)
    };
    let mut membership = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for (i, &(x, y)) in pos.iter().enumerate() {
        let radius = (x * x + y * y).sqrt();
        let is_temp = i < config.n_temp;
        // Temperature sensors blend 2 rings, precipitation sensors 3.
        let blend = if is_temp { 2 } else { 3 };
        let mut by_dist: Vec<(usize, f64)> = (0..k_clusters)
            .map(|k| (k, (radius - ring_center(k)).abs()))
            .collect();
        by_dist.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let mut theta = vec![0.0; k_clusters];
        for &(k, d) in by_dist.iter().take(blend) {
            theta[k] = 1.0 / (d + 1e-3);
        }
        let total: f64 = theta.iter().sum();
        theta.iter_mut().for_each(|t| *t /= total);
        labels.push(genclus_stats::simplex::argmax(&theta));
        membership.push(theta);
    }

    // Schema and objects.
    let mut schema = Schema::new();
    let t_type = schema.add_object_type("temp_sensor");
    let p_type = schema.add_object_type("precip_sensor");
    let relations = WeatherRelations {
        tt: schema.add_relation("tt", t_type, t_type),
        tp: schema.add_relation("tp", t_type, p_type),
        pt: schema.add_relation("pt", p_type, t_type),
        pp: schema.add_relation("pp", p_type, p_type),
    };
    let temp_attr = schema.add_numerical_attribute("temperature");
    let precip_attr = schema.add_numerical_attribute("precipitation");

    let mut builder = HinBuilder::new(schema);
    let temp_sensors: Vec<ObjectId> = (0..config.n_temp)
        .map(|i| builder.add_object(t_type, format!("T{i}")))
        .collect();
    let precip_sensors: Vec<ObjectId> = (0..config.n_precip)
        .map(|i| builder.add_object(p_type, format!("P{i}")))
        .collect();
    let object_of = |i: usize| {
        if i < config.n_temp {
            temp_sensors[i]
        } else {
            precip_sensors[i - config.n_temp]
        }
    };

    // Step 2 (links): k nearest neighbors of each type, binary weight.
    let temp_range = 0..config.n_temp;
    let precip_range = config.n_temp..n;
    for i in 0..n {
        let is_temp = i < config.n_temp;
        for (target_temp, rel) in [
            (true, if is_temp { relations.tt } else { relations.pt }),
            (false, if is_temp { relations.tp } else { relations.pp }),
        ] {
            let range = if target_temp {
                temp_range.clone()
            } else {
                precip_range.clone()
            };
            let mut cands: Vec<(usize, f64)> = range
                .filter(|&j| j != i)
                .map(|j| {
                    let dx = pos[i].0 - pos[j].0;
                    let dy = pos[i].1 - pos[j].1;
                    (j, dx * dx + dy * dy)
                })
                .collect();
            let k = config.k_neighbors.min(cands.len());
            cands
                .select_nth_unstable_by(k.saturating_sub(1), |a, b| a.1.partial_cmp(&b.1).unwrap());
            for &(j, _) in cands.iter().take(k) {
                builder
                    .add_link(object_of(i), object_of(j), rel, 1.0)
                    .expect("generator produces schema-valid links");
            }
        }
    }

    // Step 5: mixture-sampled observations; each sensor sees only its own
    // attribute.
    #[allow(clippy::needless_range_loop)] // index selects both membership row and object
    for i in 0..n {
        let is_temp = i < config.n_temp;
        let (attr, std) = if is_temp {
            (temp_attr, std_t)
        } else {
            (precip_attr, std_p)
        };
        for _ in 0..config.n_obs {
            let z = sample_categorical(&mut rng, &membership[i]);
            let mu = if is_temp { means[z].0 } else { means[z].1 };
            builder
                .add_numeric(object_of(i), attr, sample_gaussian(&mut rng, mu, std))
                .expect("generator produces valid observations");
        }
    }

    WeatherNetwork {
        graph: builder
            .build()
            .expect("generator networks are schema-valid"),
        labels,
        true_membership: membership,
        temp_attr,
        precip_attr,
        relations,
        temp_sensors,
        precip_sensors,
        n_clusters: k_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WeatherConfig {
        WeatherConfig {
            n_temp: 60,
            n_precip: 30,
            k_neighbors: 3,
            n_obs: 5,
            pattern: PatternSetting::Setting1,
            seed: 42,
        }
    }

    #[test]
    fn structure_matches_appendix_c() {
        let cfg = small_config();
        let net = generate(&cfg);
        assert_eq!(net.graph.n_objects(), 90);
        assert_eq!(net.temp_sensors.len(), 60);
        assert_eq!(net.precip_sensors.len(), 30);
        // Every sensor has k out-links per type → 2k out-links.
        for v in net.graph.objects() {
            assert_eq!(net.graph.out_links(v).count(), 6, "sensor {v}");
        }
        // Relation totals: #T·k for tt and tp; #P·k for pt and pp.
        assert_eq!(net.graph.relation_link_count(net.relations.tt), 180);
        assert_eq!(net.graph.relation_link_count(net.relations.tp), 180);
        assert_eq!(net.graph.relation_link_count(net.relations.pt), 90);
        assert_eq!(net.graph.relation_link_count(net.relations.pp), 90);
    }

    #[test]
    fn observations_are_type_exclusive() {
        let net = generate(&small_config());
        let temp = net.graph.attribute(net.temp_attr);
        let precip = net.graph.attribute(net.precip_attr);
        for &v in &net.temp_sensors {
            assert_eq!(temp.values(v).len(), 5);
            assert!(
                precip.values(v).is_empty(),
                "T sensors must not report precip"
            );
        }
        for &v in &net.precip_sensors {
            assert_eq!(precip.values(v).len(), 5);
            assert!(temp.values(v).is_empty());
        }
    }

    #[test]
    fn memberships_blend_two_or_three_rings() {
        let net = generate(&small_config());
        for (i, theta) in net.true_membership.iter().enumerate() {
            let nonzero = theta.iter().filter(|&&t| t > 0.0).count();
            let expected = if i < 60 { 2 } else { 3 };
            assert_eq!(nonzero, expected, "sensor {i}: {theta:?}");
            assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn labels_match_argmax_membership() {
        let net = generate(&small_config());
        for (i, theta) in net.true_membership.iter().enumerate() {
            assert_eq!(net.labels[i], genclus_stats::simplex::argmax(theta));
        }
        // All four clusters should be inhabited at this size.
        let mut seen = [false; 4];
        for &l in &net.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "labels {:?}", net.labels);
    }

    #[test]
    fn observations_track_their_ring_means() {
        // In Setting 1, a ring-k-labeled sensor's mean observation should be
        // near k+1 (means are (1,1)…(4,4)), within mixture blur.
        let mut cfg = small_config();
        cfg.n_obs = 20;
        let net = generate(&cfg);
        let temp = net.graph.attribute(net.temp_attr);
        for (idx, &v) in net.temp_sensors.iter().enumerate() {
            let vals = temp.values(v);
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let expected: f64 = net.true_membership[idx]
                .iter()
                .enumerate()
                .map(|(k, &w)| w * (k as f64 + 1.0))
                .sum();
            assert!(
                (mean - expected).abs() < 1.0,
                "sensor {idx}: mean {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph.n_links(), b.graph.n_links());
        let mut cfg = small_config();
        cfg.seed = 43;
        let c = generate(&cfg);
        assert_ne!(a.labels, c.labels, "different seed must reshuffle");
    }

    #[test]
    fn setting2_means_are_xor_like() {
        let means = PatternSetting::Setting2.means();
        // Temperature alone cannot separate clusters 0/3 or 1/2.
        assert_eq!(means[0].0, means[3].0);
        assert_eq!(means[1].0, means[2].0);
        // Precipitation alone cannot separate clusters 0/1 or 2/3.
        assert_eq!(means[0].1, means[1].1);
        assert_eq!(means[2].1, means[3].1);
    }

    #[test]
    fn paper_default_sizes() {
        let cfg = WeatherConfig::paper_default(PatternSetting::Setting1);
        assert_eq!(cfg.n_temp, 1000);
        assert_eq!(cfg.n_precip, 250);
        assert_eq!(cfg.k_neighbors, 5);
    }
}
