//! Title vocabulary for the synthetic DBLP four-area corpus.
//!
//! Four area-specific term lists (database systems, data mining,
//! information retrieval, machine learning) plus a background list shared by
//! all areas. The global vocabulary is laid out as
//! `[background | area 0 | area 1 | area 2 | area 3]`, so term indices map
//! back to their source list deterministically.

/// Shared background terms (stop-word-like title filler).
pub const BACKGROUND: &[&str] = &[
    "approach",
    "analysis",
    "framework",
    "system",
    "method",
    "model",
    "based",
    "efficient",
    "novel",
    "study",
    "evaluation",
    "design",
    "application",
    "problem",
    "algorithm",
    "data",
    "large",
    "scale",
    "adaptive",
    "dynamic",
    "robust",
    "fast",
    "effective",
    "general",
    "unified",
    "survey",
    "toward",
    "improving",
    "exploiting",
    "case",
];

/// Database systems terms (area 0).
pub const DB_TERMS: &[&str] = &[
    "query",
    "optimization",
    "transaction",
    "index",
    "storage",
    "relational",
    "schema",
    "join",
    "sql",
    "concurrency",
    "recovery",
    "view",
    "xml",
    "stream",
    "spatial",
    "temporal",
    "integration",
    "warehouse",
    "olap",
    "buffer",
    "disk",
    "partitioning",
    "replication",
    "consistency",
    "materialized",
    "tuning",
    "benchmark",
    "parallel",
    "distributed",
    "locking",
    "logging",
    "btree",
    "selectivity",
    "cardinality",
    "plan",
    "execution",
    "engine",
    "columnar",
    "compression",
    "keyvalue",
];

/// Data mining terms (area 1).
pub const DM_TERMS: &[&str] = &[
    "mining",
    "clustering",
    "pattern",
    "frequent",
    "itemset",
    "association",
    "anomaly",
    "outlier",
    "classification",
    "prediction",
    "graph",
    "community",
    "social",
    "network",
    "stream",
    "sequential",
    "episode",
    "subgraph",
    "dense",
    "summarization",
    "trend",
    "evolution",
    "burst",
    "motif",
    "correlation",
    "discovery",
    "knowledge",
    "rule",
    "support",
    "confidence",
    "scalable",
    "sampling",
    "sketch",
    "heterogeneous",
    "similarity",
    "nearest",
    "neighbor",
    "density",
    "partition",
    "hierarchy",
];

/// Information retrieval terms (area 2).
pub const IR_TERMS: &[&str] = &[
    "retrieval",
    "search",
    "ranking",
    "relevance",
    "document",
    "text",
    "web",
    "page",
    "link",
    "crawl",
    "indexing",
    "term",
    "tfidf",
    "feedback",
    "query",
    "expansion",
    "snippet",
    "click",
    "log",
    "user",
    "session",
    "personalization",
    "recommendation",
    "collaborative",
    "filtering",
    "language",
    "translation",
    "summarize",
    "question",
    "answering",
    "entity",
    "extraction",
    "topic",
    "latent",
    "semantic",
    "precision",
    "recall",
    "evaluation",
    "corpus",
    "crowdsourcing",
];

/// Machine learning terms (area 3).
pub const ML_TERMS: &[&str] = &[
    "learning",
    "supervised",
    "unsupervised",
    "reinforcement",
    "kernel",
    "bayesian",
    "inference",
    "probabilistic",
    "gaussian",
    "process",
    "neural",
    "deep",
    "gradient",
    "descent",
    "convex",
    "regularization",
    "sparse",
    "feature",
    "selection",
    "dimensionality",
    "reduction",
    "manifold",
    "embedding",
    "boosting",
    "ensemble",
    "margin",
    "svm",
    "regression",
    "variational",
    "markov",
    "hidden",
    "sequence",
    "structured",
    "transfer",
    "multitask",
    "active",
    "semisupervised",
    "generative",
    "discriminative",
    "optimization",
];

/// Term lists per area, indexed by area id.
pub const AREA_TERMS: [&[&str]; 4] = [DB_TERMS, DM_TERMS, IR_TERMS, ML_TERMS];

/// Total vocabulary size.
pub fn vocab_size() -> usize {
    BACKGROUND.len() + AREA_TERMS.iter().map(|t| t.len()).sum::<usize>()
}

/// First global index of area `a`'s term block.
pub fn area_offset(a: usize) -> usize {
    BACKGROUND.len() + AREA_TERMS[..a].iter().map(|t| t.len()).sum::<usize>()
}

/// The global vocabulary, background first then each area block.
pub fn full_vocab() -> Vec<&'static str> {
    let mut v = Vec::with_capacity(vocab_size());
    v.extend_from_slice(BACKGROUND);
    for terms in AREA_TERMS {
        v.extend_from_slice(terms);
    }
    v
}

/// The term string for a global term index.
pub fn term_string(term: u32) -> &'static str {
    full_vocab()[term as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_consistent() {
        assert_eq!(area_offset(0), BACKGROUND.len());
        assert_eq!(area_offset(1), BACKGROUND.len() + DB_TERMS.len());
        assert_eq!(
            area_offset(3) + ML_TERMS.len(),
            vocab_size(),
            "last block must end at vocab_size"
        );
        assert_eq!(full_vocab().len(), vocab_size());
    }

    #[test]
    fn term_lookup_round_trips() {
        assert_eq!(term_string(0), BACKGROUND[0]);
        assert_eq!(term_string(area_offset(1) as u32), DM_TERMS[0]);
        assert_eq!(term_string(area_offset(3) as u32), ML_TERMS[0]);
    }

    #[test]
    fn area_lists_are_reasonably_sized() {
        for terms in AREA_TERMS {
            assert!(terms.len() >= 30, "each area needs a rich vocabulary");
        }
    }
}
