//! Scaled network family for the size sweep: 10k → 1M objects.
//!
//! The paper-shaped generators ([`crate::weather`], [`crate::dblp`]) model
//! the evaluation faithfully — soft ring memberships, Dirichlet topic
//! mixtures — which makes them quadratic-ish in places and impractical
//! beyond a few thousand objects. This module trades fidelity for scale: a
//! registry of named presets whose builders are strictly `O(n · fanout)`,
//! fully deterministic (a splitmix64 counter stream, no `rand`), and still
//! EM-runnable (every object typed and named, both link directions present,
//! attributes observed with planted cluster structure so the kernels do
//! real work).
//!
//! Two schema shapes mirror the paper's data sets:
//!
//! * **weather** — `temp_sensor`/`precip_sensor` types, reciprocal
//!   `tp`/`pt` relations, one numerical observation per sensor drawn from
//!   its planted cluster's mean;
//! * **dblp** — `author`/`venue` types, reciprocal `writes_in`/`hosts`
//!   relations, categorical title terms on authors from a planted
//!   area-specific vocabulary band.
//!
//! The registry maps preset names (`weather-10k`, …, `weather-1m`,
//! `dblp-100k`) to specs, the same lookup-by-name idiom the multi-dataset
//! training harnesses use; `genclus-bench`'s size sweep iterates it.

use genclus_hin::prelude::*;

/// Planted clusters in every scaled network.
pub const SCALED_K: usize = 4;

/// Schema shape of a scaled preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaledShape {
    /// Sensor network: two object types, numerical attributes.
    Weather,
    /// Bibliographic network: authors + venues, categorical text.
    Dblp,
}

/// One size-sweep preset: a shape plus its scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScaledSpec {
    /// Registry name, e.g. `weather-100k`.
    pub name: &'static str,
    /// Schema shape.
    pub shape: ScaledShape,
    /// Total objects across both types.
    pub n_objects: usize,
    /// Out-links per source object (each paired with its reciprocal).
    pub fanout: usize,
    /// Stream seed; every derived draw mixes it in.
    pub seed: u64,
}

/// The named presets the size sweep iterates, smallest first.
pub const SCALED_REGISTRY: &[ScaledSpec] = &[
    ScaledSpec {
        name: "weather-10k",
        shape: ScaledShape::Weather,
        n_objects: 10_000,
        fanout: 3,
        seed: 11,
    },
    ScaledSpec {
        name: "weather-100k",
        shape: ScaledShape::Weather,
        n_objects: 100_000,
        fanout: 3,
        seed: 12,
    },
    ScaledSpec {
        name: "dblp-100k",
        shape: ScaledShape::Dblp,
        n_objects: 100_000,
        fanout: 3,
        seed: 13,
    },
    ScaledSpec {
        name: "weather-1m",
        shape: ScaledShape::Weather,
        n_objects: 1_000_000,
        fanout: 2,
        seed: 14,
    },
];

/// Looks a preset up by its registry name.
pub fn scaled_by_name(name: &str) -> Option<&'static ScaledSpec> {
    SCALED_REGISTRY.iter().find(|s| s.name == name)
}

/// A built scaled network plus the attribute ids the EM kernels cluster on.
pub struct ScaledNetwork {
    /// The network.
    pub graph: HinGraph,
    /// Attributes to cluster on (all attributes of the shape).
    pub attrs: Vec<AttributeId>,
}

/// splitmix64: one multiply-xor-shift chain per draw; statistically fine
/// for planting structure and, unlike an RNG object, trivially seekable —
/// draw `i` never depends on draw `i - 1`, so generation order is free.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform-ish f64 in `[0, 1)` from a mixed draw.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl ScaledSpec {
    /// A spec with a different object count (for custom sweep points);
    /// keeps the preset's shape, fanout, and seed.
    pub fn with_objects(mut self, n: usize) -> Self {
        self.n_objects = n;
        self
    }

    /// Builds the network: `O(n · fanout)` work, deterministic in `seed`.
    pub fn build(&self) -> ScaledNetwork {
        match self.shape {
            ScaledShape::Weather => self.build_weather(),
            ScaledShape::Dblp => self.build_dblp(),
        }
    }

    fn build_weather(&self) -> ScaledNetwork {
        let mut s = Schema::new();
        let temp = s.add_object_type("temp_sensor");
        let precip = s.add_object_type("precip_sensor");
        let tp = s.add_relation("tp", temp, precip);
        let pt = s.add_relation("pt", precip, temp);
        let a_temp = s.add_numerical_attribute("temperature");
        let a_precip = s.add_numerical_attribute("precipitation");

        let n_temp = self.n_objects * 2 / 3;
        let n_precip = self.n_objects - n_temp;
        let mut b = HinBuilder::new(s);
        // Objects first (ids are dense: temp sensors then precip sensors),
        // each planted in cluster `mix(i) % K` with a cluster-offset mean.
        let mut temp_ids = Vec::with_capacity(n_temp);
        for i in 0..n_temp {
            temp_ids.push(b.add_object(temp, format!("t-{i}")));
        }
        let mut precip_ids = Vec::with_capacity(n_precip);
        for i in 0..n_precip {
            precip_ids.push(b.add_object(precip, format!("p-{i}")));
        }
        for (i, &v) in temp_ids.iter().enumerate() {
            let c = (mix(self.seed, 1, i as u64) % SCALED_K as u64) as f64;
            let x = c * 5.0 + unit(mix(self.seed, 2, i as u64));
            b.add_numeric(v, a_temp, x).expect("valid observation");
        }
        for (i, &v) in precip_ids.iter().enumerate() {
            let c = (mix(self.seed, 3, i as u64) % SCALED_K as u64) as f64;
            let x = c * 5.0 + unit(mix(self.seed, 4, i as u64));
            b.add_numeric(v, a_precip, x).expect("valid observation");
        }
        // `fanout` reciprocal pairs per temp sensor, targets drawn from the
        // seekable stream — no rejection loop, so exactly n_temp · fanout
        // pairs (parallel links are legal and counted).
        for (i, &v) in temp_ids.iter().enumerate() {
            for j in 0..self.fanout {
                let t = mix(self.seed, 5 + j as u64, i as u64) as usize % n_precip;
                b.add_link_pair(v, precip_ids[t], tp, pt, 1.0)
                    .expect("valid link");
            }
        }
        ScaledNetwork {
            graph: b.build().expect("scaled weather network builds"),
            attrs: vec![a_temp, a_precip],
        }
    }

    fn build_dblp(&self) -> ScaledNetwork {
        const VOCAB: usize = 200;
        let mut s = Schema::new();
        let author = s.add_object_type("author");
        let venue = s.add_object_type("venue");
        let writes_in = s.add_relation("writes_in", author, venue);
        let hosts = s.add_relation("hosts", venue, author);
        let text = s.add_categorical_attribute("text", VOCAB);

        let n_author = self.n_objects * 3 / 4;
        let n_venue = self.n_objects - n_author;
        let mut b = HinBuilder::new(s);
        let mut author_ids = Vec::with_capacity(n_author);
        for i in 0..n_author {
            author_ids.push(b.add_object(author, format!("a-{i}")));
        }
        let mut venue_ids = Vec::with_capacity(n_venue);
        for i in 0..n_venue {
            venue_ids.push(b.add_object(venue, format!("v-{i}")));
        }
        // Two title terms per author from the planted area's vocabulary
        // band (`VOCAB / K` terms per area).
        let band = VOCAB / SCALED_K;
        for (i, &v) in author_ids.iter().enumerate() {
            let c = mix(self.seed, 1, i as u64) as usize % SCALED_K;
            let t0 = (c * band + mix(self.seed, 2, i as u64) as usize % band) as u32;
            let t1 = (c * band + mix(self.seed, 3, i as u64) as usize % band) as u32;
            b.add_terms(v, text, &[t0, t1]).expect("terms in vocab");
        }
        for (i, &v) in author_ids.iter().enumerate() {
            for j in 0..self.fanout {
                let t = mix(self.seed, 4 + j as u64, i as u64) as usize % n_venue;
                b.add_link_pair(v, venue_ids[t], writes_in, hosts, 1.0)
                    .expect("valid link");
            }
        }
        ScaledNetwork {
            graph: b.build().expect("scaled dblp network builds"),
            attrs: vec![text],
        }
    }

    /// Directed links the built network will carry (each pair counts twice).
    pub fn expected_links(&self) -> usize {
        let sources = match self.shape {
            ScaledShape::Weather => self.n_objects * 2 / 3,
            ScaledShape::Dblp => self.n_objects * 3 / 4,
        };
        sources * self.fanout * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup_and_ordering() {
        assert_eq!(scaled_by_name("weather-100k").unwrap().n_objects, 100_000);
        assert!(scaled_by_name("weather-10t").is_none());
        // Smallest-first ordering is what lets the sweep's peak-RSS
        // fallback (monotone VmHWM) still attribute peaks per cell.
        let sizes: Vec<usize> = SCALED_REGISTRY.iter().map(|s| s.n_objects).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted, "registry must be ordered smallest-first");
    }

    #[test]
    fn weather_preset_builds_with_exact_counts() {
        let spec = scaled_by_name("weather-10k").unwrap().with_objects(3_000);
        let net = spec.build();
        assert_eq!(net.graph.n_objects(), 3_000);
        assert_eq!(
            net.graph.n_links(),
            spec.with_objects(3_000).expected_links()
        );
        assert_eq!(net.attrs.len(), 2);
        // Every temp sensor observes temperature; name lookup resolves.
        let v = net.graph.object_by_name("t-0").unwrap();
        assert_eq!(net.graph.attribute(net.attrs[0]).values(v).len(), 1);
    }

    #[test]
    fn dblp_preset_builds_with_text_in_vocab() {
        let spec = scaled_by_name("dblp-100k").unwrap().with_objects(2_000);
        let net = spec.build();
        assert_eq!(net.graph.n_objects(), 2_000);
        assert_eq!(net.graph.n_links(), spec.expected_links());
        let v = net.graph.object_by_name("a-7").unwrap();
        let terms = net.graph.attribute(net.attrs[0]).term_counts(v);
        assert!(!terms.is_empty());
        assert!(terms.iter().all(|&(t, c)| (t as usize) < 200 && c > 0.0));
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = scaled_by_name("weather-10k").unwrap().with_objects(1_200);
        let (a, b) = (spec.build(), spec.build());
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.graph.to_bytes(&mut ba);
        b.graph.to_bytes(&mut bb);
        assert_eq!(ba, bb, "same spec must build byte-identical networks");
    }
}
