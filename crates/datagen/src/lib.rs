//! Synthetic network generators for the GenClus evaluation.
//!
//! Two generators reproduce the paper's data sets:
//!
//! * [`weather`] — the synthetic weather sensor network of Appendix C:
//!   temperature and precipitation sensors placed in a unit disk, `K`
//!   ring-shaped weather patterns, reciprocal-distance soft memberships,
//!   kNN links per sensor type, and Gaussian mixture observations. Used by
//!   Figs. 7–8 and 11 and Tables 4–5.
//!
//! * [`dblp`] — a seeded substitute for the DBLP four-area data set (which
//!   is not redistributable): four research areas, twenty named venues,
//!   authors with Dirichlet area mixtures, papers with venue/coauthor links
//!   and area-specific title text. Builders produce the paper's two network
//!   variants — the **AC** network (authors + conferences, weighted links,
//!   text on both types) and the **ACP** network (authors + conferences +
//!   papers, binary links, text on papers only). Used by Figs. 5–6 and 9–10
//!   and Tables 1–3.
//!
//! A third generator serves scale rather than fidelity:
//!
//! * [`scaled`] — a registry of named presets (`weather-10k` … `weather-1m`,
//!   `dblp-100k`) with strictly `O(n · fanout)` builders, used by the
//!   `genclus-bench` size sweep to measure EM cost and peak RSS from 10k to
//!   a million objects.
//!
//! All generation is deterministic given the config seed.

pub mod dblp;
pub mod scaled;
pub mod vocab;
pub mod weather;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::dblp::{AcNetwork, AcpNetwork, DblpConfig, DblpCorpus, FOUR_AREAS};
    pub use crate::scaled::{
        scaled_by_name, ScaledNetwork, ScaledShape, ScaledSpec, SCALED_K, SCALED_REGISTRY,
    };
    pub use crate::weather::{PatternSetting, WeatherConfig, WeatherNetwork, WeatherRelations};
}

pub use prelude::*;
