//! Synthetic DBLP four-area bibliographic corpus and its two network views.
//!
//! The paper evaluates on the DBLP "four-area" data set (papers/authors/
//! venues from database systems, data mining, information retrieval and
//! machine learning, with ground-truth area labels for all 20 conferences
//! and subsets of papers and authors). That extraction is not
//! redistributable, so this module generates a corpus with the same
//! *structural* properties (see DESIGN.md §4):
//!
//! * four areas with distinctive title vocabularies plus shared background
//!   terms;
//! * venues with a **broad** area spectrum (a conference publishes outside
//!   its core area; CIKM is deliberately mixed) and authors with a **narrow**
//!   one — the asymmetry behind the paper's Fig. 9 observation that
//!   author links are more reliable than venue links;
//! * papers written by 1–3 authors, published in one venue, with title text
//!   sampled from their area's vocabulary;
//! * ground-truth labels for all venues, for authors with a dominant area,
//!   and for a configurable fraction of papers.
//!
//! Two network views mirror §5.1 exactly:
//!
//! * [`DblpCorpus::build_ac`] — the **AC network**: authors + conferences;
//!   weighted `publish_in(A,C)`, `published_by(C,A)`, `coauthor(A,A)` links;
//!   text attributes on *both* types (complete attributes);
//! * [`DblpCorpus::build_acp`] — the **ACP network**: authors + conferences
//!   plus papers; binary `write(A,P)`, `written_by(P,A)`, `publish(C,P)` and
//!   `published_by(P,C)` links; text on papers *only* (incomplete
//!   attributes).

use crate::vocab;
use genclus_hin::prelude::*;
use genclus_stats::rng::sample_categorical;
use rand::Rng;
use std::collections::BTreeMap;

/// The four research areas, in label order.
pub const FOUR_AREAS: [&str; 4] = ["DB", "DM", "IR", "ML"];

/// Venue names per area (5 × 4 = 20 conferences, as in the four-area set).
const VENUE_NAMES: [[&str; 5]; 4] = [
    ["SIGMOD", "VLDB", "ICDE", "PODS", "EDBT"],
    ["KDD", "ICDM", "SDM", "PKDD", "PAKDD"],
    ["SIGIR", "CIKM", "ECIR", "WWW", "WSDM"],
    ["ICML", "NIPS", "UAI", "AAAI", "IJCAI"],
];

/// Named case-study authors (paper Table 1) with hand-set area mixtures:
/// two focused database researchers and one deliberately cross-area author.
const CASE_STUDY_AUTHORS: [(&str, [f64; 4]); 3] = [
    ("Jennifer Widom", [0.85, 0.05, 0.05, 0.05]),
    ("Jim Gray", [0.88, 0.04, 0.04, 0.04]),
    ("Christos Faloutsos", [0.45, 0.32, 0.13, 0.10]),
];

/// Generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DblpConfig {
    /// Number of authors.
    pub n_authors: usize,
    /// Number of papers.
    pub n_papers: usize,
    /// Maximum extra coauthors per paper (lead author excluded).
    pub max_coauthors: usize,
    /// Fraction of authors with a diffuse (multi-area) mixture.
    pub multi_area_fraction: f64,
    /// Probability that a title token is a background term.
    pub background_prob: f64,
    /// Probability that a non-background title token leaks from *another*
    /// area's vocabulary (real titles share terms across areas — "mining",
    /// "query" and "learning" all cross fields — which is what makes pure
    /// text clustering hard on DBLP).
    pub cross_area_prob: f64,
    /// Title length range (inclusive).
    pub title_len: (usize, usize),
    /// Fraction of papers that carry a ground-truth label.
    pub paper_label_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    /// Experiment-scale corpus: 1 500 authors, 3 000 papers (≈ 4 papers per
    /// author with coauthorship, comparable to the labeled-author density of
    /// the real four-area extraction).
    fn default() -> Self {
        Self {
            n_authors: 1500,
            n_papers: 3000,
            max_coauthors: 2,
            multi_area_fraction: 0.2,
            background_prob: 0.35,
            cross_area_prob: 0.25,
            title_len: (5, 12),
            paper_label_fraction: 0.3,
            seed: 0,
        }
    }
}

impl DblpConfig {
    /// A small corpus for unit tests and examples.
    pub fn small() -> Self {
        Self {
            n_authors: 200,
            n_papers: 400,
            ..Self::default()
        }
    }
}

/// One venue with its area mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueInfo {
    /// Conference name.
    pub name: &'static str,
    /// Core area.
    pub area: usize,
    /// Probability of publishing a paper from each area.
    pub mixture: [f64; 4],
}

/// One generated paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Paper {
    /// Latent area (always known to the generator).
    pub area: usize,
    /// Venue index.
    pub venue: usize,
    /// Author indices (lead first).
    pub authors: Vec<usize>,
    /// Title as global vocabulary term indices.
    pub title: Vec<u32>,
    /// Whether the paper is in the labeled evaluation subset.
    pub labeled: bool,
}

/// The full generated corpus, from which network views are built.
#[derive(Debug, Clone)]
pub struct DblpCorpus {
    /// Generation parameters.
    pub config: DblpConfig,
    /// The 20 venues.
    pub venues: Vec<VenueInfo>,
    /// Author display names.
    pub author_names: Vec<String>,
    /// Author area mixtures.
    pub author_mixture: Vec<[f64; 4]>,
    /// Ground-truth author labels (dominant area when concentrated enough).
    pub author_label: Vec<Option<usize>>,
    /// Generated papers.
    pub papers: Vec<Paper>,
}

/// Builds venue infos: concentrated on their core area, with CIKM given a
/// deliberately mixed DB/IR profile (as its Table 1 membership shows).
fn make_venues() -> Vec<VenueInfo> {
    let mut venues = Vec::with_capacity(20);
    for (area, names) in VENUE_NAMES.iter().enumerate() {
        for &name in names {
            let mixture = if name == "CIKM" {
                [0.30, 0.10, 0.55, 0.05]
            } else {
                // Real four-area venues are quite pure (SIGMOD's Table 1 row
                // is ≈ 0.86 DB) but still publish outside their core area.
                let mut m = [0.05; 4];
                m[area] = 0.85;
                m
            };
            venues.push(VenueInfo {
                name,
                area,
                mixture,
            });
        }
    }
    venues
}

/// Generates a corpus.
///
/// # Panics
/// Panics if `n_authors` or `n_papers` is zero.
pub fn generate(config: &DblpConfig) -> DblpCorpus {
    assert!(config.n_authors > 0 && config.n_papers > 0);
    assert!(
        config.n_authors >= CASE_STUDY_AUTHORS.len(),
        "need room for the case-study authors"
    );
    let mut rng = genclus_stats::seeded_rng(config.seed);
    let venues = make_venues();

    // Authors: named case-study authors first, then synthetic ones with
    // round-robin dominant areas.
    let mut author_names = Vec::with_capacity(config.n_authors);
    let mut author_mixture = Vec::with_capacity(config.n_authors);
    for (name, mixture) in CASE_STUDY_AUTHORS {
        author_names.push(name.to_string());
        author_mixture.push(mixture);
    }
    for i in CASE_STUDY_AUTHORS.len()..config.n_authors {
        author_names.push(format!("author-{i}"));
        let area = i % 4;
        let mixture = if rng.gen::<f64>() < config.multi_area_fraction {
            // Diffuse researcher: random Dirichlet mixture.
            let draw = genclus_stats::sample_dirichlet(&mut rng, &[0.7; 4]);
            [draw[0], draw[1], draw[2], draw[3]]
        } else {
            let mut m = [0.05; 4];
            m[area] = 0.85;
            m
        };
        author_mixture.push(mixture);
    }
    let author_label: Vec<Option<usize>> = author_mixture
        .iter()
        .map(|m| {
            let (argmax, max) = m
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            (*max >= 0.6).then_some(argmax)
        })
        .collect();

    // Per-area author pools for coauthor sampling (dominant area).
    let mut by_area: [Vec<usize>; 4] = Default::default();
    for (i, m) in author_mixture.iter().enumerate() {
        let dom = m
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        by_area[dom].push(i);
    }

    // Venue sampling weights per area: P(venue | area z) ∝ mixture[z].
    let venue_weights: Vec<Vec<f64>> = (0..4)
        .map(|z| venues.iter().map(|v| v.mixture[z]).collect())
        .collect();

    // Zipf-like weights over each area's term list.
    let term_weights: Vec<Vec<f64>> = (0..4)
        .map(|a| {
            (0..vocab::AREA_TERMS[a].len())
                .map(|rank| 1.0 / (1.0 + rank as f64))
                .collect()
        })
        .collect();

    let mut papers = Vec::with_capacity(config.n_papers);
    for _ in 0..config.n_papers {
        // Case-study authors are prolific (the real ones have long
        // publication records), so they lead a disproportionate share of
        // papers; everyone else is uniform.
        let lead = if rng.gen::<f64>() < 0.02 {
            rng.gen_range(0..CASE_STUDY_AUTHORS.len())
        } else {
            rng.gen_range(0..config.n_authors)
        };
        let z = sample_categorical(&mut rng, &author_mixture[lead]);

        let mut authors = vec![lead];
        let n_extra = rng.gen_range(0..=config.max_coauthors);
        for _ in 0..n_extra {
            // "The spectrum of co-authors may often be quite broad" (§5.2.3)
            // — only half the coauthors come from the paper's own area.
            let candidate = if rng.gen::<f64>() < 0.5 && !by_area[z].is_empty() {
                by_area[z][rng.gen_range(0..by_area[z].len())]
            } else {
                rng.gen_range(0..config.n_authors)
            };
            if !authors.contains(&candidate) {
                authors.push(candidate);
            }
        }

        let venue = sample_categorical(&mut rng, &venue_weights[z]);

        let len = rng.gen_range(config.title_len.0..=config.title_len.1);
        let mut title = Vec::with_capacity(len);
        for _ in 0..len {
            let term = if rng.gen::<f64>() < config.background_prob {
                rng.gen_range(0..vocab::BACKGROUND.len()) as u32
            } else {
                // Mostly the paper's own area, with cross-area leakage.
                let src = if rng.gen::<f64>() < config.cross_area_prob {
                    let mut other = rng.gen_range(0..4);
                    if other == z {
                        other = (other + 1) % 4;
                    }
                    other
                } else {
                    z
                };
                let local = sample_categorical(&mut rng, &term_weights[src]);
                (vocab::area_offset(src) + local) as u32
            };
            title.push(term);
        }

        papers.push(Paper {
            area: z,
            venue,
            authors,
            title,
            labeled: rng.gen::<f64>() < config.paper_label_fraction,
        });
    }

    DblpCorpus {
        config: config.clone(),
        venues,
        author_names,
        author_mixture,
        author_label,
        papers,
    }
}

/// The AC network view (§5.1 (a)).
#[derive(Debug, Clone)]
pub struct AcNetwork {
    /// Authors + conferences with weighted links and text on both types.
    pub graph: HinGraph,
    /// The shared text attribute.
    pub text_attr: AttributeId,
    /// `publish_in(A, C)`, weight = papers the author published there.
    pub rel_ac: RelationId,
    /// `published_by(C, A)`, the inverse with the same weights.
    pub rel_ca: RelationId,
    /// `coauthor(A, A)`, weight = papers coauthored.
    pub rel_aa: RelationId,
    /// Author object ids (corpus order).
    pub authors: Vec<ObjectId>,
    /// Conference object ids (corpus order).
    pub conferences: Vec<ObjectId>,
    /// Ground-truth label per object (`None` = unlabeled).
    pub labels: Vec<Option<usize>>,
}

/// The ACP network view (§5.1 (b)).
#[derive(Debug, Clone)]
pub struct AcpNetwork {
    /// Authors + conferences + papers; binary links; text on papers only.
    pub graph: HinGraph,
    /// The text attribute (observed only on papers).
    pub text_attr: AttributeId,
    /// `write(A, P)`.
    pub rel_ap: RelationId,
    /// `written_by(P, A)`.
    pub rel_pa: RelationId,
    /// `publish(C, P)`.
    pub rel_cp: RelationId,
    /// `published_by(P, C)`.
    pub rel_pc: RelationId,
    /// Author object ids.
    pub authors: Vec<ObjectId>,
    /// Conference object ids.
    pub conferences: Vec<ObjectId>,
    /// Paper object ids.
    pub papers: Vec<ObjectId>,
    /// Ground-truth label per object (`None` = unlabeled).
    pub labels: Vec<Option<usize>>,
}

impl DblpCorpus {
    /// Builds the AC network: aggregated weighted links, text on authors and
    /// conferences (every object observes the attribute — the "easiest
    /// case" per §5.2.1).
    pub fn build_ac(&self) -> AcNetwork {
        let mut schema = Schema::new();
        let t_author = schema.add_object_type("author");
        let t_conf = schema.add_object_type("conference");
        let rel_ac = schema.add_relation("publish_in", t_author, t_conf);
        let rel_ca = schema.add_relation("published_by", t_conf, t_author);
        let rel_aa = schema.add_relation("coauthor", t_author, t_author);
        let text_attr = schema.add_categorical_attribute("title_terms", vocab::vocab_size());

        let mut b = HinBuilder::new(schema);
        let authors: Vec<ObjectId> = self
            .author_names
            .iter()
            .map(|n| b.add_object(t_author, n.clone()))
            .collect();
        let conferences: Vec<ObjectId> = self
            .venues
            .iter()
            .map(|v| b.add_object(t_conf, v.name))
            .collect();

        // Aggregate link weights and term bags. BTreeMaps keep insertion
        // deterministic, which keeps CSR order — and hence float summation
        // order downstream — reproducible.
        let mut ac_w: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        let mut aa_w: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        let mut author_terms: BTreeMap<(usize, u32), f64> = BTreeMap::new();
        let mut conf_terms: BTreeMap<(usize, u32), f64> = BTreeMap::new();
        for p in &self.papers {
            for &a in &p.authors {
                *ac_w.entry((a, p.venue)).or_insert(0.0) += 1.0;
                for &t in &p.title {
                    *author_terms.entry((a, t)).or_insert(0.0) += 1.0;
                }
            }
            for &t in &p.title {
                *conf_terms.entry((p.venue, t)).or_insert(0.0) += 1.0;
            }
            for (i, &a1) in p.authors.iter().enumerate() {
                for &a2 in &p.authors[i + 1..] {
                    *aa_w.entry((a1, a2)).or_insert(0.0) += 1.0;
                    *aa_w.entry((a2, a1)).or_insert(0.0) += 1.0;
                }
            }
        }
        for (&(a, c), &w) in &ac_w {
            b.add_link(authors[a], conferences[c], rel_ac, w).unwrap();
            b.add_link(conferences[c], authors[a], rel_ca, w).unwrap();
        }
        for (&(a1, a2), &w) in &aa_w {
            b.add_link(authors[a1], authors[a2], rel_aa, w).unwrap();
        }
        for (&(a, t), &c) in &author_terms {
            b.add_term_count(authors[a], text_attr, t, c).unwrap();
        }
        for (&(v, t), &c) in &conf_terms {
            b.add_term_count(conferences[v], text_attr, t, c).unwrap();
        }

        let mut labels: Vec<Option<usize>> = self.author_label.clone();
        labels.extend(self.venues.iter().map(|v| Some(v.area)));

        AcNetwork {
            graph: b.build().expect("generator networks are schema-valid"),
            text_attr,
            rel_ac,
            rel_ca,
            rel_aa,
            authors,
            conferences,
            labels,
        }
    }

    /// Builds the ACP network: binary links, text on papers only — authors
    /// and conferences have *no* attribute observations at all.
    pub fn build_acp(&self) -> AcpNetwork {
        let mut schema = Schema::new();
        let t_author = schema.add_object_type("author");
        let t_conf = schema.add_object_type("conference");
        let t_paper = schema.add_object_type("paper");
        let rel_ap = schema.add_relation("write", t_author, t_paper);
        let rel_pa = schema.add_relation("written_by", t_paper, t_author);
        let rel_cp = schema.add_relation("publish", t_conf, t_paper);
        let rel_pc = schema.add_relation("published_by", t_paper, t_conf);
        let text_attr = schema.add_categorical_attribute("title_terms", vocab::vocab_size());

        let mut b = HinBuilder::new(schema);
        let authors: Vec<ObjectId> = self
            .author_names
            .iter()
            .map(|n| b.add_object(t_author, n.clone()))
            .collect();
        let conferences: Vec<ObjectId> = self
            .venues
            .iter()
            .map(|v| b.add_object(t_conf, v.name))
            .collect();
        let papers: Vec<ObjectId> = (0..self.papers.len())
            .map(|i| b.add_object(t_paper, format!("paper-{i}")))
            .collect();

        for (i, p) in self.papers.iter().enumerate() {
            for &a in &p.authors {
                b.add_link(authors[a], papers[i], rel_ap, 1.0).unwrap();
                b.add_link(papers[i], authors[a], rel_pa, 1.0).unwrap();
            }
            b.add_link(conferences[p.venue], papers[i], rel_cp, 1.0)
                .unwrap();
            b.add_link(papers[i], conferences[p.venue], rel_pc, 1.0)
                .unwrap();
            for &t in &p.title {
                b.add_term_count(papers[i], text_attr, t, 1.0).unwrap();
            }
        }

        let mut labels: Vec<Option<usize>> = self.author_label.clone();
        labels.extend(self.venues.iter().map(|v| Some(v.area)));
        labels.extend(self.papers.iter().map(|p| p.labeled.then_some(p.area)));

        AcpNetwork {
            graph: b.build().expect("generator networks are schema-valid"),
            text_attr,
            rel_ap,
            rel_pa,
            rel_cp,
            rel_pc,
            authors,
            conferences,
            papers,
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> DblpCorpus {
        generate(&DblpConfig::small())
    }

    #[test]
    fn corpus_shape_and_determinism() {
        let c1 = corpus();
        let c2 = corpus();
        assert_eq!(c1.papers, c2.papers, "same seed ⇒ same corpus");
        assert_eq!(c1.venues.len(), 20);
        assert_eq!(c1.author_names.len(), 200);
        assert_eq!(c1.papers.len(), 400);
        let mut other_cfg = DblpConfig::small();
        other_cfg.seed = 99;
        let c3 = generate(&other_cfg);
        assert_ne!(c1.papers, c3.papers, "different seed ⇒ different corpus");
    }

    #[test]
    fn case_study_authors_present() {
        let c = corpus();
        assert_eq!(c.author_names[0], "Jennifer Widom");
        assert_eq!(c.author_names[2], "Christos Faloutsos");
        // Faloutsos is cross-area: no label (mixture max 0.45 < 0.6).
        assert_eq!(c.author_label[2], None);
        assert_eq!(c.author_label[0], Some(0));
    }

    #[test]
    fn venues_cover_all_areas_and_cikm_is_mixed() {
        let c = corpus();
        for area in 0..4 {
            assert_eq!(c.venues.iter().filter(|v| v.area == area).count(), 5);
        }
        let cikm = c.venues.iter().find(|v| v.name == "CIKM").unwrap();
        assert!(cikm.mixture[2] < 0.6, "CIKM must not be IR-pure");
        assert!(cikm.mixture[0] >= 0.25, "CIKM carries a DB component");
    }

    #[test]
    fn papers_correlate_with_their_venue_area() {
        let c = corpus();
        // Most papers published in a non-CIKM venue share its core area.
        let mut hits = 0;
        let mut total = 0;
        for p in &c.papers {
            if c.venues[p.venue].name == "CIKM" {
                continue;
            }
            total += 1;
            if p.area == c.venues[p.venue].area {
                hits += 1;
            }
        }
        let frac = hits as f64 / total as f64;
        assert!(frac > 0.55, "venue-area correlation too weak: {frac}");
    }

    #[test]
    fn titles_use_area_vocabulary_with_leakage() {
        let c = corpus();
        let (mut own, mut other, mut background) = (0usize, 0usize, 0usize);
        for p in &c.papers {
            assert!(!p.title.is_empty());
            let area_lo = vocab::area_offset(p.area) as u32;
            let area_hi = area_lo + vocab::AREA_TERMS[p.area].len() as u32;
            for &t in &p.title {
                if (t as usize) < vocab::BACKGROUND.len() {
                    background += 1;
                } else if t >= area_lo && t < area_hi {
                    own += 1;
                } else {
                    other += 1;
                }
            }
        }
        // Own-area terms dominate the non-background tokens, but cross-area
        // leakage is present (the hard part of real DBLP text).
        assert!(own > 2 * other, "own {own} vs other {other}");
        assert!(other > 0, "leakage must occur");
        assert!(background > 0);
    }

    #[test]
    fn ac_network_weights_count_papers() {
        let c = corpus();
        let ac = c.build_ac();
        assert_eq!(ac.graph.n_objects(), 220);
        // Total publish_in weight equals Σ papers × authors-per-paper.
        let expected: f64 = c.papers.iter().map(|p| p.authors.len() as f64).sum();
        assert_eq!(ac.graph.relation_total_weight(ac.rel_ac), expected);
        assert_eq!(ac.graph.relation_total_weight(ac.rel_ca), expected);
        // Every object observes text (complete attributes).
        let table = ac.graph.attribute(ac.text_attr);
        let observed = table.n_observed_objects();
        // Venues with no paper are possible in a tiny corpus, authors too,
        // but the overwhelming majority must carry text.
        assert!(observed > 200, "only {observed} objects carry text");
        // Labels: all conferences labeled.
        for i in 200..220 {
            assert!(ac.labels[i].is_some());
        }
    }

    #[test]
    fn acp_network_is_binary_with_text_on_papers_only() {
        let c = corpus();
        let acp = c.build_acp();
        assert_eq!(acp.graph.n_objects(), 220 + 400);
        // write links are binary and count Σ authors-per-paper.
        let n_ap = acp.graph.relation_link_count(acp.rel_ap);
        let expected: usize = c.papers.iter().map(|p| p.authors.len()).sum();
        assert_eq!(n_ap, expected);
        assert_eq!(acp.graph.relation_total_weight(acp.rel_ap), expected as f64);
        assert_eq!(acp.graph.relation_link_count(acp.rel_pc), 400);
        // Text on papers only.
        let table = acp.graph.attribute(acp.text_attr);
        for &a in &acp.authors {
            assert!(!table.has_observations(a));
        }
        for &p in &acp.papers {
            assert!(table.has_observations(p));
        }
        // Paper labels cover roughly the configured fraction.
        let labeled_papers = acp.labels[220..].iter().filter(|l| l.is_some()).count();
        let frac = labeled_papers as f64 / 400.0;
        assert!((frac - 0.3).abs() < 0.12, "paper label fraction {frac}");
    }

    #[test]
    fn coauthor_links_are_symmetric_in_weight() {
        let c = corpus();
        let ac = c.build_ac();
        // For every coauthor link (a1 → a2), the reverse exists with the
        // same weight.
        for (src, link) in ac.graph.iter_links() {
            if link.relation == ac.rel_aa {
                let reverse = ac
                    .graph
                    .out_links(link.endpoint)
                    .find(|l| l.relation == ac.rel_aa && l.endpoint == src)
                    .expect("reverse coauthor link missing");
                assert_eq!(reverse.weight, link.weight);
            }
        }
    }
}
