//! Property-based tests for the generators: structural invariants must hold
//! for arbitrary configurations and seeds.

use genclus_datagen::dblp::{self, DblpConfig};
use genclus_datagen::vocab;
use genclus_datagen::weather::{self, PatternSetting, WeatherConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Weather networks always have exactly `2k` out-links per sensor, soft
    /// memberships on the simplex, labels matching argmax, and the right
    /// observation counts on the right attribute.
    #[test]
    fn weather_generator_invariants(
        seed in any::<u64>(),
        n_temp in 10usize..60,
        n_precip in 5usize..40,
        k_nn in 1usize..4,
        n_obs in 1usize..6,
        setting in 0u8..2,
    ) {
        let pattern = if setting == 0 {
            PatternSetting::Setting1
        } else {
            PatternSetting::Setting2
        };
        let net = weather::generate(&WeatherConfig {
            n_temp,
            n_precip,
            k_neighbors: k_nn,
            n_obs,
            pattern,
            seed,
        });
        prop_assert_eq!(net.graph.n_objects(), n_temp + n_precip);
        for v in net.graph.objects() {
            prop_assert_eq!(net.graph.out_links(v).count(), 2 * k_nn);
        }
        for (i, theta) in net.true_membership.iter().enumerate() {
            prop_assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert_eq!(net.labels[i], genclus_stats::simplex::argmax(theta));
        }
        let temp = net.graph.attribute(net.temp_attr);
        let precip = net.graph.attribute(net.precip_attr);
        for &v in &net.temp_sensors {
            prop_assert_eq!(temp.values(v).len(), n_obs);
            prop_assert!(precip.values(v).is_empty());
        }
        for &v in &net.precip_sensors {
            prop_assert_eq!(precip.values(v).len(), n_obs);
            prop_assert!(temp.values(v).is_empty());
        }
    }

    /// Every DBLP paper references valid authors/venues, uses in-vocabulary
    /// terms, and both network views stay mutually consistent in size.
    #[test]
    fn dblp_generator_invariants(
        seed in any::<u64>(),
        n_authors in 10usize..80,
        n_papers in 10usize..120,
    ) {
        let corpus = dblp::generate(&DblpConfig {
            n_authors,
            n_papers,
            seed,
            ..DblpConfig::default()
        });
        prop_assert_eq!(corpus.venues.len(), 20);
        for p in &corpus.papers {
            prop_assert!(!p.authors.is_empty());
            prop_assert!(p.authors.iter().all(|&a| a < n_authors));
            prop_assert!(p.venue < 20);
            prop_assert!(p.area < 4);
            prop_assert!(p.title.iter().all(|&t| (t as usize) < vocab::vocab_size()));
            // Authors are unique per paper.
            let mut sorted = p.authors.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), p.authors.len());
        }

        let ac = corpus.build_ac();
        prop_assert_eq!(ac.graph.n_objects(), n_authors + 20);
        prop_assert_eq!(ac.labels.len(), ac.graph.n_objects());
        // publish_in and published_by mirror each other exactly.
        prop_assert_eq!(
            ac.graph.relation_link_count(ac.rel_ac),
            ac.graph.relation_link_count(ac.rel_ca)
        );

        let acp = corpus.build_acp();
        prop_assert_eq!(acp.graph.n_objects(), n_authors + 20 + n_papers);
        prop_assert_eq!(
            acp.graph.relation_link_count(acp.rel_cp),
            n_papers
        );
        prop_assert_eq!(
            acp.graph.relation_link_count(acp.rel_ap),
            corpus.papers.iter().map(|p| p.authors.len()).sum::<usize>()
        );
    }

    /// Generation is a pure function of its config (determinism), and the
    /// seed actually matters.
    #[test]
    fn generators_are_deterministic(seed in any::<u64>()) {
        let cfg = WeatherConfig {
            n_temp: 20,
            n_precip: 10,
            k_neighbors: 2,
            n_obs: 2,
            pattern: PatternSetting::Setting1,
            seed,
        };
        let a = weather::generate(&cfg);
        let b = weather::generate(&cfg);
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(a.graph.n_links(), b.graph.n_links());

        let dcfg = DblpConfig { n_authors: 20, n_papers: 30, seed, ..DblpConfig::default() };
        let c1 = dblp::generate(&dcfg);
        let c2 = dblp::generate(&dcfg);
        prop_assert_eq!(c1.papers, c2.papers);
    }
}
