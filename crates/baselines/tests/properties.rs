//! Property-based tests for the baselines: invariants on arbitrary inputs.

use genclus_baselines::prelude::*;
use genclus_hin::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// A random document network with text on a subset of objects.
fn random_text_network(seed: u64, n: usize, vocab: usize) -> (HinGraph, AttributeId) {
    let mut rng = genclus_stats::seeded_rng(seed);
    let mut s = Schema::new();
    let t = s.add_object_type("doc");
    let r = s.add_relation("cite", t, t);
    let text = s.add_categorical_attribute("text", vocab);
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..n).map(|i| b.add_object(t, format!("d{i}"))).collect();
    for i in 0..n {
        // A ring plus random chords keeps things connected.
        b.add_link(vs[i], vs[(i + 1) % n], r, 1.0).unwrap();
        if rng.gen_bool(0.4) {
            let j = rng.gen_range(0..n);
            if j != i {
                b.add_link(vs[i], vs[j], r, rng.gen_range(0.5..2.0))
                    .unwrap();
            }
        }
    }
    for &v in &vs {
        if rng.gen_bool(0.7) {
            let len = rng.gen_range(1..6);
            for _ in 0..len {
                b.add_term_count(v, text, rng.gen_range(0..vocab as u32), 1.0)
                    .unwrap();
            }
        }
    }
    (b.build().unwrap(), text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// NetPLSA and iTopicModel always produce simplex memberships and
    /// stochastic topic-term rows, whatever the network.
    #[test]
    fn topic_models_preserve_invariants(seed in any::<u64>(), n in 4usize..20, k in 2usize..5) {
        let (g, text) = random_text_network(seed, n, 10);
        for result in [
            fit_netplsa(&g, text, &NetPlsaConfig { k, max_iters: 10, ..NetPlsaConfig::new(k) }),
            fit_itopicmodel(&g, text, &ITopicConfig { k, max_iters: 10, ..ITopicConfig::new(k) }),
        ] {
            for i in 0..n {
                let row = result.theta.row(i);
                prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                prop_assert!(row.iter().all(|&x| x >= 0.0));
            }
            for row in result.beta.chunks(result.vocab_size) {
                prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                prop_assert!(row.iter().all(|&x| x > 0.0));
            }
        }
    }

    /// k-means labels are within range, every non-empty input gets a label,
    /// and inertia never increases when k grows (with shared seeding).
    #[test]
    fn kmeans_invariants(seed in any::<u64>(), n in 6usize..40) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
            .collect();
        let mut prev_inertia = f64::INFINITY;
        for k in [1usize, 2, 3] {
            let cfg = KMeansConfig { k, seed, n_restarts: 3, ..KMeansConfig::new(k) };
            let out = kmeans(&pts, &cfg);
            prop_assert_eq!(out.labels.len(), n);
            prop_assert!(out.labels.iter().all(|&l| l < k));
            prop_assert!(out.inertia >= 0.0);
            prop_assert!(out.inertia <= prev_inertia + 1e-9, "inertia rose with k");
            prev_inertia = out.inertia;
        }
    }

    /// Interpolated features always lie within the attribute's observed
    /// range (a weighted mean cannot extrapolate).
    #[test]
    fn interpolation_stays_in_range(seed in any::<u64>(), n in 3usize..25) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut s = Schema::new();
        let t = s.add_object_type("sensor");
        let r = s.add_relation("nn", t, t);
        let attr = s.add_numerical_attribute("x");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..n).map(|i| b.add_object(t, format!("s{i}"))).collect();
        for i in 0..n {
            b.add_link(vs[i], vs[(i + 1) % n], r, 1.0).unwrap();
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for &v in &vs {
            if rng.gen_bool(0.5) {
                let x = rng.gen_range(-10.0..10.0);
                lo = lo.min(x);
                hi = hi.max(x);
                any = true;
                b.add_numeric(v, attr, x).unwrap();
            }
        }
        prop_assume!(any);
        let g = b.build().unwrap();
        let f = interpolate_features(&g, &[attr]);
        for row in &f {
            prop_assert!(row[0] >= lo - 1e-9 && row[0] <= hi + 1e-9);
        }
    }

    /// The spectral baseline produces one label per object in range, for
    /// arbitrary (connected) networks.
    #[test]
    fn spectral_labels_are_valid(seed in any::<u64>()) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut s = Schema::new();
        let t = s.add_object_type("sensor");
        let r = s.add_relation("nn", t, t);
        let attr = s.add_numerical_attribute("x");
        let mut b = HinBuilder::new(s);
        let n = 16;
        let vs: Vec<_> = (0..n).map(|i| b.add_object(t, format!("s{i}"))).collect();
        for i in 0..n {
            b.add_link(vs[i], vs[(i + 1) % n], r, 1.0).unwrap();
        }
        for &v in &vs {
            if rng.gen_bool(0.6) {
                b.add_numeric(v, attr, rng.gen_range(-3.0..3.0)).unwrap();
            }
        }
        let g = b.build().unwrap();
        let mut cfg = SpectralConfig::new(3);
        cfg.power_iters = 30;
        cfg.seed = seed;
        let out = spectral_combine(&g, &[attr], &cfg);
        prop_assert_eq!(out.labels.len(), n);
        prop_assert!(out.labels.iter().all(|&l| l < 3));
        prop_assert_eq!(out.eigenvalues.len(), 3);
    }
}
