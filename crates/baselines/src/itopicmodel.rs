//! iTopicModel (Sun, Han, Gao, Yu — ICDM 2009): information
//! network-integrated topic modeling.
//!
//! iTopicModel places a Markov-random-field prior over the document network:
//! a document's topic mixture is estimated from its own term
//! responsibilities *plus* neighbor-membership mass, i.e. the membership
//! update becomes
//!
//! ```text
//! θ_{d,k} ∝ Σ_l c_{d,l} p(z = k | d, l) + λ Σ_{u ∈ N(d)} w(d,u) θ_{u,k}
//! ```
//!
//! — structurally the same fixed point as GenClus's Eq. 10, but with a
//! *single* global coupling λ instead of learned per-relation strengths
//! (this is exactly the ablation the GenClus comparison makes). Unlike
//! NetPLSA's convex smoothing, neighbor mass here competes with text counts
//! on the same scale, so attribute-less objects are driven entirely by
//! their neighborhoods.

use crate::plsa::{init_beta, plsa_sweep, PlsaResult};
use genclus_hin::{AttributeId, HinGraph};
use genclus_stats::simplex::normalize_floored;
use genclus_stats::MembershipMatrix;

/// iTopicModel hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ITopicConfig {
    /// Number of topics.
    pub k: usize,
    /// Neighbor-mass coupling (the MRF interaction weight).
    pub lambda: f64,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on membership change.
    pub tol: f64,
    /// Floor for topic-term probabilities.
    pub beta_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ITopicConfig {
    /// Defaults: unit coupling, 50 EM iterations.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            lambda: 1.0,
            max_iters: 50,
            tol: 1e-4,
            beta_floor: 1e-9,
            seed: 0,
        }
    }
}

/// Fits iTopicModel on one categorical attribute over the homogenized,
/// undirected network.
pub fn fit_itopicmodel(graph: &HinGraph, attr: AttributeId, config: &ITopicConfig) -> PlsaResult {
    assert!(config.k >= 2, "need at least two topics");
    assert!(config.lambda >= 0.0, "lambda must be non-negative");
    let table = graph.attribute(attr);
    let n = graph.n_objects();
    let k = config.k;
    let mut rng = genclus_stats::seeded_rng(config.seed);
    let mut theta = MembershipMatrix::random(n, k, &mut rng);
    let (mut beta, m) = init_beta(table, k, config.beta_floor, &mut rng);

    let mut iterations = 0;
    for _ in 0..config.max_iters {
        let mut mass = vec![0.0f64; n * k];
        beta = plsa_sweep(table, &theta, &beta, m, k, config.beta_floor, &mut mass);

        // Add neighbor-membership mass (MRF prior), then renormalize.
        let mut next = theta.clone();
        let mut max_delta = 0.0f64;
        for v in graph.objects() {
            let row = &mut mass[v.index() * k..(v.index() + 1) * k];
            for link in graph.out_links(v).chain(graph.in_links(v)) {
                let nb = theta.row(link.endpoint.index());
                for (o, &x) in row.iter_mut().zip(nb) {
                    *o += config.lambda * link.weight * x;
                }
            }
            if row.iter().sum::<f64>() > 0.0 {
                normalize_floored(row);
                for (o, t) in row.iter().zip(theta.row(v.index())) {
                    max_delta = max_delta.max((o - t).abs());
                }
                next.set_row(v.index(), row);
            }
        }
        theta = next;
        iterations += 1;
        if max_delta < config.tol {
            break;
        }
    }

    PlsaResult {
        theta,
        beta,
        vocab_size: m,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plsa::test_support::two_topic_network;

    #[test]
    fn separates_topic_blocks() {
        let (g, text) = two_topic_network();
        let out = fit_itopicmodel(&g, text, &ITopicConfig::new(2));
        let labels = out.theta.hard_labels();
        for i in 1..5 {
            assert_eq!(labels[i], labels[0]);
        }
        for i in 6..10 {
            assert_eq!(labels[i], labels[5]);
        }
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn textless_object_inherits_neighborhood_topic_confidently() {
        let (g, text) = two_topic_network();
        let out = fit_itopicmodel(&g, text, &ITopicConfig::new(2));
        let labels = out.theta.hard_labels();
        assert_eq!(labels[10], labels[0]);
        // Because neighbor mass fully determines a textless object, the
        // membership should be concentrated, not just barely tilted.
        let row = out.theta.row(10);
        assert!(
            row[labels[10]] > 0.8,
            "expected confident membership: {row:?}"
        );
    }

    #[test]
    fn zero_coupling_ignores_the_network() {
        let (g, text) = two_topic_network();
        let mut cfg = ITopicConfig::new(2);
        cfg.lambda = 0.0;
        let out = fit_itopicmodel(&g, text, &cfg);
        let plain = crate::plsa::fit_plsa(
            &g,
            text,
            &crate::plsa::PlsaConfig {
                k: 2,
                max_iters: cfg.max_iters,
                tol: cfg.tol,
                beta_floor: cfg.beta_floor,
                seed: cfg.seed,
            },
        );
        assert!(out.theta.max_abs_diff(&plain.theta) < 1e-12);
    }

    #[test]
    fn deterministic_by_seed() {
        let (g, text) = two_topic_network();
        let a = fit_itopicmodel(&g, text, &ITopicConfig::new(2));
        let b = fit_itopicmodel(&g, text, &ITopicConfig::new(2));
        assert!(a.theta.max_abs_diff(&b.theta) == 0.0);
    }
}
