//! Lloyd's k-means with k-means++ seeding and multi-restart.
//!
//! The attribute-only baseline of Figs. 7–8 (and the final step of the
//! spectral baseline). Operates on dense feature vectors; the weather
//! experiments feed it the interpolated 2-D sensor features from
//! [`crate::interpolate`].

use rand::Rng;

/// k-means hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Stop when no assignment changes.
    pub n_restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl KMeansConfig {
    /// Defaults: 100 iterations, 5 restarts.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 100,
            n_restarts: 5,
            seed: 0,
        }
    }
}

/// A fitted k-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Hard cluster label per point.
    pub labels: Vec<usize>,
    /// Row-major `k × d` centroids.
    pub centroids: Vec<f64>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007).
fn kmeanspp_init<R: Rng>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<f64> {
    let n = points.len();
    let d = points[0].len();
    let mut centroids = Vec::with_capacity(k * d);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&points[first]);
    let mut dist2: Vec<f64> = points.iter().map(|p| sq_dist(p, &points[first])).collect();
    for _ in 1..k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            genclus_stats::sample_categorical(rng, &dist2)
        };
        centroids.extend_from_slice(&points[next]);
        for (d2, p) in dist2.iter_mut().zip(points) {
            *d2 = d2.min(sq_dist(p, &points[next]));
        }
    }
    centroids
}

fn lloyd(points: &[Vec<f64>], k: usize, max_iters: usize, mut centroids: Vec<f64>) -> KMeansResult {
    let n = points.len();
    let d = points[0].len();
    let mut labels = vec![0usize; n];
    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_dist(p, &centroids[c * d..(c + 1) * d]);
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update step (empty clusters keep their previous centroid).
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (s, &x) in sums[l * d..(l + 1) * d].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for (cen, s) in centroids[c * d..(c + 1) * d]
                    .iter_mut()
                    .zip(&sums[c * d..(c + 1) * d])
                {
                    *cen = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| sq_dist(p, &centroids[l * d..(l + 1) * d]))
        .sum();
    KMeansResult {
        labels,
        centroids,
        inertia,
    }
}

/// Clusters `points` into `config.k` groups; returns the best of
/// `config.n_restarts` k-means++-seeded Lloyd runs by inertia.
///
/// # Panics
/// Panics if `points` is empty, dimensions are ragged, or `k == 0`.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(config.k > 0, "k must be positive");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "ragged feature vectors"
    );
    let mut rng = genclus_stats::seeded_rng(config.seed);
    let mut best: Option<KMeansResult> = None;
    for _ in 0..config.n_restarts.max(1) {
        let init = kmeanspp_init(points, config.k, &mut rng);
        let run = lloyd(points, config.k, config.max_iters, init);
        if best.as_ref().is_none_or(|b| run.inertia < b.inertia) {
            best = Some(run);
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut rng = genclus_stats::seeded_rng(1);
        let mut pts = Vec::new();
        for &(cx, cy) in &[(-5.0, -5.0), (5.0, 5.0), (-5.0, 5.0)] {
            for _ in 0..30 {
                pts.push(vec![
                    cx + genclus_stats::rng::standard_normal(&mut rng) * 0.4,
                    cy + genclus_stats::rng::standard_normal(&mut rng) * 0.4,
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = blobs();
        let out = kmeans(&pts, &KMeansConfig::new(3));
        // All members of a blob share a label; blobs get distinct labels.
        for blob in 0..3 {
            let l0 = out.labels[blob * 30];
            for i in 0..30 {
                assert_eq!(out.labels[blob * 30 + i], l0, "blob {blob} split");
            }
        }
        assert_ne!(out.labels[0], out.labels[30]);
        assert_ne!(out.labels[30], out.labels[60]);
        assert!(out.inertia < 60.0, "inertia {} too high", out.inertia);
    }

    #[test]
    fn centroids_land_on_blob_centers() {
        let pts = blobs();
        let out = kmeans(&pts, &KMeansConfig::new(3));
        let mut found = [false; 3];
        for c in out.centroids.chunks(2) {
            for (i, &(cx, cy)) in [(-5.0, -5.0), (5.0, 5.0), (-5.0, 5.0)].iter().enumerate() {
                if (c[0] - cx).abs() < 0.5 && (c[1] - cy).abs() < 0.5 {
                    found[i] = true;
                }
            }
        }
        assert!(found.iter().all(|&f| f), "centroids {:?}", out.centroids);
    }

    #[test]
    fn single_cluster_is_the_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let out = kmeans(&pts, &KMeansConfig::new(1));
        assert!((out.centroids[0] - 2.0).abs() < 1e-9);
        assert_eq!(out.labels, vec![0, 0, 0]);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        let mut cfg = KMeansConfig::new(3);
        cfg.n_restarts = 10;
        let out = kmeans(&pts, &cfg);
        assert!(out.inertia < 1e-12);
    }

    #[test]
    fn deterministic_by_seed() {
        let pts = blobs();
        let a = kmeans(&pts, &KMeansConfig::new(3));
        let b = kmeans(&pts, &KMeansConfig::new(3));
        assert_eq!(a, b);
    }

    #[test]
    fn restarts_never_hurt() {
        let pts = blobs();
        let single = kmeans(
            &pts,
            &KMeansConfig {
                n_restarts: 1,
                ..KMeansConfig::new(3)
            },
        );
        let multi = kmeans(
            &pts,
            &KMeansConfig {
                n_restarts: 8,
                ..KMeansConfig::new(3)
            },
        );
        assert!(multi.inertia <= single.inertia + 1e-9);
    }
}
