//! The "SpectralCombine" baseline: spectral clustering on an equal-weight
//! combination of network modularity and attribute similarity.
//!
//! Following the framework of Shiga, Takigawa & Mamitsuka (KDD 2007) as
//! configured in §5.2.1 of the GenClus paper:
//!
//! * the **network part** is the modularity matrix
//!   `B = W − d dᵀ / (2m)` of the homogenized, symmetrized link structure
//!   (all relations flattened, strength 1);
//! * the **attribute part** replaces cosine similarity with the Euclidean
//!   inner product of Zha et al.'s spectral k-means relaxation: features are
//!   interpolated ([`crate::interpolate`]), centered and standardized, and
//!   contribute the Gram matrix `X Xᵀ`;
//! * both parts are normalized to unit Frobenius norm and combined with
//!   equal weights;
//! * the top-`K` eigenvectors of the combination embed the objects, and
//!   k-means on the embedding rows yields hard labels.

use crate::eigen::top_eigenpairs;
use crate::interpolate::interpolate_features;
use crate::kmeans::{kmeans, KMeansConfig};
use genclus_hin::{AttributeId, HinGraph};
use genclus_stats::Matrix;

/// SpectralCombine hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralConfig {
    /// Number of clusters (also the embedding dimension).
    pub k: usize,
    /// Weight of the network part (`0.5` = the paper's equal weighting).
    pub network_weight: f64,
    /// Orthogonal-iteration sweeps for the eigensolver.
    pub power_iters: usize,
    /// k-means configuration for the embedding.
    pub kmeans: KMeansConfig,
    /// RNG seed (eigensolver start and k-means seeding).
    pub seed: u64,
}

impl SpectralConfig {
    /// Defaults: equal weights, 100 power iterations, 5 k-means restarts.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            network_weight: 0.5,
            power_iters: 100,
            kmeans: KMeansConfig::new(k),
            seed: 0,
        }
    }
}

/// A fitted spectral clustering.
#[derive(Debug, Clone)]
pub struct SpectralResult {
    /// Hard label per object.
    pub labels: Vec<usize>,
    /// Row-major `n × k` spectral embedding.
    pub embedding: Vec<f64>,
    /// Eigenvalues of the combined matrix, descending.
    pub eigenvalues: Vec<f64>,
}

/// Runs the combined spectral baseline on numerical attributes.
///
/// # Panics
/// Panics if the network is empty or an attribute is not numerical.
pub fn spectral_combine(
    graph: &HinGraph,
    attrs: &[AttributeId],
    config: &SpectralConfig,
) -> SpectralResult {
    let n = graph.n_objects();
    assert!(n > 0, "cannot cluster an empty network");
    assert!(config.k >= 2 && config.k <= n);

    // ---- Network part: modularity matrix of the symmetrized structure.
    let mut w = Matrix::zeros(n, n);
    let mut degree = vec![0.0f64; n];
    let mut two_m = 0.0f64;
    for (src, link) in graph.iter_links() {
        let (i, j) = (src.index(), link.endpoint.index());
        if i == j {
            continue;
        }
        // Symmetrize: each directed link contributes to both triangles.
        w[(i, j)] += link.weight;
        w[(j, i)] += link.weight;
        degree[i] += link.weight;
        degree[j] += link.weight;
        two_m += 2.0 * link.weight;
    }
    let mut network = Matrix::zeros(n, n);
    if two_m > 0.0 {
        for i in 0..n {
            for j in 0..n {
                network[(i, j)] = w[(i, j)] - degree[i] * degree[j] / two_m;
            }
        }
    }

    // ---- Attribute part: standardized interpolated features, Gram matrix.
    let features = interpolate_features(graph, attrs);
    let d = attrs.len();
    let mut std_features = features;
    for dim in 0..d {
        let mean: f64 = std_features.iter().map(|f| f[dim]).sum::<f64>() / n as f64;
        let var: f64 = std_features
            .iter()
            .map(|f| (f[dim] - mean) * (f[dim] - mean))
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt().max(1e-12);
        for f in &mut std_features {
            f[dim] = (f[dim] - mean) / std;
        }
    }
    let mut attribute = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let dot: f64 = std_features[i]
                .iter()
                .zip(&std_features[j])
                .map(|(a, b)| a * b)
                .sum();
            attribute[(i, j)] = dot;
            attribute[(j, i)] = dot;
        }
    }

    // ---- Equal-weight combination after Frobenius normalization.
    let nf = network.frobenius_norm().max(1e-12);
    let af = attribute.frobenius_norm().max(1e-12);
    let wn = config.network_weight;
    let mut combined = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            combined[(i, j)] = wn * network[(i, j)] / nf + (1.0 - wn) * attribute[(i, j)] / af;
        }
    }

    // ---- Embedding + k-means.
    let eig = top_eigenpairs(&combined, config.k, config.power_iters, config.seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| eig.vectors[i * config.k..(i + 1) * config.k].to_vec())
        .collect();
    let mut km_cfg = config.kmeans.clone();
    km_cfg.k = config.k;
    km_cfg.seed = config.seed;
    let km = kmeans(&rows, &km_cfg);

    SpectralResult {
        labels: km.labels,
        embedding: eig.vectors,
        eigenvalues: eig.values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::prelude::*;
    use rand::Rng;

    /// Two sensor communities with distinct attribute levels and dense
    /// intra-community links.
    fn two_community_network(seed: u64) -> (HinGraph, Vec<usize>) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut s = Schema::new();
        let t = s.add_object_type("sensor");
        let nn = s.add_relation("nn", t, t);
        let _x = s.add_numerical_attribute("x");
        let mut b = HinBuilder::new(s);
        let n = 30;
        let vs: Vec<_> = (0..n).map(|i| b.add_object(t, format!("s{i}"))).collect();
        let truth: Vec<usize> = (0..n).map(|i| i / 15).collect();
        for i in 0..n {
            // A ring within each community guarantees connectivity whatever
            // the random chords turn out to be.
            let ring_j = (i + 1) % 15 + 15 * (i / 15);
            b.add_link(vs[i], vs[ring_j], nn, 1.0).unwrap();
            for _ in 0..3 {
                let j = loop {
                    let j = rng.gen_range(0..n);
                    if j != i && truth[j] == truth[i] {
                        break j;
                    }
                };
                b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
            }
            // Half the sensors have observations (incomplete attributes).
            if i % 2 == 0 {
                let mu = if truth[i] == 0 { -2.0 } else { 2.0 };
                b.add_numeric(vs[i], AttributeId(0), mu + 0.1 * rng.gen::<f64>())
                    .unwrap();
            }
        }
        (b.build().unwrap(), truth)
    }

    #[test]
    fn recovers_two_communities() {
        let (g, truth) = two_community_network(3);
        let attrs = [AttributeId(0)];
        let out = spectral_combine(&g, &attrs, &SpectralConfig::new(2));
        // Perfect or near-perfect agreement up to label permutation.
        let agree = truth
            .iter()
            .zip(&out.labels)
            .filter(|(t, l)| *t == *l)
            .count();
        let agreement = agree.max(truth.len() - agree) as f64 / truth.len() as f64;
        assert!(agreement > 0.9, "agreement {agreement}");
    }

    #[test]
    fn embedding_has_expected_shape() {
        let (g, _) = two_community_network(4);
        let out = spectral_combine(&g, &[AttributeId(0)], &SpectralConfig::new(2));
        assert_eq!(out.embedding.len(), g.n_objects() * 2);
        assert_eq!(out.eigenvalues.len(), 2);
        assert!(out.eigenvalues[0] >= out.eigenvalues[1]);
        assert_eq!(out.labels.len(), g.n_objects());
    }

    #[test]
    fn network_weight_extremes_still_cluster() {
        let (g, truth) = two_community_network(5);
        for wn in [0.0, 1.0] {
            let mut cfg = SpectralConfig::new(2);
            cfg.network_weight = wn;
            // With a single information source the embedding is flatter, so
            // give k-means enough restarts to escape bad seedings.
            cfg.kmeans.n_restarts = 20;
            let out = spectral_combine(&g, &[AttributeId(0)], &cfg);
            let agree = truth
                .iter()
                .zip(&out.labels)
                .filter(|(t, l)| *t == *l)
                .count();
            let agreement = agree.max(truth.len() - agree) as f64 / truth.len() as f64;
            // Pure structure or pure attributes both carry signal here.
            assert!(agreement > 0.8, "weight {wn}: agreement {agreement}");
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let (g, _) = two_community_network(6);
        let a = spectral_combine(&g, &[AttributeId(0)], &SpectralConfig::new(2));
        let b = spectral_combine(&g, &[AttributeId(0)], &SpectralConfig::new(2));
        assert_eq!(a.labels, b.labels);
    }
}
