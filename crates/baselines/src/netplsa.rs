//! NetPLSA (Mei, Cai, Zhang, Zhai — WWW 2008): topic modeling with network
//! regularization.
//!
//! NetPLSA augments the PLSA likelihood with a graph-harmonic penalty
//! `λ/2 · Σ_{⟨u,v⟩} w(u,v) Σ_k (θ_{u,k} − θ_{v,k})²` that pulls linked
//! documents toward similar topic mixtures. As in the original paper, the
//! optimization interleaves PLSA EM steps with smoothing steps that replace
//! each membership with a convex combination of itself and the weighted
//! average of its neighbors.
//!
//! Per §5.2.1 of the GenClus paper the network is *homogenized*: all link
//! types are used with equal strength (the baseline cannot distinguish
//! them), and links are treated as undirected (out- plus in-neighbors).
//!
//! Characteristic failure mode reproduced here: objects without text only
//! ever receive smoothed copies of their own (random) initialization mixed
//! with neighbors, so on the ACP network — where authors and conferences
//! carry no text — author memberships stay noisy ("outputs almost random
//! predictions for authors", §5.2.1).

use crate::plsa::{init_beta, plsa_sweep, PlsaResult};
use genclus_hin::{AttributeId, HinGraph};
use genclus_stats::simplex::normalize_floored;
use genclus_stats::MembershipMatrix;

/// NetPLSA hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPlsaConfig {
    /// Number of topics.
    pub k: usize,
    /// Weight of the network part (`λ ∈ [0, 1]`; 0 = plain PLSA).
    pub lambda: f64,
    /// Smoothing sub-steps per EM iteration.
    pub smooth_steps: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on membership change.
    pub tol: f64,
    /// Floor for topic-term probabilities.
    pub beta_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NetPlsaConfig {
    /// Defaults from the NetPLSA paper's recommended mid-range: `λ = 0.5`,
    /// three smoothing steps.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            lambda: 0.5,
            smooth_steps: 3,
            max_iters: 50,
            tol: 1e-4,
            beta_floor: 1e-9,
            seed: 0,
        }
    }
}

/// Fits NetPLSA on one categorical attribute, regularizing over the whole
/// (homogenized, undirected) link structure.
pub fn fit_netplsa(graph: &HinGraph, attr: AttributeId, config: &NetPlsaConfig) -> PlsaResult {
    assert!(config.k >= 2, "need at least two topics");
    assert!(
        (0.0..=1.0).contains(&config.lambda),
        "lambda must be in [0,1]"
    );
    let table = graph.attribute(attr);
    let n = graph.n_objects();
    let k = config.k;
    let mut rng = genclus_stats::seeded_rng(config.seed);
    let mut theta = MembershipMatrix::random(n, k, &mut rng);
    let (mut beta, m) = init_beta(table, k, config.beta_floor, &mut rng);

    let mut iterations = 0;
    for _ in 0..config.max_iters {
        // PLSA half-step.
        let mut text_mass = vec![0.0f64; n * k];
        beta = plsa_sweep(
            table,
            &theta,
            &beta,
            m,
            k,
            config.beta_floor,
            &mut text_mass,
        );
        let mut next = theta.clone();
        for v in 0..n {
            let row = &mut text_mass[v * k..(v + 1) * k];
            if row.iter().sum::<f64>() > 0.0 {
                normalize_floored(row);
                next.set_row(v, row);
            }
        }

        // Network smoothing half-step: θ_v ← (1−λ) θ_v + λ · avg(neighbors).
        for _ in 0..config.smooth_steps {
            let current = next.clone();
            for v in graph.objects() {
                let mut acc = vec![0.0f64; k];
                let mut total_w = 0.0;
                for link in graph.out_links(v).chain(graph.in_links(v)) {
                    let nb = current.row(link.endpoint.index());
                    for (a, &x) in acc.iter_mut().zip(nb) {
                        *a += link.weight * x;
                    }
                    total_w += link.weight;
                }
                if total_w == 0.0 {
                    continue;
                }
                let own = current.row(v.index());
                for (a, &o) in acc.iter_mut().zip(own) {
                    *a = (1.0 - config.lambda) * o + config.lambda * *a / total_w;
                }
                next.set_row(v.index(), &acc);
            }
        }

        let max_delta = theta.max_abs_diff(&next);
        theta = next;
        iterations += 1;
        if max_delta < config.tol {
            break;
        }
    }

    PlsaResult {
        theta,
        beta,
        vocab_size: m,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plsa::test_support::two_topic_network;

    #[test]
    fn separates_topic_blocks() {
        let (g, text) = two_topic_network();
        let out = fit_netplsa(&g, text, &NetPlsaConfig::new(2));
        let labels = out.theta.hard_labels();
        for i in 1..5 {
            assert_eq!(labels[i], labels[0]);
        }
        for i in 6..10 {
            assert_eq!(labels[i], labels[5]);
        }
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn textless_object_is_pulled_to_its_neighborhood() {
        let (g, text) = two_topic_network();
        let out = fit_netplsa(&g, text, &NetPlsaConfig::new(2));
        let labels = out.theta.hard_labels();
        // Doc 10 links only into block 1 — unlike plain PLSA, smoothing
        // propagates the block's topic to it.
        assert_eq!(labels[10], labels[0]);
    }

    #[test]
    fn lambda_zero_reduces_to_plsa_for_text_objects() {
        let (g, text) = two_topic_network();
        let mut cfg = NetPlsaConfig::new(2);
        cfg.lambda = 0.0;
        let net = fit_netplsa(&g, text, &cfg);
        let plain = crate::plsa::fit_plsa(
            &g,
            text,
            &crate::plsa::PlsaConfig {
                k: 2,
                max_iters: cfg.max_iters,
                tol: cfg.tol,
                beta_floor: cfg.beta_floor,
                seed: cfg.seed,
            },
        );
        // Same seed, same updates when λ = 0 ⇒ identical results.
        assert!(net.theta.max_abs_diff(&plain.theta) < 1e-12);
    }

    #[test]
    fn stronger_lambda_smooths_neighbors_closer() {
        let (g, text) = two_topic_network();
        let mut weak = NetPlsaConfig::new(2);
        weak.lambda = 0.1;
        let mut strong = NetPlsaConfig::new(2);
        strong.lambda = 0.9;
        let dist = |out: &PlsaResult| -> f64 {
            // Mean Euclidean distance across linked pairs.
            let mut acc = 0.0;
            let mut cnt = 0.0;
            for (src, link) in g.iter_links() {
                let a = out.theta.row(src.index());
                let b = out.theta.row(link.endpoint.index());
                acc += a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                cnt += 1.0;
            }
            acc / cnt
        };
        let d_weak = dist(&fit_netplsa(&g, text, &weak));
        let d_strong = dist(&fit_netplsa(&g, text, &strong));
        assert!(
            d_strong <= d_weak + 1e-9,
            "λ=0.9 ({d_strong}) must smooth at least as much as λ=0.1 ({d_weak})"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let (g, text) = two_topic_network();
        let a = fit_netplsa(&g, text, &NetPlsaConfig::new(2));
        let b = fit_netplsa(&g, text, &NetPlsaConfig::new(2));
        assert!(a.theta.max_abs_diff(&b.theta) == 0.0);
    }
}
