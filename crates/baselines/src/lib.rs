//! Comparison baselines from the GenClus evaluation (§5.2.1).
//!
//! None of these methods models per-relation strengths — every link type is
//! treated as equally important, exactly as the paper configures them:
//!
//! * [`plsa`] — plain PLSA (Hofmann 1999), the shared text-mixture core of
//!   the two network-regularized topic models;
//! * [`netplsa`] — NetPLSA (Mei et al., WWW 2008): PLSA whose topic
//!   memberships are smoothed over the (homogenized) network after each EM
//!   iteration;
//! * [`itopicmodel`] — iTopicModel (Sun et al., ICDM 2009): PLSA whose
//!   membership update mixes neighbor memberships into the multinomial
//!   counts (a Markov-random-field prior on the document network);
//! * [`kmeans`] — Lloyd's k-means with k-means++ seeding, the attribute-only
//!   baseline of Figs. 7–8;
//! * [`interpolate`] — the neighbor-mean interpolation the paper applies so
//!   that k-means and spectral clustering can run on sensors with
//!   incomplete attributes;
//! * [`spectral`] — the "SpectralCombine" baseline: modularity matrix plus
//!   standardized attribute Gram matrix with equal weights, top-`K`
//!   eigenvectors (via [`eigen`] orthogonal iteration), then k-means in the
//!   embedding (Shiga et al., KDD 2007 framework with the Euclidean
//!   attribute term of Zha et al.).

pub mod eigen;
pub mod interpolate;
pub mod itopicmodel;
pub mod kmeans;
pub mod netplsa;
pub mod plsa;
pub mod spectral;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::interpolate::interpolate_features;
    pub use crate::itopicmodel::{fit_itopicmodel, ITopicConfig};
    pub use crate::kmeans::{kmeans, KMeansConfig, KMeansResult};
    pub use crate::netplsa::{fit_netplsa, NetPlsaConfig};
    pub use crate::plsa::{fit_plsa, PlsaConfig, PlsaResult};
    pub use crate::spectral::{spectral_combine, SpectralConfig, SpectralResult};
}

pub use prelude::*;
