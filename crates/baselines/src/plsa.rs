//! Probabilistic Latent Semantic Analysis (Hofmann 1999).
//!
//! The text core shared by NetPLSA and iTopicModel: every object with term
//! observations is a "document" with a topic mixture `θ_d`; each topic is a
//! categorical distribution `β_k` over the vocabulary. Plain EM:
//!
//! ```text
//! E:  p(z = k | d, l) ∝ θ_{d,k} β_{k,l}
//! M:  θ_{d,k} ∝ Σ_l c_{d,l} p(z = k | d, l)
//!     β_{k,l} ∝ Σ_d c_{d,l} p(z = k | d, l)
//! ```
//!
//! Objects without any term observations keep whatever membership the
//! network step (in the derived baselines) assigns them; plain PLSA leaves
//! them at their initialization.

use genclus_hin::{AttributeData, AttributeId, HinGraph};
use genclus_stats::simplex::normalize_floored;
use genclus_stats::MembershipMatrix;
use rand::Rng;

/// PLSA hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlsaConfig {
    /// Number of topics (clusters).
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the max-abs membership change falls below this.
    pub tol: f64,
    /// Floor for topic-term probabilities.
    pub beta_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PlsaConfig {
    /// A default configuration for `k` topics.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 50,
            tol: 1e-4,
            beta_floor: 1e-9,
            seed: 0,
        }
    }
}

/// A fitted PLSA model.
#[derive(Debug, Clone)]
pub struct PlsaResult {
    /// Per-object topic memberships (uniform-ish for textless objects).
    pub theta: MembershipMatrix,
    /// Row-major `K × m` topic-term probabilities.
    pub beta: Vec<f64>,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// EM iterations used.
    pub iterations: usize,
}

/// Initializes `β` near the corpus term distribution with multiplicative
/// noise (shared by the network-regularized variants).
pub(crate) fn init_beta<R: Rng>(
    table: &AttributeData,
    k: usize,
    beta_floor: f64,
    rng: &mut R,
) -> (Vec<f64>, usize) {
    let m = table.vocab_size();
    let mut global = vec![0.0f64; m];
    for &(t, c) in table.all_term_counts() {
        global[t as usize] += c;
    }
    if global.iter().sum::<f64>() <= 0.0 {
        global.iter_mut().for_each(|g| *g = 1.0);
    }
    let mut beta = vec![0.0; k * m];
    for row in beta.chunks_mut(m) {
        for (b, &g) in row.iter_mut().zip(&global) {
            *b = g.max(beta_floor) * (0.5 + rng.gen::<f64>());
        }
        normalize_with_floor(row, beta_floor);
    }
    (beta, m)
}

pub(crate) fn normalize_with_floor(row: &mut [f64], floor: f64) {
    let sum: f64 = row.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        let u = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|x| *x = u);
        return;
    }
    for x in row.iter_mut() {
        *x = (*x / sum).max(floor);
    }
    let sum: f64 = row.iter().sum();
    row.iter_mut().for_each(|x| *x /= sum);
}

/// One PLSA E+M sweep. Writes new memberships into `new_theta` (text part
/// only — rows of textless objects are left zeroed for the caller to fill)
/// and returns the new `β`.
pub(crate) fn plsa_sweep(
    table: &AttributeData,
    theta: &MembershipMatrix,
    beta: &[f64],
    m: usize,
    k: usize,
    beta_floor: f64,
    new_theta_text: &mut [f64],
) -> Vec<f64> {
    let n = theta.n_objects();
    let mut new_beta = vec![0.0f64; k * m];
    let mut resp = vec![0.0f64; k];
    for v_idx in 0..n {
        let v = genclus_hin::ObjectId::from_index(v_idx);
        let tv = theta.row(v_idx);
        let out = &mut new_theta_text[v_idx * k..(v_idx + 1) * k];
        for &(term, count) in table.term_counts(v) {
            let mut total = 0.0;
            for (kk, r) in resp.iter_mut().enumerate() {
                *r = tv[kk] * beta[kk * m + term as usize];
                total += *r;
            }
            if total <= 0.0 {
                resp.copy_from_slice(tv);
            } else {
                resp.iter_mut().for_each(|r| *r /= total);
            }
            for (kk, &r) in resp.iter().enumerate() {
                out[kk] += count * r;
                new_beta[kk * m + term as usize] += count * r;
            }
        }
    }
    for row in new_beta.chunks_mut(m) {
        normalize_with_floor(row, beta_floor);
    }
    new_beta
}

/// Fits plain PLSA on one categorical attribute of the network.
///
/// # Panics
/// Panics if the attribute is not categorical or `k < 2`.
pub fn fit_plsa(graph: &HinGraph, attr: AttributeId, config: &PlsaConfig) -> PlsaResult {
    assert!(config.k >= 2, "need at least two topics");
    let table = graph.attribute(attr);
    let n = graph.n_objects();
    let k = config.k;
    let mut rng = genclus_stats::seeded_rng(config.seed);
    let mut theta = MembershipMatrix::random(n, k, &mut rng);
    let (mut beta, m) = init_beta(table, k, config.beta_floor, &mut rng);

    let mut iterations = 0;
    for _ in 0..config.max_iters {
        let mut text_mass = vec![0.0f64; n * k];
        beta = plsa_sweep(
            table,
            &theta,
            &beta,
            m,
            k,
            config.beta_floor,
            &mut text_mass,
        );
        let mut max_delta = 0.0f64;
        let mut new_theta = theta.clone();
        for v in 0..n {
            let row = &mut text_mass[v * k..(v + 1) * k];
            if row.iter().sum::<f64>() > 0.0 {
                normalize_floored(row);
                for (o, t) in row.iter().zip(theta.row(v)) {
                    max_delta = max_delta.max((o - t).abs());
                }
                new_theta.set_row(v, row);
            }
            // Textless objects keep their previous membership: plain PLSA
            // has no information about them.
        }
        theta = new_theta;
        iterations += 1;
        if max_delta < config.tol {
            break;
        }
    }

    PlsaResult {
        theta,
        beta,
        vocab_size: m,
        iterations,
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use genclus_hin::prelude::*;

    /// A two-topic corpus: docs 0..4 use terms {0,1}, docs 5..9 use {2,3};
    /// doc 10 has no text. A `cite` relation links documents within each
    /// topic block into a ring, plus doc 10 to the first block.
    pub fn two_topic_network() -> (HinGraph, AttributeId) {
        let mut s = Schema::new();
        let t = s.add_object_type("doc");
        let cite = s.add_relation("cite", t, t);
        let text = s.add_categorical_attribute("text", 4);
        let mut b = HinBuilder::new(s);
        let docs: Vec<_> = (0..11).map(|i| b.add_object(t, format!("d{i}"))).collect();
        for i in 0..5usize {
            let terms = [0u32, 1, 0, 1, 0];
            b.add_terms(docs[i], text, &terms[..3 + (i % 3)]).unwrap();
        }
        for i in 5..10usize {
            let terms = [2u32, 3, 2, 3, 2];
            b.add_terms(docs[i], text, &terms[..3 + (i % 3)]).unwrap();
        }
        for block in [0usize..5, 5..10] {
            let ids: Vec<usize> = block.collect();
            for w in ids.windows(2) {
                b.add_link(docs[w[0]], docs[w[1]], cite, 1.0).unwrap();
                b.add_link(docs[w[1]], docs[w[0]], cite, 1.0).unwrap();
            }
        }
        // The textless doc links into the first block.
        b.add_link(docs[10], docs[0], cite, 1.0).unwrap();
        b.add_link(docs[0], docs[10], cite, 1.0).unwrap();
        (b.build().unwrap(), text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::two_topic_network;

    #[test]
    fn separates_disjoint_vocabularies() {
        let (g, text) = two_topic_network();
        let out = fit_plsa(&g, text, &PlsaConfig::new(2));
        let labels = out.theta.hard_labels();
        for i in 1..5 {
            assert_eq!(labels[i], labels[0], "block 1 must agree");
        }
        for i in 6..10 {
            assert_eq!(labels[i], labels[5], "block 2 must agree");
        }
        assert_ne!(labels[0], labels[5], "blocks must separate");
    }

    #[test]
    fn beta_rows_are_distributions_over_vocab() {
        let (g, text) = two_topic_network();
        let out = fit_plsa(&g, text, &PlsaConfig::new(2));
        assert_eq!(out.vocab_size, 4);
        for row in out.beta.chunks(4) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x > 0.0));
        }
        // Topic term distributions must concentrate on their block's terms.
        let topic_of_term0 = if out.beta[0] + out.beta[1] > out.beta[4] + out.beta[5] {
            0
        } else {
            1
        };
        let row = &out.beta[topic_of_term0 * 4..(topic_of_term0 + 1) * 4];
        assert!(row[0] + row[1] > 0.9, "topic should own terms 0,1: {row:?}");
    }

    #[test]
    fn textless_objects_are_untouched_by_plain_plsa() {
        let (g, text) = two_topic_network();
        let cfg = PlsaConfig::new(2);
        let mut rng = genclus_stats::seeded_rng(cfg.seed);
        let init = MembershipMatrix::random(g.n_objects(), 2, &mut rng);
        let out = fit_plsa(&g, text, &cfg);
        // Doc 10 has no text: PLSA left its membership at initialization.
        assert_eq!(out.theta.row(10), init.row(10));
    }

    #[test]
    fn deterministic_by_seed() {
        let (g, text) = two_topic_network();
        let a = fit_plsa(&g, text, &PlsaConfig::new(2));
        let b = fit_plsa(&g, text, &PlsaConfig::new(2));
        assert_eq!(a.beta, b.beta);
        assert!(a.theta.max_abs_diff(&b.theta) == 0.0);
    }

    #[test]
    fn converges_before_iteration_cap() {
        let (g, text) = two_topic_network();
        let mut cfg = PlsaConfig::new(2);
        cfg.max_iters = 500;
        let out = fit_plsa(&g, text, &cfg);
        assert!(out.iterations < 500);
    }
}
