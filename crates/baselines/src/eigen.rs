//! Top-K eigenpairs of symmetric matrices by orthogonal (subspace)
//! iteration.
//!
//! The spectral baseline needs the leading eigenvectors of a dense `n × n`
//! combined similarity matrix with `n` up to a few thousand — full
//! eigendecomposition is overkill, but `K ≤ 8` dominant eigenvectors via
//! orthogonal iteration cost only `O(iters · n² · K)`. The matrix may be
//! indefinite (modularity matrices are), so a Gershgorin shift `A + cI`
//! makes the spectrum non-negative first; the shift changes eigenvalues by
//! `c` and leaves eigenvectors and their ordering by algebraic eigenvalue
//! intact.

use genclus_stats::Matrix;
use rand::Rng;

/// Result of [`top_eigenpairs`].
#[derive(Debug, Clone)]
pub struct EigenResult {
    /// The `k` largest (algebraic) eigenvalues, descending.
    pub values: Vec<f64>,
    /// Row-major `n × k`: column `j` is the eigenvector of `values[j]`.
    pub vectors: Vec<f64>,
}

/// Modified Gram–Schmidt on the `k` columns of the row-major `n × k` matrix
/// `q`. Degenerate columns are re-randomized.
fn orthonormalize<R: Rng>(q: &mut [f64], n: usize, k: usize, rng: &mut R) {
    for j in 0..k {
        for prev in 0..j {
            let mut dot = 0.0;
            for i in 0..n {
                dot += q[i * k + j] * q[i * k + prev];
            }
            for i in 0..n {
                q[i * k + j] -= dot * q[i * k + prev];
            }
        }
        let mut norm = 0.0;
        for i in 0..n {
            norm += q[i * k + j] * q[i * k + j];
        }
        let mut norm = norm.sqrt();
        if norm < 1e-12 {
            for i in 0..n {
                q[i * k + j] = rng.gen::<f64>() - 0.5;
            }
            norm = (0..n)
                .map(|i| q[i * k + j] * q[i * k + j])
                .sum::<f64>()
                .sqrt();
        }
        for i in 0..n {
            q[i * k + j] /= norm;
        }
    }
}

/// Computes the `k` algebraically largest eigenpairs of the symmetric
/// matrix `a`.
///
/// # Panics
/// Panics if `a` is not square or `k` exceeds its order.
pub fn top_eigenpairs(a: &Matrix, k: usize, iters: usize, seed: u64) -> EigenResult {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    assert!(k >= 1 && k <= n, "k must be in 1..=n");
    let mut rng = genclus_stats::seeded_rng(seed);

    // Gershgorin bound: all |λ| ≤ c, so A + cI is PSD and the dominant
    // subspace of A + cI is the algebraically-largest subspace of A.
    let mut c = 0.0f64;
    for i in 0..n {
        let row_sum: f64 = a.row(i).iter().map(|x| x.abs()).sum();
        c = c.max(row_sum);
    }

    let mut q = vec![0.0f64; n * k];
    q.iter_mut().for_each(|x| *x = rng.gen::<f64>() - 0.5);
    orthonormalize(&mut q, n, k, &mut rng);

    let mut next = vec![0.0f64; n * k];
    for _ in 0..iters {
        // next = (A + cI) q, column-blocked.
        for i in 0..n {
            let arow = a.row(i);
            for j in 0..k {
                let mut acc = c * q[i * k + j];
                for (l, &alv) in arow.iter().enumerate() {
                    acc += alv * q[l * k + j];
                }
                next[i * k + j] = acc;
            }
        }
        std::mem::swap(&mut q, &mut next);
        orthonormalize(&mut q, n, k, &mut rng);
    }

    // Rayleigh quotients of the *unshifted* matrix, then sort descending.
    let mut pairs: Vec<(f64, usize)> = (0..k)
        .map(|j| {
            let col: Vec<f64> = (0..n).map(|i| q[i * k + j]).collect();
            let av = a.matvec(&col);
            let lambda: f64 = col.iter().zip(&av).map(|(x, y)| x * y).sum();
            (lambda, j)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let values = pairs.iter().map(|&(l, _)| l).collect();
    let mut vectors = vec![0.0f64; n * k];
    for (out_j, &(_, in_j)) in pairs.iter().enumerate() {
        for i in 0..n {
            vectors[i * k + out_j] = q[i * k + in_j];
        }
    }
    EigenResult { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenpairs() {
        let a = Matrix::from_slice(
            4,
            4,
            &[
                5.0, 0.0, 0.0, 0.0, //
                0.0, -2.0, 0.0, 0.0, //
                0.0, 0.0, 3.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
        );
        let out = top_eigenpairs(&a, 2, 200, 1);
        assert!((out.values[0] - 5.0).abs() < 1e-8, "{:?}", out.values);
        assert!((out.values[1] - 3.0).abs() < 1e-8);
        // Eigenvector of λ=5 is e_0 (up to sign).
        assert!(out.vectors[0].abs() > 0.999);
    }

    #[test]
    fn known_two_by_two() {
        // [[2,1],[1,2]] has λ = 3 with v = (1,1)/√2 and λ = 1.
        let a = Matrix::from_slice(2, 2, &[2.0, 1.0, 1.0, 2.0]);
        let out = top_eigenpairs(&a, 1, 200, 2);
        assert!((out.values[0] - 3.0).abs() < 1e-9);
        let v = [out.vectors[0], out.vectors[1]];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((v[0] - v[1]).abs() < 1e-6, "components equal up to sign");
    }

    #[test]
    fn indefinite_matrix_prefers_algebraic_not_absolute() {
        // λ = {−10, 4}: the algebraically largest is 4 even though |−10| is
        // bigger — the Gershgorin shift must handle this.
        let a = Matrix::from_slice(2, 2, &[-10.0, 0.0, 0.0, 4.0]);
        let out = top_eigenpairs(&a, 1, 300, 3);
        assert!((out.values[0] - 4.0).abs() < 1e-6, "{:?}", out.values);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        // A symmetric matrix with a known, well-separated spectrum:
        // A = Σ_j λ_j q_j q_jᵀ over a random orthonormal basis, so subspace
        // iteration converges regardless of the RNG draw (an arbitrary
        // random symmetric matrix can have a near-degenerate top gap).
        let mut rng = genclus_stats::seeded_rng(4);
        let n = 10;
        let k = 3;
        let lambdas = [5.0, 3.0, 1.5];
        let mut basis = vec![0.0f64; n * k];
        basis.iter_mut().for_each(|x| *x = rng.gen::<f64>() - 0.5);
        orthonormalize(&mut basis, n, k, &mut rng);
        let mut a = Matrix::zeros(n, n);
        for j in 0..k {
            for r in 0..n {
                for c in 0..n {
                    a[(r, c)] += lambdas[j] * basis[r * k + j] * basis[c * k + j];
                }
            }
        }
        let out = top_eigenpairs(&a, 3, 300, 5);
        for (got, want) in out.values.iter().zip(lambdas) {
            assert!((got - want).abs() < 1e-8, "{:?}", out.values);
        }
        for j1 in 0..3 {
            for j2 in 0..3 {
                let dot: f64 = (0..n)
                    .map(|i| out.vectors[i * 3 + j1] * out.vectors[i * 3 + j2])
                    .sum();
                let expected = if j1 == j2 { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-8, "({j1},{j2}): {dot}");
            }
        }
        // A v ≈ λ v for the dominant pair.
        let v: Vec<f64> = (0..n).map(|i| out.vectors[i * 3]).collect();
        let av = a.matvec(&v);
        for (x, y) in av.iter().zip(&v) {
            assert!((x - out.values[0] * y).abs() < 1e-6);
        }
    }
}
