//! Neighbor-mean interpolation for incomplete numerical attributes.
//!
//! k-means and spectral clustering need a complete feature vector per
//! object, but weather sensors observe only their own attribute. Following
//! §5.2.1 — "we use interpolation to make each sensor have a regular
//! 2-dimensional attribute, by using the mean of all the observations of
//! its neighbors and itself" — each requested attribute dimension is filled
//! with the mean over the object's own observations plus the observations
//! of its (undirected) link neighbors; objects whose whole neighborhood is
//! unobserved fall back to the attribute's global mean.
//!
//! The paper notes this is exactly where the baselines lose information:
//! they "can only use a biased mean value because of the interpolation
//! process", whereas GenClus consumes every raw observation.

use genclus_hin::{AttributeData, AttributeId, HinGraph};

/// Builds an `n × d` feature matrix, one row per object, one column per
/// requested numerical attribute, interpolating missing dimensions from
/// neighbors.
///
/// # Panics
/// Panics if any requested attribute is not numerical.
pub fn interpolate_features(graph: &HinGraph, attrs: &[AttributeId]) -> Vec<Vec<f64>> {
    let n = graph.n_objects();
    let mut features = vec![vec![0.0f64; attrs.len()]; n];
    for (dim, &attr) in attrs.iter().enumerate() {
        let table = graph.attribute(attr);
        if let AttributeData::Categorical { .. } = table {
            panic!("interpolate_features requires numerical attributes");
        }
        // Global mean as the last-resort fallback.
        let flat = table.all_values();
        let global_mean = if flat.is_empty() {
            0.0
        } else {
            flat.iter().sum::<f64>() / flat.len() as f64
        };

        for v in graph.objects() {
            let own = table.values(v);
            let mut sum: f64 = own.iter().sum();
            let mut cnt = own.len();
            for link in graph.out_links(v).chain(graph.in_links(v)) {
                let nb = table.values(link.endpoint);
                sum += nb.iter().sum::<f64>();
                cnt += nb.len();
            }
            features[v.index()][dim] = if cnt > 0 {
                sum / cnt as f64
            } else {
                global_mean
            };
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::prelude::*;

    /// Three sensors in a chain: 0 (temp only) — 1 (nothing) — 2 (precip
    /// only).
    fn chain() -> (HinGraph, AttributeId, AttributeId) {
        let mut s = Schema::new();
        let t = s.add_object_type("sensor");
        let nn = s.add_relation("nn", t, t);
        let temp = s.add_numerical_attribute("temp");
        let precip = s.add_numerical_attribute("precip");
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "s0");
        let v1 = b.add_object(t, "s1");
        let v2 = b.add_object(t, "s2");
        b.add_link(v0, v1, nn, 1.0).unwrap();
        b.add_link(v1, v2, nn, 1.0).unwrap();
        b.add_numeric(v0, temp, 10.0).unwrap();
        b.add_numeric(v0, temp, 14.0).unwrap();
        b.add_numeric(v2, precip, 3.0).unwrap();
        (b.build().unwrap(), temp, precip)
    }

    #[test]
    fn own_observations_dominate_when_present() {
        let (g, temp, precip) = chain();
        let f = interpolate_features(&g, &[temp, precip]);
        // Sensor 0's temp: mean of its own {10, 14} (neighbor 1 has none).
        assert!((f[0][0] - 12.0).abs() < 1e-12);
        // Sensor 2's precip: its own 3.0.
        assert!((f[2][1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_dimensions_come_from_neighbors() {
        let (g, temp, precip) = chain();
        let f = interpolate_features(&g, &[temp, precip]);
        // Sensor 1 has no observations: temp from neighbor 0, precip from
        // neighbor 2 (links are used undirected).
        assert!((f[1][0] - 12.0).abs() < 1e-12);
        assert!((f[1][1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_unobserved_objects_get_the_global_mean() {
        let (g, temp, precip) = chain();
        let f = interpolate_features(&g, &[temp, precip]);
        // Sensor 0 has no precip anywhere in its neighborhood (sensor 1 has
        // none): global precip mean is 3.0.
        assert!((f[0][1] - 3.0).abs() < 1e-12);
        // Sensor 2 has no temp in its neighborhood: global temp mean is 12.
        assert!((f[2][0] - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "numerical")]
    fn rejects_categorical_attributes() {
        let mut s = Schema::new();
        let t = s.add_object_type("doc");
        let text = s.add_categorical_attribute("text", 4);
        let mut b = HinBuilder::new(s);
        b.add_object(t, "d0");
        let g = b.build().unwrap();
        interpolate_features(&g, &[text]);
    }
}
