//! Property-based tests for the HIN substrate: random networks always
//! produce consistent CSR adjacency and attribute tables.

use genclus_hin::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// Builds a random 2-type network from a seed and size parameters.
fn random_network(seed: u64, n_a: usize, n_b: usize, n_links: usize) -> HinGraph {
    let mut rng = genclus_stats::seeded_rng(seed);
    let mut s = Schema::new();
    let ta = s.add_object_type("A");
    let tb = s.add_object_type("B");
    let ab = s.add_relation("ab", ta, tb);
    let ba = s.add_relation("ba", tb, ta);
    let aa = s.add_relation("aa", ta, ta);
    let text = s.add_categorical_attribute("text", 16);
    let num = s.add_numerical_attribute("num");
    let mut b = HinBuilder::new(s);
    let a_ids: Vec<_> = (0..n_a)
        .map(|i| b.add_object(ta, format!("a{i}")))
        .collect();
    let b_ids: Vec<_> = (0..n_b)
        .map(|i| b.add_object(tb, format!("b{i}")))
        .collect();
    for _ in 0..n_links {
        let src = a_ids[rng.gen_range(0..n_a)];
        match rng.gen_range(0..3u8) {
            0 => {
                let dst = b_ids[rng.gen_range(0..n_b)];
                b.add_link(src, dst, ab, rng.gen_range(0.1..5.0)).unwrap();
            }
            1 => {
                let s2 = b_ids[rng.gen_range(0..n_b)];
                b.add_link(s2, src, ba, rng.gen_range(0.1..5.0)).unwrap();
            }
            _ => {
                let dst = a_ids[rng.gen_range(0..n_a)];
                b.add_link(src, dst, aa, 1.0).unwrap();
            }
        }
    }
    for &v in &a_ids {
        if rng.gen_bool(0.5) {
            b.add_term_count(v, text, rng.gen_range(0..16), rng.gen_range(1.0..4.0))
                .unwrap();
        }
    }
    for &v in &b_ids {
        if rng.gen_bool(0.5) {
            b.add_numeric(v, num, rng.gen_range(-10.0..10.0)).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Out-CSR and in-CSR contain exactly the same multiset of links.
    #[test]
    fn in_and_out_adjacency_agree(
        seed in any::<u64>(),
        n_a in 1usize..20,
        n_b in 1usize..20,
        n_links in 0usize..100,
    ) {
        let g = random_network(seed, n_a, n_b, n_links);
        prop_assert_eq!(g.n_links(), n_links);

        let mut out_view: Vec<(u32, u32, u16)> = g
            .iter_links()
            .map(|(src, l)| (src.0, l.endpoint.0, l.relation.0))
            .collect();
        let mut in_view: Vec<(u32, u32, u16)> = g
            .objects()
            .flat_map(|v| {
                g.in_links(v)
                    .iter()
                    .map(move |l| (l.endpoint.0, v.0, l.relation.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        out_view.sort_unstable();
        in_view.sort_unstable();
        prop_assert_eq!(out_view, in_view);
    }

    /// Relation endpoint types always satisfy the schema after building.
    #[test]
    fn links_respect_schema(seed in any::<u64>(), n_links in 0usize..60) {
        let g = random_network(seed, 8, 8, n_links);
        for (src, l) in g.iter_links() {
            let def = g.schema().relation(l.relation);
            prop_assert_eq!(g.object_type(src), def.source);
            prop_assert_eq!(g.object_type(l.endpoint), def.target);
            prop_assert!(l.weight > 0.0);
        }
    }

    /// Per-relation counters agree with a full scan, and type partitions
    /// cover every object exactly once.
    #[test]
    fn accounting_is_consistent(seed in any::<u64>(), n_links in 0usize..60) {
        let g = random_network(seed, 6, 9, n_links);
        let total: usize = g
            .schema()
            .relations()
            .map(|(r, _)| g.relation_link_count(r))
            .sum();
        prop_assert_eq!(total, g.n_links());

        let by_type: usize = (0..g.schema().n_object_types())
            .map(|i| g.objects_of_type(ObjectTypeId::from_index(i)).len())
            .sum();
        prop_assert_eq!(by_type, g.n_objects());

        let stats = NetworkStats::of(&g);
        prop_assert_eq!(stats.n_objects, g.n_objects());
        prop_assert_eq!(stats.n_links, g.n_links());
    }

    /// V_X from the attribute table matches a direct has_observations scan.
    #[test]
    fn observed_sets_are_consistent(seed in any::<u64>()) {
        let g = random_network(seed, 10, 10, 30);
        for (a, _) in g.schema().attributes() {
            let table = g.attribute(a);
            let vx = table.objects_with_observations();
            for v in g.objects() {
                prop_assert_eq!(table.has_observations(v), vx.contains(&v));
            }
        }
    }

    /// The overflow-adjacency tentpole property: a delta interleaving
    /// old-source, new-source, old→new, and staged→staged links appends
    /// into base CSR + overflow segments; its serialization — and its
    /// [`HinGraph::compact`]ed form — must be byte-identical to ONE
    /// from-scratch build of the same insertion history, and the live
    /// (non-compacted) adjacency must agree with the in-CSR on the link
    /// multiset.
    #[test]
    fn append_then_compact_is_byte_identical_to_rebuild(
        seed in any::<u64>(),
        n_base in 2usize..10,
        n_new in 1usize..5,
        n_links in 0usize..50,
    ) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut s = Schema::new();
        let ta = s.add_object_type("A");
        let tb = s.add_object_type("B");
        let ab = s.add_relation("ab", ta, tb);
        let ba = s.add_relation("ba", tb, ta);
        let aa = s.add_relation("aa", ta, ta);
        let schema = s.clone();
        // The relation joining a (source type, target type) pair, if any.
        let rel_for = |src: ObjectTypeId, tgt: ObjectTypeId| -> Option<RelationId> {
            if src == ta && tgt == tb { Some(ab) }
            else if src == tb && tgt == ta { Some(ba) }
            else if src == ta && tgt == ta { Some(aa) }
            else { None }
        };

        // One shared insertion history: object list (type, appended phase)
        // and link list (source, target, weight), split into a base prefix
        // and a delta suffix.
        let types: Vec<ObjectTypeId> = (0..n_base + n_new)
            .map(|_| if rng.gen_bool(0.5) { ta } else { tb })
            .collect();
        let mut base_links: Vec<(usize, usize, RelationId, f64)> = Vec::new();
        let mut delta_links: Vec<(usize, usize, RelationId, f64)> = Vec::new();
        for i in 0..n_links {
            // The delta phase may link *any* pair of objects — old→old,
            // old→new, new→old, staged→staged; the base phase only links
            // base objects.
            let is_delta = i % 2 == 1;
            let pool = if is_delta { n_base + n_new } else { n_base };
            let src = rng.gen_range(0..pool);
            let tgt = rng.gen_range(0..pool);
            if let Some(r) = rel_for(types[src], types[tgt]) {
                let w = rng.gen_range(0.1..4.0);
                if is_delta {
                    delta_links.push((src, tgt, r, w));
                } else {
                    base_links.push((src, tgt, r, w));
                }
            }
        }

        // Build the base, stage + append the delta.
        let mut b = HinBuilder::new(schema.clone());
        for (i, &t) in types[..n_base].iter().enumerate() {
            b.add_object(t, format!("v{i}"));
        }
        for &(src, tgt, r, w) in &base_links {
            b.add_link(ObjectId(src as u32), ObjectId(tgt as u32), r, w).unwrap();
        }
        let mut grown = b.build().unwrap();
        let mut d = GraphDelta::new(&grown);
        for (i, &t) in types[n_base..].iter().enumerate() {
            d.add_object(t, format!("v{}", n_base + i));
        }
        for &(src, tgt, r, w) in &delta_links {
            d.add_link(ObjectId(src as u32), ObjectId(tgt as u32), r, w).unwrap();
        }
        grown.append(d).unwrap();

        // The same history in one sitting.
        let mut b = HinBuilder::new(schema);
        for (i, &t) in types.iter().enumerate() {
            b.add_object(t, format!("v{i}"));
        }
        for &(src, tgt, r, w) in base_links.iter().chain(&delta_links) {
            b.add_link(ObjectId(src as u32), ObjectId(tgt as u32), r, w).unwrap();
        }
        let fresh = b.build().unwrap();

        let fresh_bytes = {
            let mut out = Vec::new();
            fresh.to_bytes(&mut out);
            out
        };
        let live_bytes = {
            let mut out = Vec::new();
            grown.to_bytes(&mut out);
            out
        };
        prop_assert_eq!(&live_bytes, &fresh_bytes,
            "seed {}: overflow graph must serialize like the rebuild", seed);

        // Live accessors (pre-compaction) agree with the in-CSR multiset
        // and the cached aggregates.
        prop_assert_eq!(grown.n_links(), base_links.len() + delta_links.len());
        let mut out_view: Vec<(u32, u32, u16)> = grown
            .iter_links()
            .map(|(src, l)| (src.0, l.endpoint.0, l.relation.0))
            .collect();
        let mut in_view: Vec<(u32, u32, u16)> = grown
            .objects()
            .flat_map(|v| {
                grown
                    .in_links(v)
                    .iter()
                    .map(move |l| (l.endpoint.0, v.0, l.relation.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        out_view.sort_unstable();
        in_view.sort_unstable();
        prop_assert_eq!(out_view, in_view);
        for (r, _) in grown.schema().relations() {
            let scan: f64 = grown
                .iter_links()
                .filter(|(_, l)| l.relation == r)
                .map(|(_, l)| l.weight)
                .sum();
            prop_assert!((grown.relation_total_weight(r) - scan).abs() < 1e-9);
            for v in grown.objects() {
                let w: f64 = grown
                    .out_links_for_relation(v, r)
                    .map(|l| l.weight)
                    .sum();
                prop_assert!((grown.out_weight(v, r) - w).abs() < 1e-12);
            }
        }

        // Compaction drains the overflow without changing the bytes, and
        // per-object link order is exactly the live traversal order.
        let live_order: Vec<Vec<(u32, u16)>> = grown
            .objects()
            .map(|v| grown.out_links(v).map(|l| (l.endpoint.0, l.relation.0)).collect())
            .collect();
        grown.compact();
        prop_assert!(!grown.has_overflow());
        let compacted_order: Vec<Vec<(u32, u16)>> = grown
            .objects()
            .map(|v| grown.out_links(v).map(|l| (l.endpoint.0, l.relation.0)).collect())
            .collect();
        prop_assert_eq!(live_order, compacted_order);
        let mut again = Vec::new();
        grown.to_bytes(&mut again);
        prop_assert_eq!(&again, &fresh_bytes);
    }
}
