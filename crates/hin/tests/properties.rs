//! Property-based tests for the HIN substrate: random networks always
//! produce consistent CSR adjacency and attribute tables.

use genclus_hin::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// Builds a random 2-type network from a seed and size parameters.
fn random_network(seed: u64, n_a: usize, n_b: usize, n_links: usize) -> HinGraph {
    let mut rng = genclus_stats::seeded_rng(seed);
    let mut s = Schema::new();
    let ta = s.add_object_type("A");
    let tb = s.add_object_type("B");
    let ab = s.add_relation("ab", ta, tb);
    let ba = s.add_relation("ba", tb, ta);
    let aa = s.add_relation("aa", ta, ta);
    let text = s.add_categorical_attribute("text", 16);
    let num = s.add_numerical_attribute("num");
    let mut b = HinBuilder::new(s);
    let a_ids: Vec<_> = (0..n_a)
        .map(|i| b.add_object(ta, format!("a{i}")))
        .collect();
    let b_ids: Vec<_> = (0..n_b)
        .map(|i| b.add_object(tb, format!("b{i}")))
        .collect();
    for _ in 0..n_links {
        let src = a_ids[rng.gen_range(0..n_a)];
        match rng.gen_range(0..3u8) {
            0 => {
                let dst = b_ids[rng.gen_range(0..n_b)];
                b.add_link(src, dst, ab, rng.gen_range(0.1..5.0)).unwrap();
            }
            1 => {
                let s2 = b_ids[rng.gen_range(0..n_b)];
                b.add_link(s2, src, ba, rng.gen_range(0.1..5.0)).unwrap();
            }
            _ => {
                let dst = a_ids[rng.gen_range(0..n_a)];
                b.add_link(src, dst, aa, 1.0).unwrap();
            }
        }
    }
    for &v in &a_ids {
        if rng.gen_bool(0.5) {
            b.add_term_count(v, text, rng.gen_range(0..16), rng.gen_range(1.0..4.0))
                .unwrap();
        }
    }
    for &v in &b_ids {
        if rng.gen_bool(0.5) {
            b.add_numeric(v, num, rng.gen_range(-10.0..10.0)).unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Out-CSR and in-CSR contain exactly the same multiset of links.
    #[test]
    fn in_and_out_adjacency_agree(
        seed in any::<u64>(),
        n_a in 1usize..20,
        n_b in 1usize..20,
        n_links in 0usize..100,
    ) {
        let g = random_network(seed, n_a, n_b, n_links);
        prop_assert_eq!(g.n_links(), n_links);

        let mut out_view: Vec<(u32, u32, u16)> = g
            .iter_links()
            .map(|(src, l)| (src.0, l.endpoint.0, l.relation.0))
            .collect();
        let mut in_view: Vec<(u32, u32, u16)> = g
            .objects()
            .flat_map(|v| {
                g.in_links(v)
                    .iter()
                    .map(move |l| (l.endpoint.0, v.0, l.relation.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        out_view.sort_unstable();
        in_view.sort_unstable();
        prop_assert_eq!(out_view, in_view);
    }

    /// Relation endpoint types always satisfy the schema after building.
    #[test]
    fn links_respect_schema(seed in any::<u64>(), n_links in 0usize..60) {
        let g = random_network(seed, 8, 8, n_links);
        for (src, l) in g.iter_links() {
            let def = g.schema().relation(l.relation);
            prop_assert_eq!(g.object_type(src), def.source);
            prop_assert_eq!(g.object_type(l.endpoint), def.target);
            prop_assert!(l.weight > 0.0);
        }
    }

    /// Per-relation counters agree with a full scan, and type partitions
    /// cover every object exactly once.
    #[test]
    fn accounting_is_consistent(seed in any::<u64>(), n_links in 0usize..60) {
        let g = random_network(seed, 6, 9, n_links);
        let total: usize = g
            .schema()
            .relations()
            .map(|(r, _)| g.relation_link_count(r))
            .sum();
        prop_assert_eq!(total, g.n_links());

        let by_type: usize = (0..g.schema().n_object_types())
            .map(|i| g.objects_of_type(ObjectTypeId::from_index(i)).len())
            .sum();
        prop_assert_eq!(by_type, g.n_objects());

        let stats = NetworkStats::of(&g);
        prop_assert_eq!(stats.n_objects, g.n_objects());
        prop_assert_eq!(stats.n_links, g.n_links());
    }

    /// V_X from the attribute table matches a direct has_observations scan.
    #[test]
    fn observed_sets_are_consistent(seed in any::<u64>()) {
        let g = random_network(seed, 10, 10, 30);
        for (a, _) in g.schema().attributes() {
            let table = g.attribute(a);
            let vx = table.objects_with_observations();
            for v in g.objects() {
                prop_assert_eq!(table.has_observations(v), vx.contains(&v));
            }
        }
    }
}
