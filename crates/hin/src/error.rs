//! Error type for network construction and attribute access.

use crate::ids::{AttributeId, ObjectId, ObjectTypeId, RelationId};

/// Everything that can go wrong while building or querying a HIN.
#[derive(Debug, Clone, PartialEq)]
pub enum HinError {
    /// An object id referenced an object that was never added.
    UnknownObject(ObjectId),
    /// A relation id outside the schema.
    UnknownRelation(RelationId),
    /// An attribute id outside the schema.
    UnknownAttribute(AttributeId),
    /// A link's endpoint types contradict the relation definition.
    EndpointTypeMismatch {
        /// Offending relation.
        relation: RelationId,
        /// Type the schema requires (source, target).
        expected: (ObjectTypeId, ObjectTypeId),
        /// Types actually supplied.
        got: (ObjectTypeId, ObjectTypeId),
    },
    /// Link weights must be positive and finite (§2.1 defines `W` as
    /// positive weights; zero-weight links should simply be omitted).
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A categorical observation used a term index outside the vocabulary.
    TermOutOfRange {
        /// Offending attribute.
        attribute: AttributeId,
        /// Offending term index.
        term: usize,
        /// Size of the declared vocabulary.
        vocab_size: usize,
    },
    /// An observation was supplied for the wrong attribute kind (e.g. a term
    /// count on a numerical attribute).
    AttributeKindMismatch {
        /// Offending attribute.
        attribute: AttributeId,
        /// What the caller tried to store.
        expected: &'static str,
    },
    /// A numerical observation was not finite.
    NonFiniteObservation {
        /// Offending attribute.
        attribute: AttributeId,
    },
    /// A name lookup failed — the untrusted-input counterpart of
    /// [`crate::graph::HinGraph::object_by_name`] returning `None`.
    UnknownName(String),
    /// A [`crate::delta::GraphDelta`] was applied to a graph whose object
    /// count differs from the one it was created against.
    DeltaBaseMismatch {
        /// Object count the delta was created against.
        expected: usize,
        /// Object count of the graph it was applied to.
        got: usize,
    },
    /// A delta observation referenced an object that is not one of the
    /// delta's *new* objects. Links may originate at any existing object
    /// (old sources extend overflow segments), but observations are
    /// append-only rows of the new objects — retro-fitting attributes of
    /// served objects is out of the delta's scope.
    NotADeltaObject(ObjectId),
    /// A graph or delta would exceed the `u32` id/offset space (object
    /// count, link count, or name-arena byte length). The former `as u32`
    /// casts wrapped silently here; now construction fails loudly instead.
    CapacityExceeded {
        /// Which counter overflowed (e.g. `"objects"`, `"links"`).
        what: &'static str,
        /// The value that did not fit in `u32`.
        requested: usize,
    },
}

/// Narrows `requested` to `u32`, reporting a structured
/// [`HinError::CapacityExceeded`] instead of wrapping. Every id/offset
/// construction site in the builder, delta, and arena routes through here.
#[inline]
pub(crate) fn check_capacity(what: &'static str, requested: usize) -> Result<u32, HinError> {
    u32::try_from(requested).map_err(|_| HinError::CapacityExceeded { what, requested })
}

impl std::fmt::Display for HinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownObject(v) => write!(f, "unknown object {v}"),
            Self::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            Self::UnknownAttribute(a) => write!(f, "unknown attribute {a}"),
            Self::EndpointTypeMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "link endpoint types ({}, {}) do not match relation {relation} \
                 which requires ({}, {})",
                got.0, got.1, expected.0, expected.1
            ),
            Self::InvalidWeight { weight } => {
                write!(f, "link weight must be positive and finite, got {weight}")
            }
            Self::TermOutOfRange {
                attribute,
                term,
                vocab_size,
            } => write!(
                f,
                "term {term} out of range for attribute {attribute} with vocabulary size {vocab_size}"
            ),
            Self::AttributeKindMismatch {
                attribute,
                expected,
            } => write!(
                f,
                "attribute {attribute} cannot store a {expected} observation (wrong kind)"
            ),
            Self::NonFiniteObservation { attribute } => {
                write!(f, "non-finite observation for attribute {attribute}")
            }
            Self::UnknownName(name) => write!(f, "no object is named {name:?}"),
            Self::DeltaBaseMismatch { expected, got } => write!(
                f,
                "delta was created against a graph with {expected} objects, \
                 but applied to one with {got}"
            ),
            Self::NotADeltaObject(v) => write!(
                f,
                "{v} is not a new object of this delta (delta observations \
                 must belong to new objects)"
            ),
            Self::CapacityExceeded { what, requested } => write!(
                f,
                "{what} count {requested} exceeds the u32 id space \
                 (max {})",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for HinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = HinError::EndpointTypeMismatch {
            relation: RelationId(2),
            expected: (ObjectTypeId(0), ObjectTypeId(1)),
            got: (ObjectTypeId(1), ObjectTypeId(1)),
        };
        let msg = e.to_string();
        assert!(msg.contains("RelationId(2)"));
        assert!(msg.contains("requires"));

        let e = HinError::TermOutOfRange {
            attribute: AttributeId(0),
            term: 99,
            vocab_size: 10,
        };
        assert!(e.to_string().contains("term 99"));
    }

    #[test]
    fn capacity_check_pins_the_u32_boundary() {
        // The id space is exactly u32: the last representable count passes,
        // one past it surfaces the structured error (not a silent wrap).
        assert_eq!(check_capacity("objects", 0), Ok(0));
        assert_eq!(check_capacity("objects", u32::MAX as usize), Ok(u32::MAX));
        let e = check_capacity("objects", u32::MAX as usize + 1).unwrap_err();
        assert_eq!(
            e,
            HinError::CapacityExceeded {
                what: "objects",
                requested: u32::MAX as usize + 1,
            }
        );
        let msg = e.to_string();
        assert!(msg.contains("objects"));
        assert!(msg.contains("4294967296"), "requested count: {msg}");
        assert!(msg.contains("4294967295"), "u32::MAX ceiling: {msg}");
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(HinError::UnknownObject(ObjectId(5)));
        assert!(e.to_string().contains("ObjectId(5)"));
    }
}
