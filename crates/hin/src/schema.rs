//! Network schema: object types, relations, attribute declarations.
//!
//! The schema is the static type information of a HIN. Relations are
//! *directed* and typed on both endpoints; the paper's observation that a
//! relation `A R B` always has an inverse `B R⁻¹ A` is modelled by declaring
//! both directions explicitly (e.g. `write(A, P)` and `written_by(P, A)`),
//! exactly as the evaluation networks of §5.1 do — GenClus learns a separate
//! strength for each direction.

use crate::error::HinError;
use crate::ids::{AttributeId, ObjectTypeId, RelationId};

/// How an attribute's observations are distributed within one cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttributeKind {
    /// Text-like attribute: each observation is a term from a vocabulary of
    /// `vocab_size` entries; clusters are categorical distributions over the
    /// vocabulary (Eq. 3).
    Categorical {
        /// Number of distinct terms.
        vocab_size: usize,
    },
    /// Numerical attribute: each observation is a real value; clusters are
    /// Gaussians (Eq. 4).
    Numerical,
}

/// A declared attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Human-readable name (unique within a schema by convention, not
    /// enforced).
    pub name: String,
    /// Distributional kind.
    pub kind: AttributeKind,
}

/// A directed, typed relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDef {
    /// Human-readable name, e.g. `publish_in`.
    pub name: String,
    /// Required type of link sources.
    pub source: ObjectTypeId,
    /// Required type of link targets.
    pub target: ObjectTypeId,
}

/// The static type system of a network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    object_types: Vec<String>,
    relations: Vec<RelationDef>,
    attributes: Vec<AttributeDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an object type and returns its id.
    pub fn add_object_type(&mut self, name: impl Into<String>) -> ObjectTypeId {
        let id = ObjectTypeId::from_index(self.object_types.len());
        self.object_types.push(name.into());
        id
    }

    /// Declares a directed relation `source → target` and returns its id.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        source: ObjectTypeId,
        target: ObjectTypeId,
    ) -> RelationId {
        assert!(
            source.index() < self.object_types.len() && target.index() < self.object_types.len(),
            "relation endpoints must be declared object types"
        );
        let id = RelationId::from_index(self.relations.len());
        self.relations.push(RelationDef {
            name: name.into(),
            source,
            target,
        });
        id
    }

    /// Declares a categorical (text) attribute with the given vocabulary
    /// size.
    pub fn add_categorical_attribute(
        &mut self,
        name: impl Into<String>,
        vocab_size: usize,
    ) -> AttributeId {
        let id = AttributeId::from_index(self.attributes.len());
        self.attributes.push(AttributeDef {
            name: name.into(),
            kind: AttributeKind::Categorical { vocab_size },
        });
        id
    }

    /// Declares a numerical attribute.
    pub fn add_numerical_attribute(&mut self, name: impl Into<String>) -> AttributeId {
        let id = AttributeId::from_index(self.attributes.len());
        self.attributes.push(AttributeDef {
            name: name.into(),
            kind: AttributeKind::Numerical,
        });
        id
    }

    /// Number of object types.
    pub fn n_object_types(&self) -> usize {
        self.object_types.len()
    }

    /// Number of relations.
    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of declared attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Name of an object type.
    pub fn object_type_name(&self, t: ObjectTypeId) -> &str {
        &self.object_types[t.index()]
    }

    /// Definition of a relation.
    pub fn relation(&self, r: RelationId) -> &RelationDef {
        &self.relations[r.index()]
    }

    /// Definition of an attribute.
    pub fn attribute(&self, a: AttributeId) -> &AttributeDef {
        &self.attributes[a.index()]
    }

    /// Iterates over `(id, def)` for all relations.
    pub fn relations(&self) -> impl Iterator<Item = (RelationId, &RelationDef)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, d)| (RelationId::from_index(i), d))
    }

    /// Iterates over `(id, def)` for all attributes.
    pub fn attributes(&self) -> impl Iterator<Item = (AttributeId, &AttributeDef)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, d)| (AttributeId::from_index(i), d))
    }

    /// Looks up a relation id by name (linear scan; schemas are tiny).
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(RelationId::from_index)
    }

    /// Looks up an object type id by name.
    pub fn object_type_by_name(&self, name: &str) -> Option<ObjectTypeId> {
        self.object_types
            .iter()
            .position(|t| t == name)
            .map(ObjectTypeId::from_index)
    }

    /// Looks up an attribute id by name.
    pub fn attribute_by_name(&self, name: &str) -> Option<AttributeId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttributeId::from_index)
    }

    /// Validates that `r` is a declared relation.
    pub(crate) fn check_relation(&self, r: RelationId) -> Result<(), HinError> {
        if r.index() < self.relations.len() {
            Ok(())
        } else {
            Err(HinError::UnknownRelation(r))
        }
    }

    /// Validates that `a` is a declared attribute.
    pub(crate) fn check_attribute(&self, a: AttributeId) -> Result<(), HinError> {
        if a.index() < self.attributes.len() {
            Ok(())
        } else {
            Err(HinError::UnknownAttribute(a))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> (Schema, ObjectTypeId, ObjectTypeId) {
        let mut s = Schema::new();
        let a = s.add_object_type("author");
        let p = s.add_object_type("paper");
        (s, a, p)
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let (mut s, a, p) = toy_schema();
        assert_eq!(a, ObjectTypeId(0));
        assert_eq!(p, ObjectTypeId(1));
        let w = s.add_relation("write", a, p);
        let wb = s.add_relation("written_by", p, a);
        assert_eq!(w, RelationId(0));
        assert_eq!(wb, RelationId(1));
        assert_eq!(s.n_relations(), 2);
    }

    #[test]
    fn lookup_by_name() {
        let (mut s, a, p) = toy_schema();
        let w = s.add_relation("write", a, p);
        let text = s.add_categorical_attribute("text", 100);
        let temp = s.add_numerical_attribute("temperature");
        assert_eq!(s.relation_by_name("write"), Some(w));
        assert_eq!(s.relation_by_name("nope"), None);
        assert_eq!(s.object_type_by_name("paper"), Some(p));
        assert_eq!(s.attribute_by_name("text"), Some(text));
        assert_eq!(s.attribute_by_name("temperature"), Some(temp));
        assert_eq!(
            s.attribute(text).kind,
            AttributeKind::Categorical { vocab_size: 100 }
        );
        assert_eq!(s.attribute(temp).kind, AttributeKind::Numerical);
    }

    #[test]
    fn relation_endpoints_are_recorded() {
        let (mut s, a, p) = toy_schema();
        let w = s.add_relation("write", a, p);
        assert_eq!(s.relation(w).source, a);
        assert_eq!(s.relation(w).target, p);
        assert_eq!(s.relation(w).name, "write");
    }

    #[test]
    #[should_panic(expected = "declared object types")]
    fn relation_with_undeclared_type_panics() {
        let (mut s, a, _) = toy_schema();
        s.add_relation("bad", a, ObjectTypeId(99));
    }

    #[test]
    fn iterators_cover_all_entries() {
        let (mut s, a, p) = toy_schema();
        s.add_relation("write", a, p);
        s.add_relation("written_by", p, a);
        s.add_categorical_attribute("text", 10);
        assert_eq!(s.relations().count(), 2);
        assert_eq!(s.attributes().count(), 1);
    }
}
