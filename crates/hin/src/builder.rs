//! Validated network construction.
//!
//! [`HinBuilder`] is the only way to create a [`HinGraph`]. It checks every
//! link against the relation's endpoint types, every weight for positivity,
//! and every attribute observation against the declared kind and vocabulary,
//! so algorithm crates can index freely without re-validating.

use crate::arena::{NameArena, NameIndex};
use crate::attributes::{AttributeData, AttributeStore};
use crate::error::{check_capacity, HinError};
use crate::graph::{HinGraph, Link};
use crate::ids::{AttributeId, ObjectId, ObjectTypeId, RelationId};
use crate::schema::{AttributeKind, Schema};

/// Pending observation storage while building.
enum AttrBuilder {
    Categorical {
        vocab_size: usize,
        /// (object, term, count) triples in insertion order.
        entries: Vec<(ObjectId, u32, f64)>,
    },
    Numerical {
        entries: Vec<(ObjectId, f64)>,
    },
}

/// Incremental, validated builder for [`HinGraph`].
pub struct HinBuilder {
    schema: Schema,
    obj_types: Vec<ObjectTypeId>,
    /// Names are interned at `add_object` time — the builder never holds a
    /// per-object `String`.
    obj_names: NameArena,
    /// (source, link) pairs in insertion order.
    links: Vec<(ObjectId, Link)>,
    attrs: Vec<AttrBuilder>,
    /// First capacity overflow observed while adding (e.g. the name arena
    /// outgrowing `u32` addressing); surfaced as the `build()` error so the
    /// infallible `add_object` signature can stay.
    capacity_error: Option<HinError>,
}

impl HinBuilder {
    /// Starts building a network against `schema`.
    pub fn new(schema: Schema) -> Self {
        let attrs = schema
            .attributes()
            .map(|(_, def)| match def.kind {
                AttributeKind::Categorical { vocab_size } => AttrBuilder::Categorical {
                    vocab_size,
                    entries: Vec::new(),
                },
                AttributeKind::Numerical => AttrBuilder::Numerical {
                    entries: Vec::new(),
                },
            })
            .collect();
        Self {
            schema,
            obj_types: Vec::new(),
            obj_names: NameArena::new(),
            links: Vec::new(),
            attrs,
            capacity_error: None,
        }
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of objects added so far.
    pub fn n_objects(&self) -> usize {
        self.obj_types.len()
    }

    /// Adds an object of type `t` and returns its id. The name is interned
    /// into the builder's arena — no per-object `String` is allocated. A
    /// capacity overflow (id space or arena bytes outgrowing `u32`) is
    /// recorded and reported by [`Self::build`] as
    /// [`HinError::CapacityExceeded`].
    ///
    /// # Panics
    /// Panics if `t` is not a declared object type.
    pub fn add_object(&mut self, t: ObjectTypeId, name: impl AsRef<str>) -> ObjectId {
        assert!(
            t.index() < self.schema.n_object_types(),
            "undeclared object type {t}"
        );
        let id = ObjectId::from_index(self.obj_types.len());
        self.obj_types.push(t);
        if let Err(e) = self.obj_names.push(name.as_ref()) {
            self.capacity_error.get_or_insert(e);
        }
        id
    }

    fn check_object(&self, v: ObjectId) -> Result<(), HinError> {
        if v.index() < self.obj_types.len() {
            Ok(())
        } else {
            Err(HinError::UnknownObject(v))
        }
    }

    /// Adds a directed link `source → target` of relation `r` with weight
    /// `w`.
    pub fn add_link(
        &mut self,
        source: ObjectId,
        target: ObjectId,
        r: RelationId,
        weight: f64,
    ) -> Result<(), HinError> {
        self.check_object(source)?;
        self.check_object(target)?;
        self.schema.check_relation(r)?;
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(HinError::InvalidWeight { weight });
        }
        let def = self.schema.relation(r);
        let got = (
            self.obj_types[source.index()],
            self.obj_types[target.index()],
        );
        if got != (def.source, def.target) {
            return Err(HinError::EndpointTypeMismatch {
                relation: r,
                expected: (def.source, def.target),
                got,
            });
        }
        self.links.push((
            source,
            Link {
                endpoint: target,
                relation: r,
                weight,
            },
        ));
        Ok(())
    }

    /// Adds a pair of mutually inverse links (`r` forward, `r_inv` backward)
    /// with the same weight — the common pattern for the evaluation networks
    /// where every relation is declared together with its inverse.
    pub fn add_link_pair(
        &mut self,
        source: ObjectId,
        target: ObjectId,
        r: RelationId,
        r_inv: RelationId,
        weight: f64,
    ) -> Result<(), HinError> {
        self.add_link(source, target, r, weight)?;
        self.add_link(target, source, r_inv, weight)
    }

    /// Records `count` occurrences of `term` for object `v` under categorical
    /// attribute `a`. Repeated calls for the same `(v, term)` accumulate.
    pub fn add_term_count(
        &mut self,
        v: ObjectId,
        a: AttributeId,
        term: u32,
        count: f64,
    ) -> Result<(), HinError> {
        self.check_object(v)?;
        self.schema.check_attribute(a)?;
        if !(count > 0.0 && count.is_finite()) {
            return Err(HinError::NonFiniteObservation { attribute: a });
        }
        match &mut self.attrs[a.index()] {
            AttrBuilder::Categorical {
                vocab_size,
                entries,
            } => {
                if (term as usize) >= *vocab_size {
                    return Err(HinError::TermOutOfRange {
                        attribute: a,
                        term: term as usize,
                        vocab_size: *vocab_size,
                    });
                }
                entries.push((v, term, count));
                Ok(())
            }
            AttrBuilder::Numerical { .. } => Err(HinError::AttributeKindMismatch {
                attribute: a,
                expected: "term-count",
            }),
        }
    }

    /// Records one occurrence each for a slice of terms (a tokenized text).
    pub fn add_terms(
        &mut self,
        v: ObjectId,
        a: AttributeId,
        terms: &[u32],
    ) -> Result<(), HinError> {
        for &t in terms {
            self.add_term_count(v, a, t, 1.0)?;
        }
        Ok(())
    }

    /// Records one numerical observation of attribute `a` for object `v`.
    pub fn add_numeric(&mut self, v: ObjectId, a: AttributeId, value: f64) -> Result<(), HinError> {
        self.check_object(v)?;
        self.schema.check_attribute(a)?;
        if !value.is_finite() {
            return Err(HinError::NonFiniteObservation { attribute: a });
        }
        match &mut self.attrs[a.index()] {
            AttrBuilder::Numerical { entries } => {
                entries.push((v, value));
                Ok(())
            }
            AttrBuilder::Categorical { .. } => Err(HinError::AttributeKindMismatch {
                attribute: a,
                expected: "numerical",
            }),
        }
    }

    /// Finalizes the network: builds CSR out-/in-adjacency (counting sort by
    /// endpoint — O(|V| + |E|)), groups each out-link segment by relation and
    /// derives the per-relation indexes (sub-segment offsets, weighted
    /// degrees, global counts/weights — all O(|V|·|R| + |E|)), builds the
    /// name → id map, and densifies the attribute tables.
    pub fn build(self) -> Result<HinGraph, HinError> {
        if let Some(e) = self.capacity_error {
            return Err(e);
        }
        let n = self.obj_types.len();
        let n_rel = self.schema.n_relations();
        // Ids and CSR offsets are u32 on the wire and in memory; reject a
        // graph the layout cannot address instead of wrapping silently.
        check_capacity("objects", n)?;
        check_capacity("links", self.links.len())?;

        let (out_offsets, mut out_links) =
            build_csr(n, self.links.iter().map(|&(src, link)| (src, link)));
        let (in_offsets, in_links) = build_csr(
            n,
            self.links.iter().map(|&(src, link)| {
                (
                    link.endpoint,
                    Link {
                        endpoint: src,
                        relation: link.relation,
                        weight: link.weight,
                    },
                )
            }),
        );

        // Group every out segment by relation with a per-segment stable
        // counting sort (relation ids are small dense integers, so a
        // comparison sort would overshoot the documented O(|V|·|R| + |E|)
        // bound on high-degree hubs) and record the sub-segment boundaries
        // plus cached per-(object, relation) / per-relation weight totals.
        let stride = n_rel + 1;
        let mut out_rel_offsets = vec![0u32; n * stride];
        let mut out_rel_weight = vec![0.0f64; n * n_rel];
        let mut rel_counts = vec![0u32; n_rel];
        let mut rel_weights = vec![0.0f64; n_rel];
        let mut seg_weight = vec![0.0f64; n_rel];
        let mut cursor = vec![0u32; n_rel];
        let mut scratch: Vec<Link> = Vec::new();
        for v in 0..n {
            let lo = out_offsets[v] as usize;
            let hi = out_offsets[v + 1] as usize;
            let offsets = &mut out_rel_offsets[v * stride..(v + 1) * stride];
            // Pass 1: per-relation counts and weight sums of this segment.
            seg_weight.iter_mut().for_each(|w| *w = 0.0);
            cursor.iter_mut().for_each(|c| *c = 0);
            for link in &out_links[lo..hi] {
                let r = link.relation.index();
                cursor[r] += 1;
                seg_weight[r] += link.weight;
            }
            offsets[0] = lo as u32;
            for r in 0..n_rel {
                let count = cursor[r];
                offsets[r + 1] = offsets[r] + count;
                // Turn the count slot into this bucket's write cursor.
                cursor[r] = offsets[r];
                out_rel_weight[v * n_rel + r] = seg_weight[r];
                rel_counts[r] += count;
                rel_weights[r] += seg_weight[r];
            }
            // Pass 2: stable scatter into the relation buckets.
            scratch.clear();
            scratch.extend_from_slice(&out_links[lo..hi]);
            for link in &scratch {
                let slot = &mut cursor[link.relation.index()];
                out_links[*slot as usize] = *link;
                *slot += 1;
            }
        }

        let name_index = NameIndex::build(&self.obj_names);

        let mut tables = Vec::with_capacity(self.attrs.len());
        for ab in self.attrs {
            match ab {
                AttrBuilder::Categorical {
                    vocab_size,
                    entries,
                } => {
                    check_capacity("attribute observations", entries.len())?;
                    // Counting-sort the (object, term, count) triples into
                    // per-object CSR rows, then sort each row by term and
                    // merge duplicates in place (compacting towards the
                    // front) so downstream code sees each term at most once
                    // per object — all without a per-object allocation.
                    let (offsets, mut flat) = scatter_by_object(
                        n,
                        entries.len(),
                        entries.iter().map(|&(v, t, c)| (v, (t, c))),
                    );
                    let mut write = 0usize;
                    let mut merged_offsets = Vec::with_capacity(n + 1);
                    merged_offsets.push(0u32);
                    for v in 0..n {
                        let lo = offsets[v] as usize;
                        let hi = offsets[v + 1] as usize;
                        flat[lo..hi].sort_unstable_by_key(|&(t, _)| t);
                        let mut i = lo;
                        while i < hi {
                            let (t, mut c) = flat[i];
                            i += 1;
                            while i < hi && flat[i].0 == t {
                                c += flat[i].1;
                                i += 1;
                            }
                            flat[write] = (t, c);
                            write += 1;
                        }
                        merged_offsets.push(write as u32);
                    }
                    flat.truncate(write);
                    tables.push(AttributeData::Categorical {
                        vocab_size,
                        offsets: merged_offsets,
                        entries: flat,
                    });
                }
                AttrBuilder::Numerical { entries } => {
                    check_capacity("attribute observations", entries.len())?;
                    let (offsets, values) =
                        scatter_by_object(n, entries.len(), entries.iter().copied());
                    tables.push(AttributeData::Numerical { offsets, values });
                }
            }
        }

        Ok(HinGraph {
            schema: self.schema,
            obj_types: self.obj_types,
            obj_names: self.obj_names,
            out_offsets,
            out_links,
            in_offsets,
            in_links,
            attrs: AttributeStore { tables },
            name_index,
            out_rel_offsets,
            out_rel_weight,
            rel_counts,
            rel_weights,
            overflow: Default::default(),
        })
    }
}

/// Counting-sort CSR construction from `(bucket, link)` pairs.
fn build_csr(
    n: usize,
    pairs: impl Iterator<Item = (ObjectId, Link)> + Clone,
) -> (Vec<u32>, Vec<Link>) {
    let mut offsets = vec![0u32; n + 1];
    for (src, _) in pairs.clone() {
        offsets[src.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let total = offsets[n] as usize;
    let mut links = vec![
        Link {
            endpoint: ObjectId(0),
            relation: RelationId(0),
            weight: 0.0,
        };
        total
    ];
    let mut cursor = offsets.clone();
    for (src, link) in pairs {
        let pos = cursor[src.index()] as usize;
        links[pos] = link;
        cursor[src.index()] += 1;
    }
    (offsets, links)
}

/// Stable counting-sort scatter of `(object, payload)` pairs into flat CSR
/// rows — insertion order preserved within each object, no per-object
/// allocation.
fn scatter_by_object<T: Copy + Default>(
    n: usize,
    total: usize,
    pairs: impl Iterator<Item = (ObjectId, T)> + Clone,
) -> (Vec<u32>, Vec<T>) {
    let mut offsets = vec![0u32; n + 1];
    for (v, _) in pairs.clone() {
        offsets[v.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut flat = vec![T::default(); total];
    let mut cursor = offsets.clone();
    for (v, x) in pairs {
        let slot = &mut cursor[v.index()];
        flat[*slot as usize] = x;
        *slot += 1;
    }
    (offsets, flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> (
        Schema,
        ObjectTypeId,
        ObjectTypeId,
        RelationId,
        AttributeId,
        AttributeId,
    ) {
        let mut s = Schema::new();
        let sensor_t = s.add_object_type("temp_sensor");
        let sensor_p = s.add_object_type("precip_sensor");
        let knn = s.add_relation("tt", sensor_t, sensor_t);
        let temp = s.add_numerical_attribute("temperature");
        let text = s.add_categorical_attribute("tags", 4);
        (s, sensor_t, sensor_p, knn, temp, text)
    }

    #[test]
    fn rejects_endpoint_type_mismatch() {
        let (s, t, p, knn, _, _) = schema();
        let mut b = HinBuilder::new(s);
        let v_t = b.add_object(t, "t0");
        let v_p = b.add_object(p, "p0");
        let err = b.add_link(v_t, v_p, knn, 1.0).unwrap_err();
        assert!(matches!(err, HinError::EndpointTypeMismatch { .. }));
    }

    #[test]
    fn rejects_bad_weights() {
        let (s, t, _, knn, _, _) = schema();
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "t0");
        let v1 = b.add_object(t, "t1");
        assert!(matches!(
            b.add_link(v0, v1, knn, 0.0),
            Err(HinError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_link(v0, v1, knn, -1.0),
            Err(HinError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_link(v0, v1, knn, f64::NAN),
            Err(HinError::InvalidWeight { .. })
        ));
        assert!(b.add_link(v0, v1, knn, 0.5).is_ok());
    }

    #[test]
    fn rejects_unknown_object() {
        let (s, t, _, knn, _, _) = schema();
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "t0");
        let ghost = ObjectId(42);
        assert!(matches!(
            b.add_link(v0, ghost, knn, 1.0),
            Err(HinError::UnknownObject(_))
        ));
    }

    #[test]
    fn rejects_attribute_kind_confusion_and_bad_terms() {
        let (s, t, _, _, temp, text) = schema();
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "t0");
        assert!(matches!(
            b.add_term_count(v0, temp, 0, 1.0),
            Err(HinError::AttributeKindMismatch { .. })
        ));
        assert!(matches!(
            b.add_numeric(v0, text, 1.0),
            Err(HinError::AttributeKindMismatch { .. })
        ));
        assert!(matches!(
            b.add_term_count(v0, text, 99, 1.0),
            Err(HinError::TermOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_numeric(v0, temp, f64::INFINITY),
            Err(HinError::NonFiniteObservation { .. })
        ));
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let (s, t, _, _, _, text) = schema();
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "t0");
        b.add_terms(v0, text, &[2, 0, 2, 2]).unwrap();
        b.add_term_count(v0, text, 0, 3.0).unwrap();
        let g = b.build().unwrap();
        let counts = g.attribute(text).term_counts(v0);
        assert_eq!(counts, &[(0, 4.0), (2, 3.0)]);
    }

    #[test]
    fn csr_preserves_all_links() {
        let (s, t, _, knn, _, _) = schema();
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..5).map(|i| b.add_object(t, format!("t{i}"))).collect();
        // Star out of v0 plus a chain.
        for &v in &vs[1..] {
            b.add_link(vs[0], v, knn, 1.0).unwrap();
        }
        for w in vs.windows(2) {
            b.add_link(w[1], w[0], knn, 2.0).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(g.n_links(), 8);
        assert_eq!(g.out_links(vs[0]).count(), 4);
        // Chain links are v1→v0, v2→v1, v3→v2, v4→v3, so in(v0) = {v1}.
        let sources: Vec<_> = g.in_links(vs[0]).iter().map(|l| l.endpoint).collect();
        assert_eq!(sources, vec![vs[1]]);
        // Every link appears exactly once in each adjacency direction.
        let total_in: usize = (0..5).map(|i| g.in_links(vs[i]).len()).sum();
        assert_eq!(total_in, 8);
    }

    #[test]
    fn empty_network_builds() {
        let (s, ..) = schema();
        let g = HinBuilder::new(s).build().unwrap();
        assert_eq!(g.n_objects(), 0);
        assert_eq!(g.n_links(), 0);
    }

    #[test]
    fn out_segments_are_grouped_by_relation() {
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let r0 = s.add_relation("r0", t, t);
        let r1 = s.add_relation("r1", t, t);
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..4).map(|i| b.add_object(t, format!("v{i}"))).collect();
        // Interleave relations on purpose; build() must group them.
        b.add_link(vs[0], vs[1], r1, 1.0).unwrap();
        b.add_link(vs[0], vs[2], r0, 2.0).unwrap();
        b.add_link(vs[0], vs[3], r1, 3.0).unwrap();
        b.add_link(vs[0], vs[1], r0, 4.0).unwrap();
        let g = b.build().unwrap();
        let rels: Vec<_> = g.out_links(vs[0]).map(|l| l.relation).collect();
        assert_eq!(rels, vec![r0, r0, r1, r1]);
        // Stable grouping: insertion order preserved within each relation.
        let w: Vec<_> = g
            .out_links_for_relation(vs[0], r1)
            .map(|l| l.weight)
            .collect();
        assert_eq!(w, vec![1.0, 3.0]);
        assert_eq!(g.out_weight(vs[0], r0), 6.0);
        assert_eq!(g.relation_total_weight(r1), 4.0);
    }

    #[test]
    fn duplicate_names_resolve_to_the_first_object() {
        let (s, t, ..) = schema();
        let mut b = HinBuilder::new(s);
        let first = b.add_object(t, "twin");
        let _second = b.add_object(t, "twin");
        let g = b.build().unwrap();
        assert_eq!(g.object_by_name("twin"), Some(first));
    }
}
