//! The heterogeneous network: an immutable base CSR plus overflow segments.
//!
//! [`HinGraph`] stores objects with their types and names, directed typed
//! links in CSR form (both out-link and in-link adjacency are materialized at
//! build time), and the attribute observation tables. All algorithm crates
//! treat it as read-only shared state — it is `Sync` and can be borrowed by
//! scoped worker threads during the parallel E-step.
//!
//! Beyond the plain adjacency, the builder materializes **per-relation
//! indexes** so the algorithm crates never scan `|E|` links for per-relation
//! aggregates:
//!
//! * each object's out-link segment is grouped by relation, with a
//!   `(|V| × (|R|+1))` offset table addressing the sub-segments — see
//!   [`HinGraph::out_links_for_relation`] / [`HinGraph::out_relation_segments`];
//! * weighted out-degrees per `(object, relation)` are cached
//!   ([`HinGraph::out_weight`] is O(1));
//! * global per-relation link counts and weight totals are cached
//!   ([`HinGraph::relation_link_count`] / [`HinGraph::relation_total_weight`]
//!   are O(1));
//! * a name → id map makes [`HinGraph::object_by_name`] O(1).
//!
//! # Segmented out-adjacency (base CSR + overflow)
//!
//! The out-adjacency is **segmented** so the graph can grow without
//! rewriting existing segments: the canonical base CSR (`out_links` /
//! `out_offsets` / `out_rel_offsets`) is immutable once built, and each
//! `(source, relation)` pair may additionally own an **overflow segment**
//! ([`OverflowAdjacency`]) holding links appended after the source's base
//! segment was laid out — this is how [`crate::delta::GraphDelta`] attaches
//! links that *originate at a pre-existing object* without shifting every
//! later CSR segment. The canonical link order of a pair is its base
//! sub-segment followed by its overflow segment, both in insertion order;
//! every accessor below traverses base + overflow in exactly that order, so
//! algorithms see the same link sequence a from-scratch rebuild would
//! produce (the EM kernels and strength statistics are bit-identical either
//! way). [`HinGraph::compact`] folds the overflow back into a fresh
//! canonical CSR — `O(|V|·|R| + |E|)`, triggered by the serving layer at
//! refresh/save time — and the byte codec serializes the compacted form
//! whether or not `compact` ran, so snapshots never contain overflow.

use crate::arena::{NameArena, NameIndex};
use crate::attributes::{AttributeData, AttributeStore};
use crate::ids::{AttributeId, ObjectId, ObjectTypeId, RelationId};
use crate::schema::Schema;
use std::collections::HashMap;

/// Per-source, per-relation overflow segments of the out-adjacency.
///
/// Sources are registered lazily (only objects that actually received
/// overflow links pay anything); each registered source owns **one**
/// `Vec<Link>` holding all of its overflow links segmented by relation
/// (relation-ascending, insertion order within a relation), plus a row of
/// per-relation counts that locates the sub-segments. The former layout —
/// one `Vec<Link>` per `(source, relation)` — allocated `|R|` vectors per
/// touched source even for relations that never overflow; this one
/// allocates exactly one. See the module docs for how the segments compose
/// with the base CSR.
#[derive(Debug, Clone, Default)]
pub(crate) struct OverflowAdjacency {
    /// Source object index → row index into `rows` / `counts`.
    slots: HashMap<u32, u32>,
    /// One segmented link vector per registered source.
    rows: Vec<Vec<Link>>,
    /// Per-`(source, relation)` sub-segment lengths, stride `|R|`.
    counts: Vec<u32>,
    /// Relation count (the `counts` stride).
    n_rel: usize,
    /// Total overflow links across all sources.
    n_links: usize,
}

/// Borrowed view of one source's overflow links, segmented by relation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OverflowSegments<'a> {
    /// All overflow links of the source, relation-ascending.
    links: &'a [Link],
    /// Per-relation sub-segment lengths (`|R|` entries).
    counts: &'a [u32],
}

impl<'a> OverflowSegments<'a> {
    /// Total overflow links of the source.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.links.len()
    }

    /// The sub-segment of relation `r` (prefix-sum lookup; `|R|` is small).
    #[inline]
    pub(crate) fn relation(&self, r: usize) -> &'a [Link] {
        let lo: u32 = self.counts[..r].iter().sum();
        let hi = lo + self.counts[r];
        &self.links[lo as usize..hi as usize]
    }
}

impl OverflowAdjacency {
    /// Whether any overflow segment exists.
    pub(crate) fn is_empty(&self) -> bool {
        self.n_links == 0
    }

    /// Total overflow links.
    pub(crate) fn n_links(&self) -> usize {
        self.n_links
    }

    /// The segmented overflow view of source `v`, if it has any links.
    pub(crate) fn for_source(&self, v: usize) -> Option<OverflowSegments<'_>> {
        self.slots.get(&(v as u32)).map(|&s| {
            let s = s as usize;
            OverflowSegments {
                links: &self.rows[s],
                counts: &self.counts[s * self.n_rel..(s + 1) * self.n_rel],
            }
        })
    }

    /// Appends one link to source `v`'s overflow sub-segment for its
    /// relation (inserted at the sub-segment's end to keep the row in
    /// canonical relation-ascending order).
    pub(crate) fn push(&mut self, v: usize, n_rel: usize, link: Link) {
        debug_assert!(self.rows.is_empty() || self.n_rel == n_rel);
        self.n_rel = n_rel;
        let slot = *self.slots.entry(v as u32).or_insert_with(|| {
            self.rows.push(Vec::new());
            self.counts.resize(self.counts.len() + n_rel, 0);
            (self.rows.len() - 1) as u32
        }) as usize;
        let r = link.relation.index();
        let counts = &self.counts[slot * n_rel..(slot + 1) * n_rel];
        let pos: u32 = counts[..=r].iter().sum();
        self.rows[slot].insert(pos as usize, link);
        self.counts[slot * n_rel + r] += 1;
        self.n_links += 1;
    }
}

/// One directed link as seen from one side of the adjacency.
///
/// In the out-link CSR, `endpoint` is the link *target*; in the in-link CSR
/// it is the link *source*. `relation` and `weight` are the link's type
/// `φ(e)` and weight `w(e)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// The other endpoint.
    pub endpoint: ObjectId,
    /// Link type.
    pub relation: RelationId,
    /// Positive weight `w(e)`.
    pub weight: f64,
}

/// An immutable heterogeneous information network.
///
/// Constructed through [`crate::builder::HinBuilder`], which validates the
/// schema constraints; the graph itself therefore never re-checks them.
#[derive(Debug, Clone)]
pub struct HinGraph {
    pub(crate) schema: Schema,
    pub(crate) obj_types: Vec<ObjectTypeId>,
    /// Interned object names: one contiguous byte arena, `u32`-addressed
    /// (see [`crate::arena`] for the invariants).
    pub(crate) obj_names: NameArena,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_links: Vec<Link>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_links: Vec<Link>,
    pub(crate) attrs: AttributeStore,
    /// First-registration name → object index (ties resolved towards the
    /// earliest object, matching a forward linear scan). Keys live in
    /// `obj_names`; the index stores only ids.
    pub(crate) name_index: NameIndex,
    /// Per-relation sub-segment boundaries of each object's out-link
    /// segment: row `v` (stride `|R|+1`) holds absolute indexes into
    /// `out_links`, so relation `r`'s links of `v` are
    /// `out_links[out_rel_offsets[v·(|R|+1)+r] .. out_rel_offsets[v·(|R|+1)+r+1]]`.
    /// Requires `out_links` segments to be grouped by relation (the builder
    /// guarantees this).
    pub(crate) out_rel_offsets: Vec<u32>,
    /// Cached `Σ w(e)` over out-links of `(v, r)`, stride `|R|`.
    pub(crate) out_rel_weight: Vec<f64>,
    /// Cached number of links per relation.
    pub(crate) rel_counts: Vec<u32>,
    /// Cached `Σ w(e)` per relation.
    pub(crate) rel_weights: Vec<f64>,
    /// Out-link overflow segments for sources whose base CSR segment was
    /// already laid out when the link arrived (see the module docs). Empty
    /// on freshly built or decoded graphs.
    pub(crate) overflow: OverflowAdjacency,
}

impl HinGraph {
    /// The schema this network was built against.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of objects `|V|`.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.obj_types.len()
    }

    /// Number of directed links `|E|` (base CSR + overflow).
    #[inline]
    pub fn n_links(&self) -> usize {
        self.out_links.len() + self.overflow.n_links()
    }

    /// Whether any out-link lives in an overflow segment rather than the
    /// base CSR (i.e. [`Self::compact`] would do work).
    #[inline]
    pub fn has_overflow(&self) -> bool {
        !self.overflow.is_empty()
    }

    /// Number of out-links currently held in overflow segments.
    #[inline]
    pub fn n_overflow_links(&self) -> usize {
        self.overflow.n_links()
    }

    /// Type of object `v`.
    #[inline]
    pub fn object_type(&self, v: ObjectId) -> ObjectTypeId {
        self.obj_types[v.index()]
    }

    /// Name of object `v` (may be empty).
    #[inline]
    pub fn object_name(&self, v: ObjectId) -> &str {
        self.obj_names.get(v.index())
    }

    /// The interned name arena (all names, one buffer).
    #[inline]
    pub fn name_arena(&self) -> &NameArena {
        &self.obj_names
    }

    /// Finds an object by name (O(1) hash lookup; with duplicate names the
    /// earliest-added object wins, as a forward scan would).
    pub fn object_by_name(&self, name: &str) -> Option<ObjectId> {
        self.name_index.get(&self.obj_names, name).map(ObjectId)
    }

    /// [`Self::object_by_name`] for untrusted input: a missing name becomes
    /// a [`crate::error::HinError::UnknownName`] carrying the offending
    /// string, so serving layers can reject bad requests with a useful
    /// message instead of panicking or hand-rolling the error.
    pub fn require_object_by_name(&self, name: &str) -> Result<ObjectId, crate::error::HinError> {
        self.object_by_name(name)
            .ok_or_else(|| crate::error::HinError::UnknownName(name.to_string()))
    }

    /// Out-links of `v`: all `e = ⟨v, u⟩`, the links driving `θ_v`'s
    /// neighbor term in the EM update (Eq. 10). Traverses base + overflow
    /// segments in canonical order (per relation ascending, base sub-segment
    /// before the relation's overflow segment). On an overflow-free graph —
    /// every freshly built or decoded one — this degrades to the plain
    /// contiguous base-CSR slice, with no per-relation walk and no overflow
    /// lookup (the whole-graph emptiness check is O(1)).
    #[inline]
    pub fn out_links(&self, v: ObjectId) -> impl Iterator<Item = &Link> {
        let (fast, n_rel): (&[Link], usize) = if self.overflow.is_empty() {
            let lo = self.out_offsets[v.index()] as usize;
            let hi = self.out_offsets[v.index() + 1] as usize;
            (&self.out_links[lo..hi], 0)
        } else {
            (&[], self.schema.n_relations())
        };
        let ovf = (n_rel > 0)
            .then(|| self.overflow.for_source(v.index()))
            .flatten();
        let stride = self.schema.n_relations() + 1;
        let row = v.index() * stride;
        fast.iter().chain((0..n_rel).flat_map(move |r| {
            let lo = self.out_rel_offsets[row + r] as usize;
            let hi = self.out_rel_offsets[row + r + 1] as usize;
            let extra: &[Link] = ovf.map_or(&[], |b| b.relation(r));
            self.out_links[lo..hi].iter().chain(extra)
        }))
    }

    /// Number of out-links of `v` (base + overflow).
    #[inline]
    pub fn out_degree(&self, v: ObjectId) -> usize {
        let base = (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize;
        base + self.overflow_for(v.index()).map_or(0, |b| b.len())
    }

    /// Whether `v` has at least one out-link (base or overflow).
    #[inline]
    pub fn has_out_links(&self, v: ObjectId) -> bool {
        self.out_offsets[v.index() + 1] > self.out_offsets[v.index()]
            || self.overflow_for(v.index()).is_some_and(|b| b.len() > 0)
    }

    /// In-links of `v`: all `e = ⟨u, v⟩`, with `endpoint` = `u`.
    #[inline]
    pub fn in_links(&self, v: ObjectId) -> &[Link] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_links[lo..hi]
    }

    /// Iterates over every object id.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.n_objects()).map(ObjectId::from_index)
    }

    /// All objects of type `t`, ascending.
    pub fn objects_of_type(&self, t: ObjectTypeId) -> Vec<ObjectId> {
        self.obj_types
            .iter()
            .enumerate()
            .filter(|&(_i, &ty)| ty == t)
            .map(|(i, &_ty)| ObjectId::from_index(i))
            .collect()
    }

    /// Iterates over every directed link as `(source, link)`, in canonical
    /// (base-then-overflow) order per source.
    pub fn iter_links(&self) -> impl Iterator<Item = (ObjectId, &Link)> {
        (0..self.n_objects()).flat_map(move |i| {
            let v = ObjectId::from_index(i);
            self.out_links(v).map(move |l| (v, l))
        })
    }

    /// Number of links of relation `r` (O(1), cached at build time).
    #[inline]
    pub fn relation_link_count(&self, r: RelationId) -> usize {
        self.rel_counts[r.index()] as usize
    }

    /// Sum of weights over links of relation `r` (O(1), cached at build
    /// time).
    #[inline]
    pub fn relation_total_weight(&self, r: RelationId) -> f64 {
        self.rel_weights[r.index()]
    }

    /// Out-links of `v` restricted to relation `r` (O(1) segment lookup),
    /// base sub-segment first, then the pair's overflow segment.
    #[inline]
    pub fn out_links_for_relation(
        &self,
        v: ObjectId,
        r: RelationId,
    ) -> impl Iterator<Item = &Link> {
        let stride = self.schema.n_relations() + 1;
        let base = v.index() * stride + r.index();
        let lo = self.out_rel_offsets[base] as usize;
        let hi = self.out_rel_offsets[base + 1] as usize;
        let extra: &[Link] = self
            .overflow_for(v.index())
            .map_or(&[], |b| b.relation(r.index()));
        self.out_links[lo..hi].iter().chain(extra)
    }

    /// `v`'s overflow segments, guarded by the O(1) graph-wide emptiness
    /// check so overflow-free graphs (every freshly built, decoded, or
    /// compacted one) never pay a hash lookup on the hot accessors.
    #[inline]
    fn overflow_for(&self, v: usize) -> Option<OverflowSegments<'_>> {
        if self.overflow.is_empty() {
            None
        } else {
            self.overflow.for_source(v)
        }
    }

    /// The non-empty per-relation chunks of `v`'s out-links, ascending by
    /// relation id. This is the grouped view the EM link term and the
    /// strength-learning statistics iterate, with no per-link branching.
    /// A relation with both a base sub-segment and an overflow segment
    /// yields **two consecutive chunks** with the same `RelationId` (base
    /// first) — consumers summing per link see exactly the canonical
    /// (compacted) link order, so their arithmetic is unchanged by
    /// compaction; consumers assuming one chunk per relation must merge
    /// consecutive equal ids.
    #[inline]
    pub fn out_relation_segments(
        &self,
        v: ObjectId,
    ) -> impl Iterator<Item = (RelationId, &[Link])> {
        let n_rel = self.schema.n_relations();
        let stride = n_rel + 1;
        let base = v.index() * stride;
        let offsets = &self.out_rel_offsets[base..base + stride];
        let ovf = self.overflow_for(v.index());
        (0..n_rel).flat_map(move |r| {
            let lo = offsets[r] as usize;
            let hi = offsets[r + 1] as usize;
            let extra: &[Link] = ovf.map_or(&[], |b| b.relation(r));
            let rel = RelationId::from_index(r);
            [(rel, &self.out_links[lo..hi]), (rel, extra)]
                .into_iter()
                .filter(|(_, s)| !s.is_empty())
        })
    }

    /// Folds the overflow segments back into a fresh canonical CSR
    /// (`O(|V|·|R| + |E|)`); a no-op when there is no overflow. Afterwards
    /// the graph is byte-identical to one rebuilt from scratch with the
    /// same link insertion history, and the hot per-relation accessors run
    /// branch-free again. The serving layer calls this at refresh/save
    /// time; long-running processes appending old-source links should call
    /// it whenever overflow grows past a few percent of the base CSR.
    pub fn compact(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let (out_offsets, out_links, out_rel_offsets, rel_weights) = self.compacted_out_arrays();
        self.out_offsets = out_offsets;
        self.out_links = out_links;
        self.out_rel_offsets = out_rel_offsets;
        self.rel_weights = rel_weights;
        self.overflow = OverflowAdjacency::default();
    }

    /// The canonical (compaction-result) out-CSR arrays: offsets, links,
    /// per-relation sub-segment offsets, and per-relation weight totals
    /// re-accumulated in the builder's order (ascending object, then
    /// relation) so the bytes match a from-scratch rebuild bit for bit.
    /// Shared by [`Self::compact`] and the byte codec, which serializes the
    /// compacted form without mutating `self`.
    pub(crate) fn compacted_out_arrays(&self) -> (Vec<u32>, Vec<Link>, Vec<u32>, Vec<f64>) {
        let n = self.n_objects();
        let n_rel = self.schema.n_relations();
        let stride = n_rel + 1;
        let mut links = Vec::with_capacity(self.n_links());
        let mut offsets = Vec::with_capacity(n + 1);
        let mut rel_offsets = Vec::with_capacity(n * stride);
        offsets.push(0u32);
        for v in 0..n {
            let ovf = self.overflow.for_source(v);
            rel_offsets.push(links.len() as u32);
            for r in 0..n_rel {
                let lo = self.out_rel_offsets[v * stride + r] as usize;
                let hi = self.out_rel_offsets[v * stride + r + 1] as usize;
                links.extend_from_slice(&self.out_links[lo..hi]);
                if let Some(b) = ovf {
                    links.extend_from_slice(b.relation(r));
                }
                rel_offsets.push(links.len() as u32);
            }
            offsets.push(links.len() as u32);
        }
        // Per-relation totals, re-accumulated in the builder's exact order
        // (the live `rel_weights` cache is numerically equal but may differ
        // in the last bits after old-source appends, because in-place `+=`
        // re-associates the float sum).
        let mut rel_weights = vec![0.0f64; n_rel];
        for v in 0..n {
            for (r, w) in rel_weights.iter_mut().enumerate() {
                *w += self.out_rel_weight[v * n_rel + r];
            }
        }
        (offsets, links, rel_offsets, rel_weights)
    }

    /// Observation table of attribute `a`.
    #[inline]
    pub fn attribute(&self, a: AttributeId) -> &AttributeData {
        self.attrs.table(a)
    }

    /// The full attribute store.
    #[inline]
    pub fn attributes(&self) -> &AttributeStore {
        &self.attrs
    }

    /// Weighted out-degree of `v` restricted to relation `r` (O(1), cached
    /// at build time).
    #[inline]
    pub fn out_weight(&self, v: ObjectId, r: RelationId) -> f64 {
        self.out_rel_weight[v.index() * self.schema.n_relations() + r.index()]
    }

    /// Total weighted degree (in + out, all relations) of `v`; used by
    /// modularity-based baselines.
    pub fn total_degree(&self, v: ObjectId) -> f64 {
        let out: f64 = self.out_links(v).map(|l| l.weight).sum();
        let inn: f64 = self.in_links(v).iter().map(|l| l.weight).sum();
        out + inn
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::HinBuilder;
    use crate::ids::ObjectId;
    use crate::schema::Schema;

    /// Two authors, two papers; a0 writes p0 & p1, a1 writes p1.
    fn toy() -> (crate::graph::HinGraph, [ObjectId; 4]) {
        let mut s = Schema::new();
        let author = s.add_object_type("author");
        let paper = s.add_object_type("paper");
        let write = s.add_relation("write", author, paper);
        let written_by = s.add_relation("written_by", paper, author);
        let mut b = HinBuilder::new(s);
        let a0 = b.add_object(author, "a0");
        let a1 = b.add_object(author, "a1");
        let p0 = b.add_object(paper, "p0");
        let p1 = b.add_object(paper, "p1");
        b.add_link(a0, p0, write, 1.0).unwrap();
        b.add_link(a0, p1, write, 2.0).unwrap();
        b.add_link(a1, p1, write, 1.0).unwrap();
        b.add_link(p0, a0, written_by, 1.0).unwrap();
        b.add_link(p1, a0, written_by, 2.0).unwrap();
        b.add_link(p1, a1, written_by, 1.0).unwrap();
        (b.build().unwrap(), [a0, a1, p0, p1])
    }

    #[test]
    fn adjacency_is_consistent() {
        let (g, [a0, a1, p0, p1]) = toy();
        assert_eq!(g.n_objects(), 4);
        assert_eq!(g.n_links(), 6);
        assert_eq!(g.out_links(a0).count(), 2);
        assert_eq!(g.out_degree(a0), 2);
        assert_eq!(g.out_links(a1).count(), 1);
        assert_eq!(g.in_links(p1).len(), 2);
        assert_eq!(g.in_links(a0).len(), 2);
        // Out-link targets of a0 are the two papers.
        let targets: Vec<_> = g.out_links(a0).map(|l| l.endpoint).collect();
        assert!(targets.contains(&p0) && targets.contains(&p1));
        // In-links mirror out-links: p1's in-links come from a0 and a1.
        let sources: Vec<_> = g.in_links(p1).iter().map(|l| l.endpoint).collect();
        assert!(sources.contains(&a0) && sources.contains(&a1));
    }

    #[test]
    fn per_relation_accounting() {
        let (g, _) = toy();
        let write = g.schema().relation_by_name("write").unwrap();
        let written_by = g.schema().relation_by_name("written_by").unwrap();
        assert_eq!(g.relation_link_count(write), 3);
        assert_eq!(g.relation_total_weight(write), 4.0);
        assert_eq!(g.relation_link_count(written_by), 3);
    }

    #[test]
    fn type_partition_and_names() {
        let (g, [a0, _, p0, _]) = toy();
        let author = g.schema().object_type_by_name("author").unwrap();
        let paper = g.schema().object_type_by_name("paper").unwrap();
        assert_eq!(g.objects_of_type(author).len(), 2);
        assert_eq!(g.objects_of_type(paper).len(), 2);
        assert_eq!(g.object_type(a0), author);
        assert_eq!(g.object_name(p0), "p0");
        assert_eq!(g.object_by_name("a0"), Some(a0));
        assert_eq!(g.object_by_name("ghost"), None);
    }

    #[test]
    fn iter_links_covers_everything_once() {
        let (g, _) = toy();
        assert_eq!(g.iter_links().count(), 6);
        let total: f64 = g.iter_links().map(|(_, l)| l.weight).sum();
        assert_eq!(total, 8.0);
    }

    #[test]
    fn degrees_and_weights() {
        let (g, [a0, ..]) = toy();
        let write = g.schema().relation_by_name("write").unwrap();
        assert_eq!(g.out_weight(a0, write), 3.0);
        // a0: out 1+2, in 1+2 → 6.
        assert_eq!(g.total_degree(a0), 6.0);
    }

    #[test]
    fn relation_segments_partition_the_out_links() {
        let (g, [a0, _, _, p1]) = toy();
        let write = g.schema().relation_by_name("write").unwrap();
        let written_by = g.schema().relation_by_name("written_by").unwrap();
        // a0 writes two papers; it has no written_by out-links.
        assert_eq!(g.out_links_for_relation(a0, write).count(), 2);
        assert_eq!(g.out_links_for_relation(a0, written_by).count(), 0);
        let segs: Vec<_> = g.out_relation_segments(a0).collect();
        assert_eq!(segs.len(), 1, "only non-empty segments are yielded");
        assert_eq!(segs[0].0, write);
        assert_eq!(segs[0].1.len(), 2);
        // p1 has two written_by out-links and nothing else.
        let segs: Vec<_> = g.out_relation_segments(p1).collect();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, written_by);
        assert!(segs[0].1.iter().eq(g.out_links(p1)));
        // Segments always concatenate back to the full out segment.
        for v in g.objects() {
            let total: usize = g.out_relation_segments(v).map(|(_, s)| s.len()).sum();
            assert_eq!(total, g.out_links(v).count());
            assert_eq!(total, g.out_degree(v));
        }
    }

    #[test]
    fn cached_weights_match_scans() {
        let (g, _) = toy();
        for (r, _) in g.schema().relations() {
            let count = g.iter_links().filter(|(_, l)| l.relation == r).count();
            let weight: f64 = g
                .iter_links()
                .filter(|(_, l)| l.relation == r)
                .map(|(_, l)| l.weight)
                .sum();
            assert_eq!(g.relation_link_count(r), count);
            assert!((g.relation_total_weight(r) - weight).abs() < 1e-12);
            for v in g.objects() {
                let w: f64 = g
                    .out_links(v)
                    .filter(|l| l.relation == r)
                    .map(|l| l.weight)
                    .sum();
                assert!((g.out_weight(v, r) - w).abs() < 1e-12);
            }
        }
    }
}
