//! Interned object-name storage: one contiguous byte arena per graph.
//!
//! At million-object scale the old layout — `Vec<String>` for names plus a
//! `HashMap<String, u32>` whose keys duplicate every byte — costs two heap
//! allocations and ~48 bytes of header per object before the first link is
//! stored. [`NameArena`] replaces both: all names live in **one** byte
//! buffer, addressed by a `u32` offset table, and [`NameIndex`] is an
//! open-addressing hash table whose slots are object ids — the arena itself
//! is the key storage, so the index adds exactly one `Vec<u32>`.
//!
//! # Invariants
//!
//! * `offsets.len() == n + 1` for `n` stored names; `offsets[0] == 0`,
//!   `offsets` is monotonically non-decreasing, and
//!   `offsets[n] as usize == bytes.len()`.
//! * Every span `bytes[offsets[i]..offsets[i+1]]` is valid UTF-8 (names
//!   enter through `&str`, and the codec re-validates each span on decode).
//! * Total byte length and name count both fit in `u32` — enforced via
//!   [`crate::error::HinError::CapacityExceeded`] on the construction paths.
//! * [`NameIndex`] maps a name to its **first** registration (duplicate
//!   names resolve to the earliest object id, matching a forward scan).
//! * The index holds at most one entry per distinct name; its capacity is
//!   sized once for the final object count (load factor ≤ ~0.7), so lookups
//!   stay O(1) and the build path performs one allocation total.

use crate::error::HinError;

/// All object names of one graph, concatenated: `bytes` + `u32` offsets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NameArena {
    bytes: Vec<u8>,
    /// `n + 1` entries; span `i` is `bytes[offsets[i] as usize..offsets[i+1] as usize]`.
    offsets: Vec<u32>,
}

impl NameArena {
    /// An empty arena (zero names).
    pub fn new() -> Self {
        NameArena {
            bytes: Vec::new(),
            offsets: vec![0],
        }
    }

    /// An empty arena pre-sized for `n_names` names totalling `n_bytes`
    /// bytes, so a bulk build performs no reallocation.
    pub fn with_capacity(n_names: usize, n_bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(n_names + 1);
        offsets.push(0);
        NameArena {
            bytes: Vec::with_capacity(n_bytes),
            offsets,
        }
    }

    /// Number of stored names.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no names are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total stored name bytes.
    #[inline]
    pub fn n_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Appends one name, returning its index. Errors if the arena would
    /// exceed `u32` addressing (byte length or name count).
    pub fn push(&mut self, name: &str) -> Result<u32, HinError> {
        let idx = crate::error::check_capacity("name-arena names", self.len())?;
        let end = self
            .bytes
            .len()
            .checked_add(name.len())
            .ok_or(HinError::CapacityExceeded {
                what: "name-arena bytes",
                requested: usize::MAX,
            })
            .and_then(|end| crate::error::check_capacity("name-arena bytes", end))?;
        self.bytes.extend_from_slice(name.as_bytes());
        self.offsets.push(end);
        Ok(idx)
    }

    /// The name at index `i`.
    ///
    /// Panics if `i` is out of range. The UTF-8 conversion cannot fail for
    /// arenas built through [`Self::push`] / the validating codec path.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        std::str::from_utf8(&self.bytes[lo..hi]).expect("arena spans are valid UTF-8")
    }

    /// The raw bytes of span `i` (no UTF-8 conversion).
    #[inline]
    fn span_bytes(&self, i: usize) -> &[u8] {
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Appends every name of `other` (the delta-merge bulk path): two
    /// `extend_from_slice` calls plus an offset rebase — no per-name work.
    pub fn extend_from(&mut self, other: &NameArena) -> Result<(), HinError> {
        crate::error::check_capacity("name-arena names", self.len() + other.len())?;
        let base = self
            .bytes
            .len()
            .checked_add(other.bytes.len())
            .ok_or(HinError::CapacityExceeded {
                what: "name-arena bytes",
                requested: usize::MAX,
            })
            .map(|_| self.bytes.len() as u32)?;
        crate::error::check_capacity("name-arena bytes", self.bytes.len() + other.bytes.len())?;
        self.bytes.extend_from_slice(&other.bytes);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| base + o));
        Ok(())
    }

    /// The contiguous name bytes (codec surface).
    #[inline]
    pub(crate) fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The `n + 1` offset table (codec surface).
    #[inline]
    pub(crate) fn raw_offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Rebuilds an arena from decoded parts, validating every invariant:
    /// monotone offsets starting at 0 and ending at `bytes.len()`, and
    /// per-span UTF-8 (whole-buffer validation is not enough — a span
    /// boundary could split a multi-byte sequence).
    pub(crate) fn from_raw_parts(bytes: Vec<u8>, offsets: Vec<u32>) -> Option<Self> {
        let (&first, &last) = (offsets.first()?, offsets.last()?);
        if first != 0 || last as usize != bytes.len() {
            return None;
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return None;
            }
            if std::str::from_utf8(&bytes[w[0] as usize..w[1] as usize]).is_err() {
                return None;
            }
        }
        Some(NameArena { bytes, offsets })
    }
}

/// Sentinel for an unoccupied [`NameIndex`] slot.
const EMPTY: u32 = u32::MAX;

/// Open-addressing name → object-id index over a [`NameArena`].
///
/// Slots hold object ids; key bytes live in the arena, so the index never
/// copies a name. Linear probing over a power-of-two table sized for load
/// factor ≤ ~0.7. First registration wins for duplicate names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NameIndex {
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

/// FNV-1a 64 over the name bytes (same function as the snapshot checksum,
/// re-implemented here to keep `genclus-hin` free of the stats dependency
/// direction).
#[inline]
fn hash_name(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl NameIndex {
    /// An index sized for `n` names (one allocation, never grown).
    pub fn with_capacity(n: usize) -> Self {
        // Load factor ≤ 0.7: table ≥ n / 0.7, rounded up to a power of two.
        let want = (n * 10).div_ceil(7).max(8);
        let cap = want.next_power_of_two();
        NameIndex {
            slots: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of distinct names indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `id` under the name at `arena` span `id` unless that name is
    /// already present (first registration wins). The caller guarantees the
    /// table was sized for the final name count.
    pub fn insert_first_wins(&mut self, arena: &NameArena, id: u32) {
        let key = arena.span_bytes(id as usize);
        let mut slot = hash_name(key) as usize & self.mask;
        loop {
            let occupant = self.slots[slot];
            if occupant == EMPTY {
                self.slots[slot] = id;
                self.len += 1;
                return;
            }
            if arena.span_bytes(occupant as usize) == key {
                return; // Earlier registration keeps the name.
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Ensures the table can absorb a growth to `total` names without
    /// exceeding the target load factor, rehashing the existing entries if
    /// needed (the append path calls this before inserting a delta's
    /// names). Rehashing preserves first-wins semantics because the index
    /// holds at most one id per distinct name.
    pub fn grow_for(&mut self, arena: &NameArena, total: usize) {
        let want = (total * 10).div_ceil(7).max(8);
        if want <= self.slots.len() {
            return;
        }
        let mut fresh = NameIndex::with_capacity(total);
        for &id in &self.slots {
            if id != EMPTY {
                fresh.insert_first_wins(arena, id);
            }
        }
        *self = fresh;
    }

    /// Builds a fresh index over every name in `arena`.
    pub fn build(arena: &NameArena) -> Self {
        let mut idx = NameIndex::with_capacity(arena.len());
        for i in 0..arena.len() {
            idx.insert_first_wins(arena, i as u32);
        }
        idx
    }

    /// Looks up `name`, returning the first-registered object id.
    pub fn get(&self, arena: &NameArena, name: &str) -> Option<u32> {
        let key = name.as_bytes();
        let mut slot = hash_name(key) as usize & self.mask;
        loop {
            let occupant = self.slots[slot];
            if occupant == EMPTY {
                return None;
            }
            if arena.span_bytes(occupant as usize) == key {
                return Some(occupant);
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut a = NameArena::new();
        assert!(a.is_empty());
        assert_eq!(a.push("alice").unwrap(), 0);
        assert_eq!(a.push("").unwrap(), 1);
        assert_eq!(a.push("böb").unwrap(), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(0), "alice");
        assert_eq!(a.get(1), "");
        assert_eq!(a.get(2), "böb");
        // "alice" (5) + "" (0) + "böb" (4: ö is two bytes).
        assert_eq!(a.n_bytes(), 9);
    }

    #[test]
    fn extend_from_rebases_offsets() {
        let mut a = NameArena::new();
        a.push("x").unwrap();
        let mut b = NameArena::new();
        b.push("yy").unwrap();
        b.push("zzz").unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(0), "x");
        assert_eq!(a.get(1), "yy");
        assert_eq!(a.get(2), "zzz");
    }

    #[test]
    fn from_raw_parts_validates() {
        // Happy path.
        let a = NameArena::from_raw_parts(b"abcd".to_vec(), vec![0, 2, 4]).unwrap();
        assert_eq!(a.get(0), "ab");
        assert_eq!(a.get(1), "cd");
        // Non-monotone offsets.
        assert!(NameArena::from_raw_parts(b"abcd".to_vec(), vec![0, 3, 2]).is_none());
        // Final offset disagrees with the byte length.
        assert!(NameArena::from_raw_parts(b"abcd".to_vec(), vec![0, 2, 3]).is_none());
        // Empty offsets table.
        assert!(NameArena::from_raw_parts(Vec::new(), Vec::new()).is_none());
        // A span boundary splitting a multi-byte UTF-8 sequence: "é" is
        // [0xc3, 0xa9]; cutting between the two bytes must be rejected even
        // though the whole buffer is valid UTF-8.
        let e = "é".as_bytes().to_vec();
        assert!(NameArena::from_raw_parts(e.clone(), vec![0, 1, 2]).is_none());
        assert!(NameArena::from_raw_parts(e, vec![0, 2]).is_some());
    }

    #[test]
    fn index_first_registration_wins() {
        let mut a = NameArena::new();
        for name in ["n0", "dup", "n2", "dup", "n4"] {
            a.push(name).unwrap();
        }
        let idx = NameIndex::build(&a);
        assert_eq!(idx.len(), 4, "duplicate indexed once");
        assert_eq!(idx.get(&a, "n0"), Some(0));
        assert_eq!(idx.get(&a, "dup"), Some(1), "earliest id wins");
        assert_eq!(idx.get(&a, "n4"), Some(4));
        assert_eq!(idx.get(&a, "ghost"), None);
    }

    #[test]
    fn index_handles_collisions_densely() {
        let mut a = NameArena::new();
        let n = 500usize;
        for i in 0..n {
            a.push(&format!("obj-{i}")).unwrap();
        }
        let idx = NameIndex::build(&a);
        assert_eq!(idx.len(), n);
        for i in 0..n {
            assert_eq!(idx.get(&a, &format!("obj-{i}")), Some(i as u32));
        }
        assert_eq!(idx.get(&a, "obj-500"), None);
    }
}
