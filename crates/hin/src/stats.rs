//! Descriptive network statistics.
//!
//! Examples and the experiment harness print these summaries so a reader can
//! verify a generated network matches the paper's description (object counts
//! per type, link counts per relation, attribute coverage).

use crate::graph::HinGraph;
use crate::ids::{AttributeId, ObjectTypeId, RelationId};

/// Summary of one object type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeStats {
    /// Type id.
    pub id: ObjectTypeId,
    /// Type name.
    pub name: String,
    /// Objects of this type.
    pub n_objects: usize,
}

/// Summary of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Relation id.
    pub id: RelationId,
    /// Relation name.
    pub name: String,
    /// Links of this relation.
    pub n_links: usize,
    /// Sum of link weights.
    pub total_weight: f64,
}

/// Summary of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeStats {
    /// Attribute id.
    pub id: AttributeId,
    /// Attribute name.
    pub name: String,
    /// Objects with ≥ 1 observation (`|V_X|`).
    pub n_observed_objects: usize,
    /// Total observation mass.
    pub n_observations: f64,
}

/// Full descriptive summary of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Total objects.
    pub n_objects: usize,
    /// Total directed links.
    pub n_links: usize,
    /// Per-type breakdown.
    pub types: Vec<TypeStats>,
    /// Per-relation breakdown.
    pub relations: Vec<RelationStats>,
    /// Per-attribute breakdown.
    pub attributes: Vec<AttributeStats>,
}

impl NetworkStats {
    /// Computes the summary for `g`.
    pub fn of(g: &HinGraph) -> Self {
        let mut type_counts = vec![0usize; g.schema().n_object_types()];
        for v in g.objects() {
            type_counts[g.object_type(v).index()] += 1;
        }
        let types = type_counts
            .into_iter()
            .enumerate()
            .map(|(i, n)| {
                let id = ObjectTypeId::from_index(i);
                TypeStats {
                    id,
                    name: g.schema().object_type_name(id).to_string(),
                    n_objects: n,
                }
            })
            .collect();

        let mut rel_counts = vec![(0usize, 0.0f64); g.schema().n_relations()];
        for (_, link) in g.iter_links() {
            let slot = &mut rel_counts[link.relation.index()];
            slot.0 += 1;
            slot.1 += link.weight;
        }
        let relations = rel_counts
            .into_iter()
            .enumerate()
            .map(|(i, (n, w))| {
                let id = RelationId::from_index(i);
                RelationStats {
                    id,
                    name: g.schema().relation(id).name.clone(),
                    n_links: n,
                    total_weight: w,
                }
            })
            .collect();

        let attributes = g
            .schema()
            .attributes()
            .map(|(id, def)| {
                let table = g.attribute(id);
                AttributeStats {
                    id,
                    name: def.name.clone(),
                    n_observed_objects: table.n_observed_objects(),
                    n_observations: table.n_observations(),
                }
            })
            .collect();

        Self {
            n_objects: g.n_objects(),
            n_links: g.n_links(),
            types,
            relations,
            attributes,
        }
    }
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "objects: {}   links: {}", self.n_objects, self.n_links)?;
        for t in &self.types {
            writeln!(f, "  type {:<16} {:>8} objects", t.name, t.n_objects)?;
        }
        for r in &self.relations {
            writeln!(
                f,
                "  rel  {:<16} {:>8} links (total weight {:.1})",
                r.name, r.n_links, r.total_weight
            )?;
        }
        for a in &self.attributes {
            writeln!(
                f,
                "  attr {:<16} {:>8} objects observed ({:.0} observations)",
                a.name, a.n_observed_objects, a.n_observations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HinBuilder;
    use crate::schema::Schema;

    #[test]
    fn stats_count_everything() {
        let mut s = Schema::new();
        let a = s.add_object_type("author");
        let p = s.add_object_type("paper");
        let write = s.add_relation("write", a, p);
        let text = s.add_categorical_attribute("text", 10);
        let score = s.add_numerical_attribute("score");
        let mut b = HinBuilder::new(s);
        let a0 = b.add_object(a, "a0");
        let p0 = b.add_object(p, "p0");
        let p1 = b.add_object(p, "p1");
        b.add_link(a0, p0, write, 1.0).unwrap();
        b.add_link(a0, p1, write, 2.0).unwrap();
        b.add_terms(p0, text, &[1, 2, 2]).unwrap();
        b.add_numeric(p0, score, 0.5).unwrap();
        b.add_numeric(p1, score, 1.5).unwrap();
        let g = b.build().unwrap();
        let st = NetworkStats::of(&g);
        assert_eq!(st.n_objects, 3);
        assert_eq!(st.n_links, 2);
        assert_eq!(st.types[0].n_objects, 1);
        assert_eq!(st.types[1].n_objects, 2);
        assert_eq!(st.relations[0].n_links, 2);
        assert_eq!(st.relations[0].total_weight, 3.0);
        assert_eq!(st.attributes[0].n_observed_objects, 1);
        assert_eq!(st.attributes[0].n_observations, 3.0);
        assert_eq!(st.attributes[1].n_observed_objects, 2);

        let text = st.to_string();
        assert!(text.contains("author"));
        assert!(text.contains("write"));
        assert!(text.contains("score"));
    }
}
