//! Incremental growth: appending new objects to a built network.
//!
//! Real attributed networks grow continuously; rebuilding the CSR from
//! scratch for every arriving object would make online fold-in (the
//! `genclus-serve` crate) quadratic over a stream. [`GraphDelta`] batches
//! new objects, their links, and their (possibly incomplete) attribute
//! observations, and [`HinGraph::append`] attaches them to the existing
//! arrays:
//!
//! * links originating at **new** objects grow the out-link CSR, the
//!   per-relation sub-segment index, and the cached per-`(object,
//!   relation)` weights by **appending rows** — existing objects' segments
//!   are untouched (`O(new objects · |R| + new links)`);
//! * links originating at **pre-existing** objects (old → old and
//!   old → new alike) land in the source's per-relation **overflow
//!   segments** (see `genclus_hin::graph`'s module docs): the base CSR
//!   stays immutable, every adjacency accessor traverses base + overflow
//!   in canonical order, and [`HinGraph::compact`] folds the overflow back
//!   into a canonical CSR whose bytes match a from-scratch rebuild;
//! * the in-link CSR is extended with one linear merge pass (a link may
//!   target *any* object, so old in-segments can grow) — a straight copy
//!   with no re-sort and no re-validation of existing links;
//! * attribute tables and the name → id map grow by appending rows.
//!
//! Observations remain restricted to **new** objects (retro-fitting
//! attribute rows of served objects is a model question, not a topology
//! one); link sources and targets may be any object that exists once the
//! delta applies.
//!
//! Validation is all-or-nothing: [`GraphDelta::add_link`] checks both
//! endpoint types eagerly (the delta snapshots the base graph's object
//! types), and [`HinGraph::append`] re-checks every pre-existing endpoint
//! against the live graph *before* mutating — so a failed append leaves
//! the graph exactly as it was, and a delta staged against a different
//! same-shaped graph cannot smuggle a type-invalid link in.

use crate::arena::NameArena;
use crate::attributes::AttributeData;
use crate::error::{check_capacity, HinError};
use crate::graph::{HinGraph, Link};
use crate::ids::{AttributeId, ObjectId, ObjectTypeId, RelationId};
use crate::schema::{AttributeKind, Schema};

/// A batch of new objects, links, and observations destined for an
/// existing [`HinGraph`].
///
/// Created against a specific graph ([`GraphDelta::new`]); object ids it
/// hands out continue that graph's id space, and [`HinGraph::append`]
/// rejects the delta if the graph has changed size in between.
#[derive(Debug, Clone)]
pub struct GraphDelta {
    schema: Schema,
    base_objects: usize,
    /// Object types of the base graph, snapshotted at [`GraphDelta::new`]
    /// so links from pre-existing sources validate eagerly.
    base_types: Vec<ObjectTypeId>,
    new_types: Vec<ObjectTypeId>,
    /// Names of the staged objects, interned into the delta's own arena —
    /// merged into the graph arena in one bulk copy at append time.
    new_names: NameArena,
    /// `(source, link)` pairs in insertion order; sources may be old or new.
    links: Vec<(ObjectId, Link)>,
    /// `(object, attribute, term, count)`; objects are new.
    cat_obs: Vec<(ObjectId, AttributeId, u32, f64)>,
    /// `(object, attribute, value)`; objects are new.
    num_obs: Vec<(ObjectId, AttributeId, f64)>,
    /// First capacity overflow observed while staging; surfaced by
    /// `append` so `add_object` can stay infallible.
    capacity_error: Option<HinError>,
}

impl GraphDelta {
    /// Starts an empty delta against `graph`.
    pub fn new(graph: &HinGraph) -> Self {
        Self {
            schema: graph.schema().clone(),
            base_objects: graph.n_objects(),
            base_types: graph.obj_types.clone(),
            new_types: Vec::new(),
            new_names: NameArena::new(),
            links: Vec::new(),
            cat_obs: Vec::new(),
            num_obs: Vec::new(),
            capacity_error: None,
        }
    }

    /// Starts an empty delta whose base is `graph` **with `applied`
    /// already counted** — the second staging window of a double-buffered
    /// refresh: while `applied` is being appended + re-fitted elsewhere,
    /// new arrivals keep staging here, their ids continuing past
    /// `applied`'s so they stay valid once the grown graph lands. Links
    /// staged here may therefore name base objects *and* `applied`'s
    /// objects (types are validated against `applied`'s staged types).
    ///
    /// Errors with [`HinError::DeltaBaseMismatch`] when `applied` was not
    /// staged against `graph` (wrong base size or schema).
    pub fn new_after(graph: &HinGraph, applied: &GraphDelta) -> Result<Self, HinError> {
        if applied.base_objects != graph.n_objects() || applied.schema != *graph.schema() {
            return Err(HinError::DeltaBaseMismatch {
                expected: applied.base_objects,
                got: graph.n_objects(),
            });
        }
        let mut base_types = graph.obj_types.clone();
        base_types.extend_from_slice(&applied.new_types);
        Ok(Self {
            schema: applied.schema.clone(),
            base_objects: base_types.len(),
            base_types,
            new_types: Vec::new(),
            new_names: NameArena::new(),
            links: Vec::new(),
            cat_obs: Vec::new(),
            num_obs: Vec::new(),
            capacity_error: None,
        })
    }

    /// Absorbs `next` — a window staged via [`Self::new_after`] on top of
    /// this delta — turning the two windows back into one delta against
    /// this delta's base. This is the failure path of a double-buffered
    /// refresh: when the re-fit of the first window dies, the second
    /// window's future base never materializes, and stacking restores a
    /// single delta that can be staged or retried as a whole. Ids need no
    /// rewriting: `next`'s objects were assigned ids continuing this
    /// delta's, which is exactly where they land in the merged delta.
    ///
    /// Errors with [`HinError::DeltaBaseMismatch`] when `next` was not
    /// staged directly on top of this delta.
    pub fn stack(&mut self, next: GraphDelta) -> Result<(), HinError> {
        let boundary = self.base_objects + self.new_types.len();
        if next.base_objects != boundary || next.schema != self.schema {
            return Err(HinError::DeltaBaseMismatch {
                expected: boundary,
                got: next.base_objects,
            });
        }
        self.new_types.extend(next.new_types);
        self.new_names.extend_from(&next.new_names)?;
        self.links.extend(next.links);
        self.cat_obs.extend(next.cat_obs);
        self.num_obs.extend(next.num_obs);
        if self.capacity_error.is_none() {
            self.capacity_error = next.capacity_error;
        }
        Ok(())
    }

    /// Number of new objects staged so far.
    pub fn n_new_objects(&self) -> usize {
        self.new_types.len()
    }

    /// Number of new links staged so far.
    pub fn n_new_links(&self) -> usize {
        self.links.len()
    }

    /// Object count of the graph this delta was created against — the id
    /// space the staged objects continue. A long-lived accumulator (e.g.
    /// the serving layer's refresh queue) can compare this against the live
    /// graph to detect staleness before attempting an append.
    pub fn base_objects(&self) -> usize {
        self.base_objects
    }

    /// Names of the staged objects, in id order (the first entry is object
    /// `base_objects()`, the second `base_objects() + 1`, …).
    pub fn new_object_names(&self) -> impl Iterator<Item = &str> {
        let arena = &self.new_names;
        (0..arena.len()).map(move |i| arena.get(i))
    }

    /// Types of the staged objects, in the same id order as
    /// [`Self::new_object_names`].
    pub fn new_object_types(&self) -> impl Iterator<Item = ObjectTypeId> + '_ {
        self.new_types.iter().copied()
    }

    /// The staged links as `(source, target, relation, weight)`, in
    /// insertion order. Read-only inspection for the serving layer's
    /// crash-recovery path: a replayed delta can be compared against the
    /// uninterrupted original link-for-link, and a recovery log can report
    /// exactly what was rebuilt.
    pub fn staged_links(&self) -> impl Iterator<Item = (ObjectId, ObjectId, RelationId, f64)> + '_ {
        self.links
            .iter()
            .map(|&(s, l)| (s, l.endpoint, l.relation, l.weight))
    }

    /// The staged categorical observations as `(object, attribute, term,
    /// count)`, in insertion order. Companion of [`Self::staged_links`].
    pub fn staged_term_counts(
        &self,
    ) -> impl Iterator<Item = (ObjectId, AttributeId, u32, f64)> + '_ {
        self.cat_obs.iter().copied()
    }

    /// The staged numerical observations as `(object, attribute, value)`,
    /// in insertion order. Companion of [`Self::staged_links`].
    pub fn staged_numeric_obs(&self) -> impl Iterator<Item = (ObjectId, AttributeId, f64)> + '_ {
        self.num_obs.iter().copied()
    }

    /// Whether `v` is one of this delta's new objects.
    fn is_new(&self, v: ObjectId) -> bool {
        (self.base_objects..self.base_objects + self.new_types.len()).contains(&v.index())
    }

    fn check_new(&self, v: ObjectId) -> Result<(), HinError> {
        if self.is_new(v) {
            Ok(())
        } else {
            Err(HinError::NotADeltaObject(v))
        }
    }

    /// Whether `v` will exist once the delta is applied (old or new).
    fn exists(&self, v: ObjectId) -> bool {
        v.index() < self.base_objects + self.new_types.len()
    }

    /// Type of `v`, whether it pre-exists (from the base snapshot) or is
    /// staged by this delta. `None` when `v` does not exist.
    fn object_type_of(&self, v: ObjectId) -> Option<ObjectTypeId> {
        if v.index() < self.base_objects {
            Some(self.base_types[v.index()])
        } else {
            self.new_types.get(v.index() - self.base_objects).copied()
        }
    }

    /// Adds a new object of type `t` and returns its id (continuing the
    /// base graph's id space). The name is interned into the delta's arena;
    /// a capacity overflow is recorded and surfaced by
    /// [`HinGraph::append`] as [`HinError::CapacityExceeded`].
    ///
    /// # Panics
    /// Panics if `t` is not a declared object type (same contract as
    /// [`crate::builder::HinBuilder::add_object`]).
    pub fn add_object(&mut self, t: ObjectTypeId, name: impl AsRef<str>) -> ObjectId {
        assert!(
            t.index() < self.schema.n_object_types(),
            "undeclared object type {t}"
        );
        let id = ObjectId::from_index(self.base_objects + self.new_types.len());
        self.new_types.push(t);
        if let Err(e) = self.new_names.push(name.as_ref()) {
            self.capacity_error.get_or_insert(e);
        }
        id
    }

    /// Stages a link `source → target`. Either endpoint may be a
    /// pre-existing object or one staged by this delta — a new paper can
    /// cite an old one, an old author can be linked to a new paper, and two
    /// staged objects can link each other. Endpoint types are validated
    /// eagerly against the relation definition (pre-existing types come
    /// from the base snapshot taken at [`GraphDelta::new`]; `append`
    /// re-checks them against the live graph before mutating).
    pub fn add_link(
        &mut self,
        source: ObjectId,
        target: ObjectId,
        r: RelationId,
        weight: f64,
    ) -> Result<(), HinError> {
        if !self.exists(source) {
            return Err(HinError::UnknownObject(source));
        }
        if !self.exists(target) {
            return Err(HinError::UnknownObject(target));
        }
        if r.index() >= self.schema.n_relations() {
            return Err(HinError::UnknownRelation(r));
        }
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(HinError::InvalidWeight { weight });
        }
        let def = self.schema.relation(r).clone();
        let source_type = self.object_type_of(source).expect("source exists");
        let target_type = self.object_type_of(target).expect("target exists");
        if (source_type, target_type) != (def.source, def.target) {
            return Err(HinError::EndpointTypeMismatch {
                relation: r,
                expected: (def.source, def.target),
                got: (source_type, target_type),
            });
        }
        self.links.push((
            source,
            Link {
                endpoint: target,
                relation: r,
                weight,
            },
        ));
        Ok(())
    }

    /// Stages `count` occurrences of `term` for new object `v` under
    /// categorical attribute `a`.
    pub fn add_term_count(
        &mut self,
        v: ObjectId,
        a: AttributeId,
        term: u32,
        count: f64,
    ) -> Result<(), HinError> {
        self.check_new(v)?;
        if a.index() >= self.schema.n_attributes() {
            return Err(HinError::UnknownAttribute(a));
        }
        match self.schema.attribute(a).kind {
            AttributeKind::Categorical { vocab_size } => {
                if (term as usize) >= vocab_size {
                    return Err(HinError::TermOutOfRange {
                        attribute: a,
                        term: term as usize,
                        vocab_size,
                    });
                }
            }
            AttributeKind::Numerical => {
                return Err(HinError::AttributeKindMismatch {
                    attribute: a,
                    expected: "term-count",
                });
            }
        }
        if !(count > 0.0 && count.is_finite()) {
            return Err(HinError::NonFiniteObservation { attribute: a });
        }
        self.cat_obs.push((v, a, term, count));
        Ok(())
    }

    /// Stages one numerical observation for new object `v`.
    pub fn add_numeric(&mut self, v: ObjectId, a: AttributeId, value: f64) -> Result<(), HinError> {
        self.check_new(v)?;
        if a.index() >= self.schema.n_attributes() {
            return Err(HinError::UnknownAttribute(a));
        }
        if !matches!(self.schema.attribute(a).kind, AttributeKind::Numerical) {
            return Err(HinError::AttributeKindMismatch {
                attribute: a,
                expected: "numerical",
            });
        }
        if !value.is_finite() {
            return Err(HinError::NonFiniteObservation { attribute: a });
        }
        self.num_obs.push((v, a, value));
        Ok(())
    }
}

impl HinGraph {
    /// Applies `delta`, growing the network in place.
    ///
    /// Validates everything first (base size, schema identity, endpoint
    /// types of every pre-existing endpoint re-checked against the live
    /// graph), so on `Err` the graph is untouched. Work is
    /// `O(new objects · |R| + new links + |V| + |E|)` — the `|V| + |E|`
    /// term is the single linear copy extending the in-link CSR; nothing
    /// is re-sorted or re-validated for existing objects. Links from
    /// pre-existing sources extend their per-relation overflow segments
    /// (see [`crate::graph`]'s module docs); call [`HinGraph::compact`]
    /// to fold them back into a canonical CSR.
    pub fn append(&mut self, delta: GraphDelta) -> Result<(), HinError> {
        if delta.base_objects != self.n_objects() {
            return Err(HinError::DeltaBaseMismatch {
                expected: delta.base_objects,
                got: self.n_objects(),
            });
        }
        // `GraphDelta::new` clones the schema, so a mismatch means the
        // delta was created against a different graph entirely; treat it
        // like a base mismatch.
        if delta.schema != self.schema {
            return Err(HinError::DeltaBaseMismatch {
                expected: delta.base_objects,
                got: self.n_objects(),
            });
        }
        if let Some(e) = delta.capacity_error {
            return Err(e);
        }
        let base = delta.base_objects;
        let n_new = delta.new_types.len();
        let total = base + n_new;
        let n_rel = self.schema.n_relations();

        // Capacity pre-checks: ids, CSR offsets, and arena offsets are u32;
        // reject a graph the layout cannot address before mutating anything.
        let total_ids = check_capacity("objects", total)?;
        check_capacity("links", self.n_links() + delta.links.len())?;
        check_capacity(
            "name-arena bytes",
            self.obj_names.n_bytes() + delta.new_names.n_bytes(),
        )?;

        // Deferred endpoint re-check: every pre-existing endpoint is
        // validated against the *live* graph (the delta validated eagerly
        // against its own base-type snapshot; this guards the
        // equal-size-equal-schema staleness corner where the two differ).
        for &(src, link) in &delta.links {
            let def = self.schema.relation(link.relation);
            let type_of = |v: ObjectId| {
                if v.index() < base {
                    self.obj_types[v.index()]
                } else {
                    delta.new_types[v.index() - base]
                }
            };
            let got = (type_of(src), type_of(link.endpoint));
            if got != (def.source, def.target) {
                return Err(HinError::EndpointTypeMismatch {
                    relation: link.relation,
                    expected: (def.source, def.target),
                    got,
                });
            }
        }

        // ---- mutation starts; everything below is infallible ----

        // Object table, name arena, and name index: the delta arena merges
        // into the graph arena as one bulk byte copy, and the open-addressing
        // index absorbs the new ids without touching name bytes.
        // lint: region(scale-hot)
        self.obj_types.extend_from_slice(&delta.new_types);
        self.obj_names
            .extend_from(&delta.new_names)
            .expect("capacity pre-checked");
        self.name_index.grow_for(&self.obj_names, total);
        for id in base as u32..total_ids {
            self.name_index.insert_first_wins(&self.obj_names, id);
        }
        // lint: end-region

        // Old-source links extend overflow segments; caches update in
        // place, one link at a time in insertion order so the per-(object,
        // relation) weights accumulate exactly as a from-scratch rebuild
        // would (the global `rel_weights` float may re-associate — the
        // compaction pass re-derives it canonically).
        let links_in_order = delta.links;
        for &(src, link) in &links_in_order {
            if src.index() < base {
                let r = link.relation.index();
                self.out_rel_weight[src.index() * n_rel + r] += link.weight;
                self.rel_counts[r] += 1;
                self.rel_weights[r] += link.weight;
                self.overflow.push(src.index(), n_rel, link);
            }
        }

        // New-source links: append one grouped base-CSR segment per new
        // object (existing segments keep their positions).
        // `links_in_order` is kept in insertion order for the in-CSR
        // scatter below: the builder's in-CSR is filled in link *insertion*
        // order, and the append-equals-rebuild byte identity requires
        // matching it (the grouped out-CSR walk would instead visit links
        // source-ascending, relation-grouped).
        let mut per_source: Vec<Vec<Link>> = vec![Vec::new(); n_new];
        for &(src, link) in &links_in_order {
            if src.index() >= base {
                per_source[src.index() - base].push(link);
            }
        }
        let stride = n_rel + 1;
        self.out_rel_offsets.reserve(n_new * stride);
        self.out_rel_weight.reserve(n_new * n_rel);
        let mut bucket: Vec<Vec<Link>> = vec![Vec::new(); n_rel];
        for links in per_source {
            // Stable grouping by relation, mirroring the builder.
            for link in links {
                bucket[link.relation.index()].push(link);
            }
            let seg_start = self.out_links.len() as u32;
            self.out_rel_offsets.push(seg_start);
            for (r, b) in bucket.iter_mut().enumerate() {
                // Explicit +0.0 seed: `Iterator::sum::<f64>` folds from
                // -0.0, which would make empty segments differ bitwise
                // from the builder's zeroed accumulator and break the
                // append-equals-rebuild byte identity.
                let weight: f64 = b.iter().fold(0.0, |acc, l| acc + l.weight);
                self.out_rel_weight.push(weight);
                self.rel_counts[r] += b.len() as u32;
                self.rel_weights[r] += weight;
                self.out_links.append(b); // drains the bucket
                self.out_rel_offsets.push(self.out_links.len() as u32);
            }
            self.out_offsets.push(self.out_links.len() as u32);
        }

        // In CSR: one merge pass. Count the new in-links per target, then
        // rebuild the flat array by copying each old segment and appending
        // that target's new arrivals (insertion order — exactly what a
        // stable counting sort over old-then-new links would produce).
        let mut extra = vec![0u32; total];
        for &(_, link) in &links_in_order {
            extra[link.endpoint.index()] += 1;
        }
        // Full link count: base + new-source segments (`out_links`) plus
        // the old-source links already routed to overflow above.
        let mut in_links = Vec::with_capacity(self.n_links());
        let mut in_offsets = Vec::with_capacity(total + 1);
        in_offsets.push(0u32);
        // Per-target write positions for the appended entries.
        let mut cursor = vec![0u32; total];
        for v in 0..total {
            let old = if v < base {
                let lo = self.in_offsets[v] as usize;
                let hi = self.in_offsets[v + 1] as usize;
                &self.in_links[lo..hi]
            } else {
                &[]
            };
            in_links.extend_from_slice(old);
            cursor[v] = in_links.len() as u32;
            // Reserve the slots; filled in the scatter pass below.
            in_links.extend(std::iter::repeat_n(
                Link {
                    endpoint: ObjectId(0),
                    relation: RelationId(0),
                    weight: 0.0,
                },
                extra[v] as usize,
            ));
            in_offsets.push(in_links.len() as u32);
        }
        // Scatter in link *insertion* order — matching build_csr's stable
        // counting sort, so a later full rebuild would produce these exact
        // bytes.
        for &(src, link) in &links_in_order {
            let slot = &mut cursor[link.endpoint.index()];
            in_links[*slot as usize] = Link {
                endpoint: src,
                relation: link.relation,
                weight: link.weight,
            };
            *slot += 1;
        }
        self.in_links = in_links;
        self.in_offsets = in_offsets;

        // Attribute tables: observations are restricted to *new* objects,
        // so each CSR table grows by exactly `n_new` tail rows. Stage the
        // rows delta-side (small, delta-sized scratch), sort/merge
        // categorical rows like the builder, then extend the flat arrays.
        for (ai, table) in self.attrs.tables.iter_mut().enumerate() {
            match table {
                AttributeData::Categorical { .. } => {
                    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_new];
                    for &(v, a, term, count) in &delta.cat_obs {
                        if a.index() == ai {
                            rows[v.index() - base].push((term, count));
                        }
                    }
                    for row in &mut rows {
                        row.sort_by_key(|&(t, _)| t);
                        row.dedup_by(|later, earlier| {
                            if later.0 == earlier.0 {
                                earlier.1 += later.1;
                                true
                            } else {
                                false
                            }
                        });
                    }
                    for row in &rows {
                        table.push_categorical_row(row);
                    }
                }
                AttributeData::Numerical { .. } => {
                    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); n_new];
                    for &(v, a, value) in &delta.num_obs {
                        if a.index() == ai {
                            rows[v.index() - base].push(value);
                        }
                    }
                    for row in &rows {
                        table.push_numerical_row(row);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HinBuilder;

    /// Base network: 2 authors, 2 papers, write/written_by, a text and a
    /// year attribute.
    fn base() -> HinGraph {
        let mut s = Schema::new();
        let a = s.add_object_type("author");
        let p = s.add_object_type("paper");
        let w = s.add_relation("write", a, p);
        let wb = s.add_relation("written_by", p, a);
        let text = s.add_categorical_attribute("text", 6);
        let _year = s.add_numerical_attribute("year");
        let mut b = HinBuilder::new(s);
        let a0 = b.add_object(a, "a0");
        let a1 = b.add_object(a, "a1");
        let p0 = b.add_object(p, "p0");
        let p1 = b.add_object(p, "p1");
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(a1, p1, w, wb, 2.0).unwrap();
        b.add_terms(p0, text, &[1, 4]).unwrap();
        b.build().unwrap()
    }

    /// Rebuilding from scratch with the same insertion order must produce
    /// exactly the appended graph — the gold standard for `append`.
    fn rebuilt_equivalent(g: &HinGraph) -> Vec<u8> {
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        bytes
    }

    #[test]
    fn append_matches_full_rebuild() {
        let mut g = base();
        let schema = g.schema().clone();
        let author = schema.object_type_by_name("author").unwrap();
        let paper = schema.object_type_by_name("paper").unwrap();
        let w = schema.relation_by_name("write").unwrap();
        let wb = schema.relation_by_name("written_by").unwrap();
        let text = schema.attribute_by_name("text").unwrap();
        let year = schema.attribute_by_name("year").unwrap();

        let mut d = GraphDelta::new(&g);
        let a2 = d.add_object(author, "a2");
        let p2 = d.add_object(paper, "p2");
        d.add_link(a2, ObjectId(2), w, 0.5).unwrap(); // a2 → old p0
        d.add_link(a2, p2, w, 1.5).unwrap(); // a2 → new p2
        d.add_link(p2, ObjectId(0), wb, 1.5).unwrap(); // new p2 → old a0
        d.add_term_count(p2, text, 4, 2.0).unwrap();
        d.add_term_count(p2, text, 1, 1.0).unwrap();
        d.add_term_count(p2, text, 4, 1.0).unwrap(); // merges with first
        d.add_numeric(p2, year, 2014.0).unwrap();
        g.append(d).unwrap();

        // Same network built from scratch in one go.
        let mut b = HinBuilder::new(schema);
        let a0 = b.add_object(author, "a0");
        let _a1 = b.add_object(author, "a1");
        let p0 = b.add_object(paper, "p0");
        let p1 = b.add_object(paper, "p1");
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(ObjectId(1), p1, w, wb, 2.0).unwrap();
        b.add_terms(p0, text, &[1, 4]).unwrap();
        let a2 = b.add_object(author, "a2");
        let p2 = b.add_object(paper, "p2");
        b.add_link(a2, p0, w, 0.5).unwrap();
        b.add_link(a2, p2, w, 1.5).unwrap();
        b.add_link(p2, a0, wb, 1.5).unwrap();
        b.add_term_count(p2, text, 4, 2.0).unwrap();
        b.add_term_count(p2, text, 1, 1.0).unwrap();
        b.add_term_count(p2, text, 4, 1.0).unwrap();
        b.add_numeric(p2, year, 2014.0).unwrap();
        let fresh = b.build().unwrap();

        assert_eq!(
            rebuilt_equivalent(&g),
            rebuilt_equivalent(&fresh),
            "append must be byte-identical to a full rebuild"
        );
        // Spot-check the derived state on the appended graph.
        assert_eq!(g.n_objects(), 6);
        assert_eq!(g.n_links(), 7);
        assert_eq!(g.object_by_name("p2"), Some(p2));
        assert_eq!(g.out_links(a2).count(), 2);
        assert_eq!(g.out_weight(a2, w), 2.0);
        assert_eq!(g.in_links(p0).len(), 2, "old p0 gained an in-link");
        assert_eq!(g.attribute(text).term_counts(p2), &[(1, 1.0), (4, 3.0)]);
        assert_eq!(g.attribute(year).values(p2), &[2014.0]);
    }

    #[test]
    fn append_matches_rebuild_with_interleaved_link_order() {
        // Regression: the in-CSR scatter must follow link *insertion*
        // order, not source-ascending order — here the later-added object
        // p2's link to a0 is staged before a2's links, and two new objects
        // target the same old object so the in-segment order is visible.
        let mut g = base();
        let schema = g.schema().clone();
        let author = schema.object_type_by_name("author").unwrap();
        let paper = schema.object_type_by_name("paper").unwrap();
        let w = schema.relation_by_name("write").unwrap();
        let wb = schema.relation_by_name("written_by").unwrap();

        let mut d = GraphDelta::new(&g);
        let a2 = d.add_object(author, "a2");
        let p2 = d.add_object(paper, "p2");
        d.add_link(p2, ObjectId(0), wb, 3.0).unwrap(); // higher-id source first
        d.add_link(a2, ObjectId(2), w, 0.5).unwrap();
        d.add_link(a2, ObjectId(3), w, 1.5).unwrap();
        g.append(d).unwrap();

        let mut b = HinBuilder::new(schema);
        let a0 = b.add_object(author, "a0");
        let _a1 = b.add_object(author, "a1");
        let p0 = b.add_object(paper, "p0");
        let p1 = b.add_object(paper, "p1");
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(ObjectId(1), p1, w, wb, 2.0).unwrap();
        let text = g.schema().attribute_by_name("text").unwrap();
        b.add_terms(p0, text, &[1, 4]).unwrap();
        let a2 = b.add_object(author, "a2");
        let p2 = b.add_object(paper, "p2");
        b.add_link(p2, a0, wb, 3.0).unwrap();
        b.add_link(a2, p0, w, 0.5).unwrap();
        b.add_link(a2, p1, w, 1.5).unwrap();
        let fresh = b.build().unwrap();

        assert_eq!(
            rebuilt_equivalent(&g),
            rebuilt_equivalent(&fresh),
            "insertion-order-interleaved append must still match a rebuild"
        );
    }

    #[test]
    fn codec_load_then_append_then_resave_matches_scratch_build() {
        // Cross-layer round trip: a graph that went through the byte codec
        // must accept a delta and re-serialize byte-identically to the same
        // network built from scratch in one sitting — i.e. the codec
        // rebuilds *every* derived structure (per-relation indexes, weight
        // caches, name map) exactly as the builder made them, and `append`
        // extends the decoded arrays exactly as it extends built ones.
        let original = base();
        let mut bytes = Vec::new();
        original.to_bytes(&mut bytes);
        let mut reader = genclus_stats::bytesio::ByteReader::new(&bytes);
        let mut loaded = HinGraph::from_bytes(&mut reader).expect("codec round trip");

        let schema = loaded.schema().clone();
        let author = schema.object_type_by_name("author").unwrap();
        let paper = schema.object_type_by_name("paper").unwrap();
        let w = schema.relation_by_name("write").unwrap();
        let wb = schema.relation_by_name("written_by").unwrap();
        let text = schema.attribute_by_name("text").unwrap();
        let year = schema.attribute_by_name("year").unwrap();

        let mut d = GraphDelta::new(&loaded);
        assert_eq!(d.base_objects(), 4);
        let a2 = d.add_object(author, "a2");
        let p2 = d.add_object(paper, "p2");
        assert_eq!(d.new_object_names().collect::<Vec<_>>(), ["a2", "p2"]);
        d.add_link(a2, ObjectId(2), w, 0.5).unwrap();
        d.add_link(p2, ObjectId(1), wb, 2.5).unwrap();
        d.add_term_count(p2, text, 3, 2.0).unwrap();
        d.add_numeric(p2, year, 2012.0).unwrap();
        loaded.append(d).unwrap();

        let mut b = HinBuilder::new(schema);
        let a0 = b.add_object(author, "a0");
        let a1 = b.add_object(author, "a1");
        let p0 = b.add_object(paper, "p0");
        let p1 = b.add_object(paper, "p1");
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(a1, p1, w, wb, 2.0).unwrap();
        b.add_terms(p0, text, &[1, 4]).unwrap();
        let a2 = b.add_object(author, "a2");
        let p2 = b.add_object(paper, "p2");
        b.add_link(a2, p0, w, 0.5).unwrap();
        b.add_link(p2, a1, wb, 2.5).unwrap();
        b.add_term_count(p2, text, 3, 2.0).unwrap();
        b.add_numeric(p2, year, 2012.0).unwrap();
        let fresh = b.build().unwrap();

        assert_eq!(
            rebuilt_equivalent(&loaded),
            rebuilt_equivalent(&fresh),
            "codec-loaded graphs must append byte-identically to built ones"
        );
        // And the re-saved bytes load again to the same object count/name
        // map (the name map is rebuilt on load, so this exercises it on an
        // appended graph).
        let resaved = rebuilt_equivalent(&loaded);
        let mut r2 = genclus_stats::bytesio::ByteReader::new(&resaved);
        let reloaded = HinGraph::from_bytes(&mut r2).expect("appended graph round trip");
        assert_eq!(reloaded.n_objects(), 6);
        assert_eq!(reloaded.object_by_name("p2"), Some(ObjectId(5)));
    }

    #[test]
    fn delta_rejects_bad_operations() {
        let g = base();
        let author = g.schema().object_type_by_name("author").unwrap();
        let w = g.schema().relation_by_name("write").unwrap();
        let wb = g.schema().relation_by_name("written_by").unwrap();
        let text = g.schema().attribute_by_name("text").unwrap();
        let year = g.schema().attribute_by_name("year").unwrap();
        let mut d = GraphDelta::new(&g);
        let a2 = d.add_object(author, "a2");
        // Links may originate at pre-existing objects now …
        d.add_link(ObjectId(0), ObjectId(2), w, 1.0).unwrap();
        // … but both endpoints must exist.
        assert!(matches!(
            d.add_link(ObjectId(99), ObjectId(2), w, 1.0),
            Err(HinError::UnknownObject(_))
        ));
        assert!(matches!(
            d.add_link(a2, ObjectId(99), w, 1.0),
            Err(HinError::UnknownObject(_))
        ));
        // Wrong source type for the relation (new and old sources alike —
        // old endpoint types are validated eagerly from the base snapshot).
        assert!(matches!(
            d.add_link(a2, ObjectId(0), wb, 1.0),
            Err(HinError::EndpointTypeMismatch { .. })
        ));
        assert!(matches!(
            d.add_link(ObjectId(2), ObjectId(0), w, 1.0),
            Err(HinError::EndpointTypeMismatch { .. })
        ));
        // Wrong *target* type with an old target.
        assert!(matches!(
            d.add_link(a2, ObjectId(1), w, 1.0),
            Err(HinError::EndpointTypeMismatch { .. })
        ));
        // Bad weight.
        assert!(matches!(
            d.add_link(a2, ObjectId(2), w, 0.0),
            Err(HinError::InvalidWeight { .. })
        ));
        // Observations only on new objects, with kind/vocab checks.
        assert!(matches!(
            d.add_numeric(ObjectId(0), year, 1.0),
            Err(HinError::NotADeltaObject(_))
        ));
        assert!(matches!(
            d.add_term_count(a2, text, 99, 1.0),
            Err(HinError::TermOutOfRange { .. })
        ));
        assert!(matches!(
            d.add_term_count(a2, year, 0, 1.0),
            Err(HinError::AttributeKindMismatch { .. })
        ));
        assert!(matches!(
            d.add_numeric(a2, text, 1.0),
            Err(HinError::AttributeKindMismatch { .. })
        ));
    }

    #[test]
    fn stale_delta_is_rejected_and_graph_untouched() {
        let mut g = base();
        let author = g.schema().object_type_by_name("author").unwrap();
        let d_stale = GraphDelta::new(&g);
        // Grow the graph out from under the stale delta.
        let mut d = GraphDelta::new(&g);
        d.add_object(author, "a2");
        g.append(d).unwrap();
        let before = rebuilt_equivalent(&g);
        assert!(matches!(
            g.append(d_stale),
            Err(HinError::DeltaBaseMismatch { .. })
        ));
        assert_eq!(rebuilt_equivalent(&g), before);
    }

    #[test]
    fn deferred_endpoint_check_leaves_graph_untouched_on_error() {
        // The staleness corner the deferred re-check exists for: two graphs
        // with the same schema and object count but *swapped type layout*.
        // A delta staged against one validates eagerly from its own base
        // snapshot, so only the append-time re-check against the live graph
        // can catch the mismatch.
        let mut s = Schema::new();
        let a = s.add_object_type("author");
        let p = s.add_object_type("paper");
        let w = s.add_relation("write", a, p);
        let mut b1 = HinBuilder::new(s.clone());
        b1.add_object(a, "x0");
        b1.add_object(p, "x1");
        let g1 = b1.build().unwrap();
        let mut b2 = HinBuilder::new(s);
        b2.add_object(p, "y0"); // types swapped relative to g1
        b2.add_object(a, "y1");
        let mut g2 = b2.build().unwrap();

        let mut d = GraphDelta::new(&g1);
        d.add_link(ObjectId(0), ObjectId(1), w, 1.0).unwrap(); // valid on g1
        let before = rebuilt_equivalent(&g2);
        assert!(matches!(
            g2.append(d),
            Err(HinError::EndpointTypeMismatch { .. })
        ));
        assert_eq!(
            rebuilt_equivalent(&g2),
            before,
            "failed append must not mutate"
        );
    }

    #[test]
    fn old_source_links_land_in_overflow_and_serialize_canonically() {
        let mut g = base();
        let schema = g.schema().clone();
        let author = schema.object_type_by_name("author").unwrap();
        let paper = schema.object_type_by_name("paper").unwrap();
        let w = schema.relation_by_name("write").unwrap();
        let wb = schema.relation_by_name("written_by").unwrap();

        // Every link class at once: old→old, old→new, new→old, and
        // staged→staged, interleaved in one delta.
        let mut d = GraphDelta::new(&g);
        let a2 = d.add_object(author, "a2");
        let p2 = d.add_object(paper, "p2");
        d.add_link(ObjectId(0), ObjectId(3), w, 0.25).unwrap(); // old a0 → old p1
        d.add_link(a2, ObjectId(2), w, 0.5).unwrap(); // new a2 → old p0
        d.add_link(ObjectId(1), p2, w, 0.75).unwrap(); // old a1 → new p2
        d.add_link(a2, p2, w, 1.25).unwrap(); // staged → staged
        d.add_link(p2, ObjectId(0), wb, 1.5).unwrap(); // new p2 → old a0
        g.append(d).unwrap();

        // Overflow exists (two old sources) and every accessor sees it.
        assert!(g.has_overflow());
        assert_eq!(g.n_overflow_links(), 2);
        assert_eq!(g.n_links(), 4 + 5);
        let a0 = ObjectId(0);
        assert_eq!(g.out_links(a0).count(), 2, "a0's base link + overflow");
        assert_eq!(g.out_degree(a0), 2);
        assert!(g.has_out_links(a0));
        assert_eq!(g.out_weight(a0, w), 1.0 + 0.25);
        assert_eq!(g.relation_link_count(w), 2 + 4);
        assert!((g.relation_total_weight(w) - (3.0 + 0.25 + 0.5 + 0.75 + 1.25)).abs() < 1e-12);
        // Canonical per-relation order: base sub-segment before overflow.
        let weights: Vec<f64> = g.out_links_for_relation(a0, w).map(|l| l.weight).collect();
        assert_eq!(weights, vec![1.0, 0.25]);
        // The segment view yields the overflow as a second chunk of the
        // same relation, and chunks still tile the full out-link list.
        let segs: Vec<_> = g.out_relation_segments(a0).collect();
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].0, segs[0].1.len()), (w, 1));
        assert_eq!((segs[1].0, segs[1].1.len()), (w, 1));
        for v in g.objects() {
            let total: usize = g.out_relation_segments(v).map(|(_, s)| s.len()).sum();
            assert_eq!(total, g.out_degree(v));
        }
        // In-CSR grew for the old targets.
        assert_eq!(g.in_links(ObjectId(3)).len(), 2, "old p1 gained an in-link");

        // Serialization is canonical with the overflow still live …
        let bytes_live = rebuilt_equivalent(&g);
        // … and identical to the same network built from scratch in one go.
        let mut b = HinBuilder::new(schema);
        let a0 = b.add_object(author, "a0");
        let a1 = b.add_object(author, "a1");
        let p0 = b.add_object(paper, "p0");
        let p1 = b.add_object(paper, "p1");
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(a1, p1, w, wb, 2.0).unwrap();
        let text = g.schema().attribute_by_name("text").unwrap();
        b.add_terms(p0, text, &[1, 4]).unwrap();
        let a2 = b.add_object(author, "a2");
        let p2 = b.add_object(paper, "p2");
        b.add_link(a0, p1, w, 0.25).unwrap();
        b.add_link(a2, p0, w, 0.5).unwrap();
        b.add_link(a1, p2, w, 0.75).unwrap();
        b.add_link(a2, p2, w, 1.25).unwrap();
        b.add_link(p2, a0, wb, 1.5).unwrap();
        let fresh = b.build().unwrap();
        assert_eq!(
            bytes_live,
            rebuilt_equivalent(&fresh),
            "overflow graph must serialize byte-identically to a rebuild"
        );

        // Compaction folds the overflow in without changing the bytes, and
        // is idempotent.
        g.compact();
        assert!(!g.has_overflow());
        assert_eq!(g.n_links(), 9);
        assert_eq!(rebuilt_equivalent(&g), bytes_live);
        let weights: Vec<f64> = g
            .out_links_for_relation(ObjectId(0), w)
            .map(|l| l.weight)
            .collect();
        assert_eq!(weights, vec![1.0, 0.25], "compaction preserves link order");
        g.compact();
        assert_eq!(rebuilt_equivalent(&g), bytes_live);
    }

    #[test]
    fn repeated_appends_turn_earlier_arrivals_into_old_sources() {
        // An object appended in round 1 is a pre-existing source in round 2:
        // its base-CSR tail segment gains an overflow segment, and the
        // final bytes still match a single from-scratch build.
        let mut g = base();
        let schema = g.schema().clone();
        let author = schema.object_type_by_name("author").unwrap();
        let paper = schema.object_type_by_name("paper").unwrap();
        let w = schema.relation_by_name("write").unwrap();

        let mut d1 = GraphDelta::new(&g);
        let a2 = d1.add_object(author, "a2");
        d1.add_link(a2, ObjectId(2), w, 0.5).unwrap();
        g.append(d1).unwrap();

        let mut d2 = GraphDelta::new(&g);
        let p2 = d2.add_object(paper, "p2");
        d2.add_link(a2, p2, w, 0.75).unwrap(); // a2 is old now
        d2.add_link(ObjectId(0), p2, w, 1.25).unwrap(); // so is a0
        g.append(d2).unwrap();

        assert_eq!(g.out_links(a2).count(), 2);
        assert_eq!(g.out_weight(a2, w), 0.5 + 0.75);

        let mut b = HinBuilder::new(schema);
        let a0 = b.add_object(author, "a0");
        let a1 = b.add_object(author, "a1");
        let p0 = b.add_object(paper, "p0");
        let p1 = b.add_object(paper, "p1");
        let wb = g.schema().relation_by_name("written_by").unwrap();
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(a1, p1, w, wb, 2.0).unwrap();
        let text = g.schema().attribute_by_name("text").unwrap();
        b.add_terms(p0, text, &[1, 4]).unwrap();
        let a2 = b.add_object(author, "a2");
        b.add_link(a2, p0, w, 0.5).unwrap();
        let p2 = b.add_object(paper, "p2");
        b.add_link(a2, p2, w, 0.75).unwrap();
        b.add_link(a0, p2, w, 1.25).unwrap();
        let fresh = b.build().unwrap();
        assert_eq!(rebuilt_equivalent(&g), rebuilt_equivalent(&fresh));

        g.compact();
        assert_eq!(rebuilt_equivalent(&g), rebuilt_equivalent(&fresh));
    }

    #[test]
    fn stacked_windows_append_in_sequence_or_merged() {
        // Double-buffered staging: window 2 is created via `new_after`
        // while window 1 is "in flight". Applying w1 then w2 (the success
        // path), or `stack`ing w2 back onto w1 and applying once (the
        // failure path), must both equal a single-window staging.
        let build = |two_appends: bool, merged: bool| -> Vec<u8> {
            let mut g = base();
            let author = g.schema().object_type_by_name("author").unwrap();
            let paper = g.schema().object_type_by_name("paper").unwrap();
            let w = g.schema().relation_by_name("write").unwrap();
            let year = g.schema().attribute_by_name("year").unwrap();
            let mut w1 = GraphDelta::new(&g);
            let a2 = w1.add_object(author, "a2");
            w1.add_link(a2, ObjectId(2), w, 0.5).unwrap();
            let mut w2 = GraphDelta::new_after(&g, &w1).unwrap();
            assert_eq!(w2.base_objects(), 5);
            let p2 = w2.add_object(paper, "p2");
            // Window-2 links may cite base objects AND window-1 objects.
            w2.add_link(a2, p2, w, 0.75).unwrap();
            w2.add_link(ObjectId(0), p2, w, 1.25).unwrap();
            w2.add_numeric(p2, year, 2012.0).unwrap();
            if two_appends {
                g.append(w1).unwrap();
                g.append(w2).unwrap();
            } else if merged {
                w1.stack(w2).unwrap();
                assert_eq!(w1.n_new_objects(), 2);
                assert_eq!(w1.n_new_links(), 3);
                g.append(w1).unwrap();
            } else {
                // Single-window reference staging.
                let mut d = GraphDelta::new(&g);
                let a2 = d.add_object(author, "a2");
                d.add_link(a2, ObjectId(2), w, 0.5).unwrap();
                let p2 = d.add_object(paper, "p2");
                d.add_link(a2, p2, w, 0.75).unwrap();
                d.add_link(ObjectId(0), p2, w, 1.25).unwrap();
                d.add_numeric(p2, year, 2012.0).unwrap();
                g.append(d).unwrap();
            }
            g.compact();
            rebuilt_equivalent(&g)
        };
        let reference = build(false, false);
        assert_eq!(build(true, false), reference, "w1 then w2 appends");
        assert_eq!(build(false, true), reference, "stacked merge append");
    }

    #[test]
    fn stacked_window_validates_against_inflight_types() {
        let g = base();
        let author = g.schema().object_type_by_name("author").unwrap();
        let w = g.schema().relation_by_name("write").unwrap();
        let mut w1 = GraphDelta::new(&g);
        let a2 = w1.add_object(author, "a2");
        let mut w2 = GraphDelta::new_after(&g, &w1).unwrap();
        // a2 is an *author* per window 1's staged types: it cannot be the
        // target of `write` (author → paper).
        let a3 = w2.add_object(author, "a3");
        assert!(matches!(
            w2.add_link(a3, a2, w, 1.0),
            Err(HinError::EndpointTypeMismatch { .. })
        ));
        // But it is a valid source.
        w2.add_link(a2, ObjectId(2), w, 1.0).unwrap();
    }

    #[test]
    fn mismatched_windows_are_rejected() {
        let mut g = base();
        let author = g.schema().object_type_by_name("author").unwrap();
        let mut w1 = GraphDelta::new(&g);
        w1.add_object(author, "a2");
        // `new_after` demands the in-flight window be staged against the
        // live graph …
        let mut grown = g.clone();
        let mut d = GraphDelta::new(&grown);
        d.add_object(author, "ax");
        grown.append(d).unwrap();
        assert!(matches!(
            GraphDelta::new_after(&grown, &w1),
            Err(HinError::DeltaBaseMismatch { .. })
        ));
        // … and `stack` demands the next window sit exactly on top.
        let not_on_top = GraphDelta::new(&g);
        assert!(matches!(
            w1.stack(not_on_top),
            Err(HinError::DeltaBaseMismatch { .. })
        ));
        let w2 = GraphDelta::new_after(&g, &w1).unwrap();
        let mut w1_shrunk = GraphDelta::new(&g);
        assert!(matches!(
            w1_shrunk.stack(w2),
            Err(HinError::DeltaBaseMismatch { .. })
        ));
        // A well-formed stack still works afterwards.
        let w2 = GraphDelta::new_after(&g, &w1).unwrap();
        w1.stack(w2).unwrap();
        g.append(w1).unwrap();
        assert_eq!(g.n_objects(), 5);
    }

    #[test]
    fn staged_inspection_iterators_report_insertion_order() {
        let g = base();
        let author = g.schema().object_type_by_name("author").unwrap();
        let paper = g.schema().object_type_by_name("paper").unwrap();
        let w = g.schema().relation_by_name("write").unwrap();
        let text = g.schema().attribute_by_name("text").unwrap();
        let year = g.schema().attribute_by_name("year").unwrap();
        let mut d = GraphDelta::new(&g);
        let a2 = d.add_object(author, "a2");
        let p2 = d.add_object(paper, "p2");
        d.add_link(
            p2,
            ObjectId(0),
            g.schema().relation_by_name("written_by").unwrap(),
            3.0,
        )
        .unwrap();
        d.add_link(a2, ObjectId(2), w, 0.5).unwrap();
        d.add_term_count(p2, text, 4, 2.0).unwrap();
        d.add_numeric(p2, year, 2012.0).unwrap();
        let links: Vec<_> = d.staged_links().collect();
        assert_eq!(links.len(), 2, "insertion order, sources old and new");
        assert_eq!(links[0].0, p2);
        assert_eq!((links[1].0, links[1].1, links[1].3), (a2, ObjectId(2), 0.5));
        assert_eq!(
            d.staged_term_counts().collect::<Vec<_>>(),
            vec![(p2, text, 4, 2.0)]
        );
        assert_eq!(
            d.staged_numeric_obs().collect::<Vec<_>>(),
            vec![(p2, year, 2012.0)]
        );
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let mut g = base();
        let before = rebuilt_equivalent(&g);
        let d = GraphDelta::new(&g);
        g.append(d).unwrap();
        assert_eq!(rebuilt_equivalent(&g), before);
    }

    #[test]
    fn repeated_appends_compose() {
        let mut g = base();
        let author = g.schema().object_type_by_name("author").unwrap();
        let paper = g.schema().object_type_by_name("paper").unwrap();
        let w = g.schema().relation_by_name("write").unwrap();
        for i in 0..5 {
            let mut d = GraphDelta::new(&g);
            let a = d.add_object(author, format!("extra-a{i}"));
            let p = d.add_object(paper, format!("extra-p{i}"));
            d.add_link(a, p, w, 1.0 + i as f64).unwrap();
            g.append(d).unwrap();
        }
        assert_eq!(g.n_objects(), 4 + 10);
        assert_eq!(g.n_links(), 4 + 5);
        // The cached per-relation totals kept up.
        assert_eq!(g.relation_link_count(w), 2 + 5);
        let expect: f64 = 1.0 + 2.0 + (1.0 + 2.0 + 3.0 + 4.0 + 5.0);
        assert!((g.relation_total_weight(w) - expect).abs() < 1e-12);
        // In-link CSR stayed consistent.
        let total_in: usize = g.objects().map(|v| g.in_links(v).len()).sum();
        assert_eq!(total_in, g.n_links());
    }
}
