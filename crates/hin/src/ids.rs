//! Dense integer identifiers.
//!
//! Every entity in a network is addressed by a small newtype wrapping a dense
//! index. Algorithms index flat vectors with these — no hashing on hot paths
//! — and the newtypes prevent the classic "passed an author index where a
//! relation index was expected" bug at compile time.

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $repr);

        impl $name {
            /// The wrapped index as a `usize`, for vector indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs from a `usize` index.
            ///
            /// # Panics
            /// Panics if `i` does not fit the underlying representation.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                assert!(
                    i <= <$repr>::MAX as usize,
                    concat!(stringify!($name), " index {} overflows"),
                    i
                );
                Self(i as $repr)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_newtype!(
    /// A node of the network (an object or event; §2.1).
    ObjectId,
    u32
);
id_newtype!(
    /// An object type — the range of the paper's mapping `τ: V → A`.
    ObjectTypeId,
    u16
);
id_newtype!(
    /// A link type / relation — the range of `φ: E → R`. The learned
    /// strength vector `γ` is indexed by this id.
    RelationId,
    u16
);
id_newtype!(
    /// An attribute declared in the schema (text or numerical).
    AttributeId,
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_usize() {
        let id = ObjectId::from_index(12345);
        assert_eq!(id.index(), 12345);
        assert_eq!(usize::from(id), 12345);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(RelationId(3).to_string(), "RelationId(3)");
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_is_caught() {
        let _ = RelationId::from_index(1 << 20);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(AttributeId::from_index(7), AttributeId(7));
    }
}
