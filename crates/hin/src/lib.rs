//! Heterogeneous information network (HIN) substrate.
//!
//! A HIN `G = (V, E, W)` (§2.1 of the GenClus paper) is a directed graph in
//! which every object has an *object type* (`τ: V → A`), every link has a
//! *link type* / relation (`φ: E → R`) and a positive weight, and objects
//! carry observation lists for a set of attributes — term bags for text
//! attributes, value lists for numerical attributes. Attributes are
//! *incomplete*: an object type may lack an attribute entirely, and an object
//! may have zero observations even when its type carries the attribute.
//!
//! The crate provides:
//!
//! * [`ids`] — dense integer newtypes for objects / object types / relations
//!   / attributes (hot paths index vectors, never hash);
//! * [`arena`] — [`arena::NameArena`] + [`arena::NameIndex`], the interned
//!   object-name storage: all names of a graph live in **one** contiguous
//!   byte buffer addressed by a `u32` offset table, and the name → id index
//!   stores only object ids (the arena is the key storage). Invariants:
//!   offsets are monotone with `offsets[0] == 0` and
//!   `offsets[n] == bytes.len()`; every span is valid UTF-8 (re-validated
//!   per span on decode); counts and byte lengths fit `u32` (enforced via
//!   [`error::HinError::CapacityExceeded`]); duplicate names resolve to the
//!   **first** registration. [`delta::GraphDelta`] interns new names into
//!   its own delta arena, bulk-merged into the graph arena at append time;
//! * [`schema`] — the type system: object types, relations with typed
//!   endpoints, attribute declarations;
//! * [`graph`] — [`graph::HinGraph`] with CSR out-link and in-link
//!   adjacency; the out side is **segmented** (an immutable base CSR plus
//!   per-`(source, relation)` overflow segments fed by [`delta`], folded
//!   back into a canonical CSR by [`graph::HinGraph::compact`] — see the
//!   module docs for the layout and the compaction trigger);
//! * [`builder`] — [`builder::HinBuilder`], the validated construction path;
//! * [`delta`] — [`delta::GraphDelta`], incremental growth: append new
//!   objects, links (from new *or* pre-existing sources, to new or
//!   pre-existing targets), and observations without a full rebuild;
//! * [`codec`] — `to_bytes` / `from_bytes` for [`schema::Schema`] and
//!   [`graph::HinGraph`], the hooks under the `genclus-serve` snapshot
//!   format;
//! * [`attributes`] — per-attribute observation storage;
//! * [`stats`] — descriptive statistics used by examples and the experiment
//!   harness;
//! * [`error`] — [`error::HinError`].
//!
//! # Example
//!
//! ```
//! use genclus_hin::prelude::*;
//!
//! let mut schema = Schema::new();
//! let author = schema.add_object_type("author");
//! let paper = schema.add_object_type("paper");
//! let writes = schema.add_relation("writes", author, paper);
//! let text = schema.add_categorical_attribute("title_terms", 8);
//!
//! let mut b = HinBuilder::new(schema);
//! let a0 = b.add_object(author, "alice");
//! let p0 = b.add_object(paper, "paper-0");
//! b.add_link(a0, p0, writes, 1.0).unwrap();
//! b.add_term_count(p0, text, 3, 2.0).unwrap(); // term #3 appears twice
//! let g = b.build().unwrap();
//!
//! assert_eq!(g.n_objects(), 2);
//! assert_eq!(g.out_links(a0).count(), 1);
//! ```

pub mod arena;
pub mod attributes;
pub mod builder;
pub mod codec;
pub mod delta;
pub mod error;
pub mod graph;
pub mod ids;
pub mod schema;
pub mod stats;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::arena::{NameArena, NameIndex};
    pub use crate::attributes::{AttributeData, AttributeStore};
    pub use crate::builder::HinBuilder;
    pub use crate::delta::GraphDelta;
    pub use crate::error::HinError;
    pub use crate::graph::{HinGraph, Link};
    pub use crate::ids::{AttributeId, ObjectId, ObjectTypeId, RelationId};
    pub use crate::schema::{AttributeKind, RelationDef, Schema};
    pub use crate::stats::NetworkStats;
}

pub use prelude::*;
