//! Byte serialization of the network: the `to_bytes` / `from_bytes` hooks
//! the snapshot layer (`genclus-serve`) composes into its versioned file
//! format.
//!
//! The encoding follows the [`genclus_stats::bytesio`] convention
//! (little-endian, length-prefixed, 8-padded). Design points:
//!
//! * the CSR arrays and the per-relation indexes are serialized **as built**
//!   — loading is a straight decode with structural validation, no re-sort
//!   and no re-derivation of the caches;
//! * the `name → id` map is *not* serialized: `HashMap` iteration order is
//!   nondeterministic, which would break the save → load → save
//!   byte-identity guarantee, and the map is cheaply re-derived from
//!   `obj_names`;
//! * decoding never panics on malformed input — every structural invariant
//!   the builder established (offset monotonicity, id ranges, positive
//!   weights, term-vocabulary bounds) is re-checked and a violation returns
//!   `None`. Snapshot files are operator-supplied input; the algorithm
//!   crates index without bounds checks on the strength of these invariants.

use crate::attributes::{AttributeData, AttributeStore};
use crate::graph::{HinGraph, Link};
use crate::ids::{ObjectId, ObjectTypeId, RelationId};
use crate::schema::{AttributeKind, Schema};
use genclus_stats::bytesio::{
    put_f64_slice, put_str, put_u16_slice, put_u32_slice, put_u64, put_u64_slice, ByteReader,
};
use std::collections::HashMap;

const KIND_CATEGORICAL: u64 = 0;
const KIND_NUMERICAL: u64 = 1;

impl Schema {
    /// Serializes the schema (object types, relations, attribute
    /// declarations) in declaration order.
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        put_u64(out, self.n_object_types() as u64);
        for t in 0..self.n_object_types() {
            put_str(out, self.object_type_name(ObjectTypeId::from_index(t)));
        }
        put_u64(out, self.n_relations() as u64);
        for (_, def) in self.relations() {
            put_str(out, &def.name);
            put_u64(out, def.source.index() as u64);
            put_u64(out, def.target.index() as u64);
        }
        put_u64(out, self.n_attributes() as u64);
        for (_, def) in self.attributes() {
            put_str(out, &def.name);
            match def.kind {
                AttributeKind::Categorical { vocab_size } => {
                    put_u64(out, KIND_CATEGORICAL);
                    put_u64(out, vocab_size as u64);
                }
                AttributeKind::Numerical => put_u64(out, KIND_NUMERICAL),
            }
        }
    }

    /// Inverse of [`Self::to_bytes`]; `None` on malformed input (truncation,
    /// out-of-range relation endpoints, unknown attribute kind tags, or
    /// entity counts that overflow the `u16` id space — the decode must
    /// never reach the `from_index` assertions).
    pub fn from_bytes(r: &mut ByteReader<'_>) -> Option<Self> {
        const MAX_U16_IDS: usize = u16::MAX as usize + 1;
        let mut s = Schema::new();
        let n_types = r.count(8)?;
        if n_types > MAX_U16_IDS {
            return None;
        }
        for _ in 0..n_types {
            let name = r.str()?;
            s.add_object_type(name);
        }
        let n_rel = r.count(8)?;
        if n_rel > MAX_U16_IDS {
            return None;
        }
        for _ in 0..n_rel {
            let name = r.str()?;
            let source: usize = r.u64()?.try_into().ok()?;
            let target: usize = r.u64()?.try_into().ok()?;
            if source >= n_types || target >= n_types {
                return None;
            }
            s.add_relation(
                name,
                ObjectTypeId::from_index(source),
                ObjectTypeId::from_index(target),
            );
        }
        let n_attr = r.count(8)?;
        if n_attr > MAX_U16_IDS {
            return None;
        }
        for _ in 0..n_attr {
            let name = r.str()?;
            match r.u64()? {
                KIND_CATEGORICAL => {
                    let vocab: usize = r.u64()?.try_into().ok()?;
                    s.add_categorical_attribute(name, vocab);
                }
                KIND_NUMERICAL => {
                    s.add_numerical_attribute(name);
                }
                _ => return None,
            }
        }
        Some(s)
    }
}

/// Writes a link array as three packed parallel slices (endpoints,
/// relations, weights) — struct-of-arrays keeps the encoding free of
/// per-link padding.
fn put_links(out: &mut Vec<u8>, links: &[Link]) {
    let endpoints: Vec<u32> = links.iter().map(|l| l.endpoint.0).collect();
    let relations: Vec<u16> = links.iter().map(|l| l.relation.0).collect();
    let weights: Vec<f64> = links.iter().map(|l| l.weight).collect();
    put_u32_slice(out, &endpoints);
    put_u16_slice(out, &relations);
    put_f64_slice(out, &weights);
}

/// Reads a link array; validates endpoint/relation ranges and weight
/// positivity.
fn read_links(r: &mut ByteReader<'_>, n_objects: usize, n_rel: usize) -> Option<Vec<Link>> {
    let endpoints = r.u32_slice()?;
    let relations = r.u16_slice()?;
    let weights = r.f64_slice()?;
    if endpoints.len() != relations.len() || endpoints.len() != weights.len() {
        return None;
    }
    endpoints
        .into_iter()
        .zip(relations)
        .zip(weights)
        .map(|((e, rel), w)| {
            ((e as usize) < n_objects && (rel as usize) < n_rel && w > 0.0 && w.is_finite())
                .then_some(Link {
                    endpoint: ObjectId(e),
                    relation: RelationId(rel),
                    weight: w,
                })
        })
        .collect()
}

/// `offsets` must be a monotone CSR offset array of `n + 1` entries ending
/// at `total`.
fn offsets_valid(offsets: &[u32], n: usize, total: usize) -> bool {
    offsets.len() == n + 1
        && offsets[0] == 0
        && offsets.windows(2).all(|w| w[0] <= w[1])
        && offsets[n] as usize == total
}

fn put_attr_table(out: &mut Vec<u8>, table: &AttributeData) {
    match table {
        AttributeData::Categorical { vocab_size, counts } => {
            put_u64(out, KIND_CATEGORICAL);
            put_u64(out, *vocab_size as u64);
            let mut offsets = Vec::with_capacity(counts.len() + 1);
            let mut terms = Vec::new();
            let mut values = Vec::new();
            offsets.push(0u64);
            for row in counts {
                for &(t, c) in row {
                    terms.push(t);
                    values.push(c);
                }
                offsets.push(terms.len() as u64);
            }
            put_u64_slice(out, &offsets);
            put_u32_slice(out, &terms);
            put_f64_slice(out, &values);
        }
        AttributeData::Numerical { values } => {
            put_u64(out, KIND_NUMERICAL);
            let mut offsets = Vec::with_capacity(values.len() + 1);
            let mut flat = Vec::new();
            offsets.push(0u64);
            for row in values {
                flat.extend_from_slice(row);
                offsets.push(flat.len() as u64);
            }
            put_u64_slice(out, &offsets);
            put_f64_slice(out, &flat);
        }
    }
}

fn read_attr_table(
    r: &mut ByteReader<'_>,
    n_objects: usize,
    kind: &AttributeKind,
) -> Option<AttributeData> {
    match (r.u64()?, kind) {
        (KIND_CATEGORICAL, AttributeKind::Categorical { vocab_size }) => {
            let vocab: usize = r.u64()?.try_into().ok()?;
            if vocab != *vocab_size {
                return None;
            }
            let offsets = r.u64_slice()?;
            let terms = r.u32_slice()?;
            let values = r.f64_slice()?;
            if terms.len() != values.len() {
                return None;
            }
            read_offsets_validated(&offsets, n_objects, terms.len())?;
            let mut counts = Vec::with_capacity(n_objects);
            for w in offsets.windows(2) {
                let (lo, hi) = (w[0] as usize, w[1] as usize);
                let row: Vec<(u32, f64)> = terms[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied())
                    .collect();
                // Builder invariant: terms strictly ascending per object,
                // counts positive and finite.
                let sorted = row.windows(2).all(|p| p[0].0 < p[1].0);
                let in_range = row
                    .iter()
                    .all(|&(t, c)| (t as usize) < vocab && c > 0.0 && c.is_finite());
                if !sorted || !in_range {
                    return None;
                }
                counts.push(row);
            }
            Some(AttributeData::Categorical {
                vocab_size: vocab,
                counts,
            })
        }
        (KIND_NUMERICAL, AttributeKind::Numerical) => {
            let offsets = r.u64_slice()?;
            let flat = r.f64_slice()?;
            read_offsets_validated(&offsets, n_objects, flat.len())?;
            if flat.iter().any(|x| !x.is_finite()) {
                return None;
            }
            let values = offsets
                .windows(2)
                .map(|w| flat[w[0] as usize..w[1] as usize].to_vec())
                .collect();
            Some(AttributeData::Numerical { values })
        }
        _ => None,
    }
}

fn read_offsets_validated(offsets: &[u64], n: usize, total: usize) -> Option<()> {
    (offsets.len() == n + 1
        && offsets[0] == 0
        && offsets.windows(2).all(|w| w[0] <= w[1])
        && offsets[n] as usize == total)
        .then_some(())
}

impl HinGraph {
    /// Serializes the complete network: schema, object table, both CSR
    /// adjacencies, attribute tables, and the per-relation indexes.
    ///
    /// Always emits the **canonical** (compacted) form: a graph carrying
    /// out-link overflow segments serializes exactly the bytes its
    /// [`HinGraph::compact`]ed self would — the overflow is folded into
    /// temporary CSR arrays on the fly, without mutating `self` — so
    /// save → load → save byte identity holds whether or not the caller
    /// compacted first, and snapshot files never contain overflow.
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        let compacted = self.has_overflow().then(|| self.compacted_out_arrays());
        let (out_offsets, out_links, out_rel_offsets, rel_weights) = match &compacted {
            Some((oo, ol, oro, rw)) => {
                (oo.as_slice(), ol.as_slice(), oro.as_slice(), rw.as_slice())
            }
            None => (
                self.out_offsets.as_slice(),
                self.out_links.as_slice(),
                self.out_rel_offsets.as_slice(),
                self.rel_weights.as_slice(),
            ),
        };
        self.schema.to_bytes(out);
        put_u64(out, self.n_objects() as u64);
        let types: Vec<u16> = self.obj_types.iter().map(|t| t.0).collect();
        put_u16_slice(out, &types);
        for name in &self.obj_names {
            put_str(out, name);
        }
        put_u32_slice(out, out_offsets);
        put_links(out, out_links);
        put_u32_slice(out, &self.in_offsets);
        put_links(out, &self.in_links);
        put_u64(out, self.attrs.tables.len() as u64);
        for table in &self.attrs.tables {
            put_attr_table(out, table);
        }
        put_u32_slice(out, out_rel_offsets);
        put_f64_slice(out, &self.out_rel_weight);
        put_u32_slice(out, &self.rel_counts);
        put_f64_slice(out, rel_weights);
    }

    /// Inverse of [`Self::to_bytes`]. Re-validates every structural
    /// invariant and re-derives the name → id map; returns `None` on any
    /// inconsistency.
    pub fn from_bytes(r: &mut ByteReader<'_>) -> Option<Self> {
        let schema = Schema::from_bytes(r)?;
        let n_rel = schema.n_relations();
        let n: usize = r.u64()?.try_into().ok()?;
        let types = r.u16_slice()?;
        if types.len() != n
            || types
                .iter()
                .any(|&t| (t as usize) >= schema.n_object_types())
        {
            return None;
        }
        let obj_types: Vec<ObjectTypeId> = types.into_iter().map(ObjectTypeId).collect();
        let mut obj_names = Vec::with_capacity(n);
        for _ in 0..n {
            obj_names.push(r.str()?);
        }
        let out_offsets = r.u32_slice()?;
        let out_links = read_links(r, n, n_rel)?;
        if !offsets_valid(&out_offsets, n, out_links.len()) {
            return None;
        }
        let in_offsets = r.u32_slice()?;
        let in_links = read_links(r, n, n_rel)?;
        if !offsets_valid(&in_offsets, n, in_links.len()) || in_links.len() != out_links.len() {
            return None;
        }
        let n_attr = r.count(8)?;
        if n_attr != schema.n_attributes() {
            return None;
        }
        let mut tables = Vec::with_capacity(n_attr);
        for a in 0..n_attr {
            let kind = &schema
                .attribute(crate::ids::AttributeId::from_index(a))
                .kind;
            tables.push(read_attr_table(r, n, kind)?);
        }
        let out_rel_offsets = r.u32_slice()?;
        if out_rel_offsets.len() != n * (n_rel + 1) {
            return None;
        }
        let out_rel_weight = r.f64_slice()?;
        if out_rel_weight.len() != n * n_rel {
            return None;
        }
        let rel_counts = r.u32_slice()?;
        let rel_weights = r.f64_slice()?;
        if rel_counts.len() != n_rel || rel_weights.len() != n_rel {
            return None;
        }
        // Per-relation sub-segments must tile each object's out segment.
        let stride = n_rel + 1;
        for v in 0..n {
            let row = &out_rel_offsets[v * stride..(v + 1) * stride];
            if row[0] != out_offsets[v]
                || row[n_rel] != out_offsets[v + 1]
                || row.windows(2).any(|w| w[0] > w[1])
            {
                return None;
            }
        }
        let mut name_index = HashMap::with_capacity(n);
        for (i, name) in obj_names.iter().enumerate() {
            name_index.entry(name.clone()).or_insert(i as u32);
        }
        Some(HinGraph {
            schema,
            obj_types,
            obj_names,
            out_offsets,
            out_links,
            in_offsets,
            in_links,
            attrs: AttributeStore { tables },
            name_index,
            out_rel_offsets,
            out_rel_weight,
            rel_counts,
            rel_weights,
            overflow: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HinBuilder;

    fn toy() -> HinGraph {
        let mut s = Schema::new();
        let a = s.add_object_type("author");
        let p = s.add_object_type("paper");
        let w = s.add_relation("write", a, p);
        let wb = s.add_relation("written_by", p, a);
        let text = s.add_categorical_attribute("text", 5);
        let year = s.add_numerical_attribute("year");
        let mut b = HinBuilder::new(s);
        let a0 = b.add_object(a, "alice");
        let a1 = b.add_object(a, "bob");
        let p0 = b.add_object(p, "p0");
        let p1 = b.add_object(p, "p1");
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(a0, p1, w, wb, 2.5).unwrap();
        b.add_link_pair(a1, p1, w, wb, 0.5).unwrap();
        b.add_terms(p0, text, &[0, 2, 2]).unwrap();
        b.add_numeric(p0, year, 2012.0).unwrap();
        b.add_numeric(p1, year, 2013.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn schema_round_trips() {
        let g = toy();
        let mut bytes = Vec::new();
        g.schema().to_bytes(&mut bytes);
        let back = Schema::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(&back, g.schema());
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn graph_round_trips_byte_identically() {
        let g = toy();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        let back = HinGraph::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, bytes, "save → load → save must be byte-identical");
        // Structure survives, including the derived indexes and name map.
        assert_eq!(back.n_objects(), g.n_objects());
        assert_eq!(back.n_links(), g.n_links());
        assert_eq!(back.object_by_name("alice"), g.object_by_name("alice"));
        let w = g.schema().relation_by_name("write").unwrap();
        for v in g.objects() {
            assert!(back.out_links(v).eq(g.out_links(v)));
            assert_eq!(back.in_links(v), g.in_links(v));
            assert_eq!(back.out_weight(v, w), g.out_weight(v, w));
        }
        let text = g.schema().attribute_by_name("text").unwrap();
        assert_eq!(
            back.attribute(text).term_counts(ObjectId(2)),
            g.attribute(text).term_counts(ObjectId(2))
        );
    }

    #[test]
    fn appended_graphs_round_trip_byte_identically() {
        // The delta path must not produce anything the codec treats
        // specially: grow a *loaded* graph, save it, and require the bytes
        // to load back and re-save identically — the serve crate's refresh
        // loop (load → append → re-snapshot) leans on exactly this.
        let g = toy();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        let mut loaded = HinGraph::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        let author = loaded.schema().object_type_by_name("author").unwrap();
        let w = loaded.schema().relation_by_name("write").unwrap();
        let mut d = crate::delta::GraphDelta::new(&loaded);
        let carol = d.add_object(author, "carol");
        d.add_link(carol, ObjectId(2), w, 1.5).unwrap();
        loaded.append(d).unwrap();

        let mut grown = Vec::new();
        loaded.to_bytes(&mut grown);
        let back = HinGraph::from_bytes(&mut ByteReader::new(&grown)).unwrap();
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, grown, "appended graph must stay byte-stable");
        assert_eq!(back.object_by_name("carol"), Some(carol));
        assert_eq!(back.out_links(carol).count(), 1);
    }

    #[test]
    fn malformed_graphs_are_rejected() {
        let g = toy();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        // Truncations at every prefix must fail cleanly, never panic.
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                HinGraph::from_bytes(&mut ByteReader::new(&bytes[..cut])).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let mut s = Schema::new();
        s.add_object_type("t");
        s.add_numerical_attribute("x");
        let g = HinBuilder::new(s).build().unwrap();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        let back = HinGraph::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.n_objects(), 0);
        assert_eq!(back.schema().n_attributes(), 1);
    }
}
