//! Byte serialization of the network: the `to_bytes` / `from_bytes` hooks
//! the snapshot layer (`genclus-serve`) composes into its versioned file
//! format.
//!
//! The encoding follows the [`genclus_stats::bytesio`] convention
//! (little-endian, length-prefixed, 8-padded). Design points:
//!
//! * the CSR arrays and the per-relation indexes are serialized **as built**
//!   — loading is a straight decode with structural validation, no re-sort
//!   and no re-derivation of the caches;
//! * the `name → id` map is *not* serialized: it is cheaply re-derived from
//!   the name arena, and serializing a hash table would couple the byte
//!   format to its layout;
//! * object names travel as the **arena itself** — one `u32` offset table
//!   plus one byte blob — so decoding a million names is two array reads,
//!   not a million `String` allocations. The pre-arena layout (one
//!   length-prefixed string per object) is still readable through
//!   [`HinGraph::from_bytes_v1`], the compat shim behind snapshot schema
//!   version 1;
//! * decoding never panics on malformed input — every structural invariant
//!   the builder established (offset monotonicity, id ranges, positive
//!   weights, term-vocabulary bounds, per-span UTF-8) is re-checked and a
//!   violation returns `None`. Snapshot files are operator-supplied input;
//!   the algorithm crates index without bounds checks on the strength of
//!   these invariants.

use crate::arena::{NameArena, NameIndex};
use crate::attributes::{AttributeData, AttributeStore};
use crate::graph::{HinGraph, Link};
use crate::ids::{ObjectId, ObjectTypeId, RelationId};
use crate::schema::{AttributeKind, Schema};
use genclus_stats::bytesio::{
    put_bytes, put_f64_slice, put_str, put_u16_slice, put_u32_slice, put_u64, put_u64_slice,
    ByteReader,
};

const KIND_CATEGORICAL: u64 = 0;
const KIND_NUMERICAL: u64 = 1;

impl Schema {
    /// Serializes the schema (object types, relations, attribute
    /// declarations) in declaration order.
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        put_u64(out, self.n_object_types() as u64);
        for t in 0..self.n_object_types() {
            put_str(out, self.object_type_name(ObjectTypeId::from_index(t)));
        }
        put_u64(out, self.n_relations() as u64);
        for (_, def) in self.relations() {
            put_str(out, &def.name);
            put_u64(out, def.source.index() as u64);
            put_u64(out, def.target.index() as u64);
        }
        put_u64(out, self.n_attributes() as u64);
        for (_, def) in self.attributes() {
            put_str(out, &def.name);
            match def.kind {
                AttributeKind::Categorical { vocab_size } => {
                    put_u64(out, KIND_CATEGORICAL);
                    put_u64(out, vocab_size as u64);
                }
                AttributeKind::Numerical => put_u64(out, KIND_NUMERICAL),
            }
        }
    }

    /// Inverse of [`Self::to_bytes`]; `None` on malformed input (truncation,
    /// out-of-range relation endpoints, unknown attribute kind tags, or
    /// entity counts that overflow the `u16` id space — the decode must
    /// never reach the `from_index` assertions).
    pub fn from_bytes(r: &mut ByteReader<'_>) -> Option<Self> {
        const MAX_U16_IDS: usize = u16::MAX as usize + 1;
        let mut s = Schema::new();
        let n_types = r.count(8)?;
        if n_types > MAX_U16_IDS {
            return None;
        }
        for _ in 0..n_types {
            let name = r.str()?;
            s.add_object_type(name);
        }
        let n_rel = r.count(8)?;
        if n_rel > MAX_U16_IDS {
            return None;
        }
        for _ in 0..n_rel {
            let name = r.str()?;
            let source: usize = r.u64()?.try_into().ok()?;
            let target: usize = r.u64()?.try_into().ok()?;
            if source >= n_types || target >= n_types {
                return None;
            }
            s.add_relation(
                name,
                ObjectTypeId::from_index(source),
                ObjectTypeId::from_index(target),
            );
        }
        let n_attr = r.count(8)?;
        if n_attr > MAX_U16_IDS {
            return None;
        }
        for _ in 0..n_attr {
            let name = r.str()?;
            match r.u64()? {
                KIND_CATEGORICAL => {
                    let vocab: usize = r.u64()?.try_into().ok()?;
                    s.add_categorical_attribute(name, vocab);
                }
                KIND_NUMERICAL => {
                    s.add_numerical_attribute(name);
                }
                _ => return None,
            }
        }
        Some(s)
    }
}

/// Writes a link array as three packed parallel slices (endpoints,
/// relations, weights) — struct-of-arrays keeps the encoding free of
/// per-link padding.
fn put_links(out: &mut Vec<u8>, links: &[Link]) {
    let endpoints: Vec<u32> = links.iter().map(|l| l.endpoint.0).collect();
    let relations: Vec<u16> = links.iter().map(|l| l.relation.0).collect();
    let weights: Vec<f64> = links.iter().map(|l| l.weight).collect();
    put_u32_slice(out, &endpoints);
    put_u16_slice(out, &relations);
    put_f64_slice(out, &weights);
}

/// Reads a link array; validates endpoint/relation ranges and weight
/// positivity. Allocates the output exactly once (collecting through
/// `Option` would grow by doubling, making the allocation count depend on
/// the link count).
fn read_links(r: &mut ByteReader<'_>, n_objects: usize, n_rel: usize) -> Option<Vec<Link>> {
    let endpoints = r.u32_slice()?;
    let relations = r.u16_slice()?;
    let weights = r.f64_slice()?;
    if endpoints.len() != relations.len() || endpoints.len() != weights.len() {
        return None;
    }
    let mut links = Vec::with_capacity(endpoints.len());
    for ((e, rel), w) in endpoints.into_iter().zip(relations).zip(weights) {
        if !((e as usize) < n_objects && (rel as usize) < n_rel && w > 0.0 && w.is_finite()) {
            return None;
        }
        links.push(Link {
            endpoint: ObjectId(e),
            relation: RelationId(rel),
            weight: w,
        });
    }
    Some(links)
}

/// `offsets` must be a monotone CSR offset array of `n + 1` entries ending
/// at `total`.
fn offsets_valid(offsets: &[u32], n: usize, total: usize) -> bool {
    offsets.len() == n + 1
        && offsets[0] == 0
        && offsets.windows(2).all(|w| w[0] <= w[1])
        && offsets[n] as usize == total
}

fn put_attr_table(out: &mut Vec<u8>, table: &AttributeData) {
    match table {
        AttributeData::Categorical {
            vocab_size,
            offsets,
            entries,
        } => {
            put_u64(out, KIND_CATEGORICAL);
            put_u64(out, *vocab_size as u64);
            // The wire format predates the CSR flattening (u64 offsets,
            // split term/value arrays) and is deliberately unchanged — the
            // schema bump is about the name block, not the attributes.
            let wide: Vec<u64> = offsets.iter().map(|&o| o as u64).collect();
            let terms: Vec<u32> = entries.iter().map(|&(t, _)| t).collect();
            let values: Vec<f64> = entries.iter().map(|&(_, c)| c).collect();
            put_u64_slice(out, &wide);
            put_u32_slice(out, &terms);
            put_f64_slice(out, &values);
        }
        AttributeData::Numerical { offsets, values } => {
            put_u64(out, KIND_NUMERICAL);
            let wide: Vec<u64> = offsets.iter().map(|&o| o as u64).collect();
            put_u64_slice(out, &wide);
            put_f64_slice(out, values);
        }
    }
}

fn read_attr_table(
    r: &mut ByteReader<'_>,
    n_objects: usize,
    kind: &AttributeKind,
) -> Option<AttributeData> {
    match (r.u64()?, kind) {
        (KIND_CATEGORICAL, AttributeKind::Categorical { vocab_size }) => {
            let vocab: usize = r.u64()?.try_into().ok()?;
            if vocab != *vocab_size {
                return None;
            }
            let wide = r.u64_slice()?;
            let terms = r.u32_slice()?;
            let values = r.f64_slice()?;
            if terms.len() != values.len() {
                return None;
            }
            read_offsets_validated(&wide, n_objects, terms.len())?;
            // Builder invariants: terms strictly ascending per object,
            // counts positive and finite.
            for w in wide.windows(2) {
                let row = &terms[w[0] as usize..w[1] as usize];
                if !row.windows(2).all(|p| p[0] < p[1]) {
                    return None;
                }
            }
            if terms.iter().any(|&t| (t as usize) >= vocab)
                || values.iter().any(|&c| !(c > 0.0 && c.is_finite()))
            {
                return None;
            }
            let offsets = narrow_offsets(&wide)?;
            let entries: Vec<(u32, f64)> = terms.into_iter().zip(values).collect();
            Some(AttributeData::Categorical {
                vocab_size: vocab,
                offsets,
                entries,
            })
        }
        (KIND_NUMERICAL, AttributeKind::Numerical) => {
            let wide = r.u64_slice()?;
            let flat = r.f64_slice()?;
            read_offsets_validated(&wide, n_objects, flat.len())?;
            if flat.iter().any(|x| !x.is_finite()) {
                return None;
            }
            let offsets = narrow_offsets(&wide)?;
            Some(AttributeData::Numerical {
                offsets,
                values: flat,
            })
        }
        _ => None,
    }
}

fn read_offsets_validated(offsets: &[u64], n: usize, total: usize) -> Option<()> {
    (offsets.len() == n + 1
        && offsets[0] == 0
        && offsets.windows(2).all(|w| w[0] <= w[1])
        && offsets[n] as usize == total)
        .then_some(())
}

/// Narrows wire `u64` offsets to the in-memory `u32` form; `None` if any
/// offset exceeds `u32` (the capacity the construction paths enforce).
/// Single exact allocation — see [`read_links`].
fn narrow_offsets(wide: &[u64]) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(wide.len());
    for &o in wide {
        out.push(u32::try_from(o).ok()?);
    }
    Some(out)
}

impl HinGraph {
    /// Serializes the complete network: schema, object table, both CSR
    /// adjacencies, attribute tables, and the per-relation indexes.
    ///
    /// Always emits the **canonical** (compacted) form: a graph carrying
    /// out-link overflow segments serializes exactly the bytes its
    /// [`HinGraph::compact`]ed self would — the overflow is folded into
    /// temporary CSR arrays on the fly, without mutating `self` — so
    /// save → load → save byte identity holds whether or not the caller
    /// compacted first, and snapshot files never contain overflow.
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        self.to_bytes_impl(out, false);
    }

    /// Serializes in the **pre-arena** (snapshot schema v1) layout: one
    /// length-prefixed string per object instead of the arena block.
    /// Exists so the compat tests can fabricate v1 payloads; production
    /// writers always emit the current layout.
    #[doc(hidden)]
    pub fn to_bytes_v1(&self, out: &mut Vec<u8>) {
        self.to_bytes_impl(out, true);
    }

    fn to_bytes_impl(&self, out: &mut Vec<u8>, v1_names: bool) {
        let compacted = self.has_overflow().then(|| self.compacted_out_arrays());
        let (out_offsets, out_links, out_rel_offsets, rel_weights) = match &compacted {
            Some((oo, ol, oro, rw)) => {
                (oo.as_slice(), ol.as_slice(), oro.as_slice(), rw.as_slice())
            }
            None => (
                self.out_offsets.as_slice(),
                self.out_links.as_slice(),
                self.out_rel_offsets.as_slice(),
                self.rel_weights.as_slice(),
            ),
        };
        self.schema.to_bytes(out);
        put_u64(out, self.n_objects() as u64);
        let types: Vec<u16> = self.obj_types.iter().map(|t| t.0).collect();
        put_u16_slice(out, &types);
        if v1_names {
            for i in 0..self.obj_names.len() {
                put_str(out, self.obj_names.get(i));
            }
        } else {
            put_u32_slice(out, self.obj_names.raw_offsets());
            put_bytes(out, self.obj_names.raw_bytes());
        }
        put_u32_slice(out, out_offsets);
        put_links(out, out_links);
        put_u32_slice(out, &self.in_offsets);
        put_links(out, &self.in_links);
        put_u64(out, self.attrs.tables.len() as u64);
        for table in &self.attrs.tables {
            put_attr_table(out, table);
        }
        put_u32_slice(out, out_rel_offsets);
        put_f64_slice(out, &self.out_rel_weight);
        put_u32_slice(out, &self.rel_counts);
        put_f64_slice(out, rel_weights);
    }

    /// Inverse of [`Self::to_bytes`]. Re-validates every structural
    /// invariant and re-derives the name → id map; returns `None` on any
    /// inconsistency.
    pub fn from_bytes(r: &mut ByteReader<'_>) -> Option<Self> {
        Self::from_bytes_impl(r, false)
    }

    /// Decodes the **pre-arena** (snapshot schema v1) layout — the compat
    /// shim the serve crate dispatches to when a v1 header is seen. The
    /// per-object strings are interned straight into a [`NameArena`];
    /// no `String` is ever materialized.
    pub fn from_bytes_v1(r: &mut ByteReader<'_>) -> Option<Self> {
        Self::from_bytes_impl(r, true)
    }

    fn from_bytes_impl(r: &mut ByteReader<'_>, v1_names: bool) -> Option<Self> {
        let schema = Schema::from_bytes(r)?;
        let n_rel = schema.n_relations();
        let n: usize = r.u64()?.try_into().ok()?;
        let types = r.u16_slice()?;
        if types.len() != n
            || types
                .iter()
                .any(|&t| (t as usize) >= schema.n_object_types())
        {
            return None;
        }
        let obj_types: Vec<ObjectTypeId> = types.into_iter().map(ObjectTypeId).collect();
        let obj_names = if v1_names {
            let mut arena = NameArena::with_capacity(n, 0);
            for _ in 0..n {
                let len = r.count(1)?;
                let name = std::str::from_utf8(r.bytes(len)?).ok()?;
                r.align8()?;
                arena.push(name).ok()?;
            }
            arena
        } else {
            // lint: region(scale-hot)
            let offsets = r.u32_slice()?;
            let blob = r.byte_blob()?;
            if offsets.len() != n + 1 {
                return None;
            }
            let arena = NameArena::from_raw_parts(blob.to_vec(), offsets)?;
            // lint: end-region
            arena
        };
        let out_offsets = r.u32_slice()?;
        let out_links = read_links(r, n, n_rel)?;
        if !offsets_valid(&out_offsets, n, out_links.len()) {
            return None;
        }
        let in_offsets = r.u32_slice()?;
        let in_links = read_links(r, n, n_rel)?;
        if !offsets_valid(&in_offsets, n, in_links.len()) || in_links.len() != out_links.len() {
            return None;
        }
        let n_attr = r.count(8)?;
        if n_attr != schema.n_attributes() {
            return None;
        }
        let mut tables = Vec::with_capacity(n_attr);
        for a in 0..n_attr {
            let kind = &schema
                .attribute(crate::ids::AttributeId::from_index(a))
                .kind;
            tables.push(read_attr_table(r, n, kind)?);
        }
        let out_rel_offsets = r.u32_slice()?;
        if out_rel_offsets.len() != n * (n_rel + 1) {
            return None;
        }
        let out_rel_weight = r.f64_slice()?;
        if out_rel_weight.len() != n * n_rel {
            return None;
        }
        let rel_counts = r.u32_slice()?;
        let rel_weights = r.f64_slice()?;
        if rel_counts.len() != n_rel || rel_weights.len() != n_rel {
            return None;
        }
        // Per-relation sub-segments must tile each object's out segment.
        let stride = n_rel + 1;
        for v in 0..n {
            let row = &out_rel_offsets[v * stride..(v + 1) * stride];
            if row[0] != out_offsets[v]
                || row[n_rel] != out_offsets[v + 1]
                || row.windows(2).any(|w| w[0] > w[1])
            {
                return None;
            }
        }
        let name_index = NameIndex::build(&obj_names);
        Some(HinGraph {
            schema,
            obj_types,
            obj_names,
            out_offsets,
            out_links,
            in_offsets,
            in_links,
            attrs: AttributeStore { tables },
            name_index,
            out_rel_offsets,
            out_rel_weight,
            rel_counts,
            rel_weights,
            overflow: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HinBuilder;

    fn toy() -> HinGraph {
        let mut s = Schema::new();
        let a = s.add_object_type("author");
        let p = s.add_object_type("paper");
        let w = s.add_relation("write", a, p);
        let wb = s.add_relation("written_by", p, a);
        let text = s.add_categorical_attribute("text", 5);
        let year = s.add_numerical_attribute("year");
        let mut b = HinBuilder::new(s);
        let a0 = b.add_object(a, "alice");
        let a1 = b.add_object(a, "bob");
        let p0 = b.add_object(p, "p0");
        let p1 = b.add_object(p, "p1");
        b.add_link_pair(a0, p0, w, wb, 1.0).unwrap();
        b.add_link_pair(a0, p1, w, wb, 2.5).unwrap();
        b.add_link_pair(a1, p1, w, wb, 0.5).unwrap();
        b.add_terms(p0, text, &[0, 2, 2]).unwrap();
        b.add_numeric(p0, year, 2012.0).unwrap();
        b.add_numeric(p1, year, 2013.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn schema_round_trips() {
        let g = toy();
        let mut bytes = Vec::new();
        g.schema().to_bytes(&mut bytes);
        let back = Schema::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(&back, g.schema());
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn graph_round_trips_byte_identically() {
        let g = toy();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        let back = HinGraph::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, bytes, "save → load → save must be byte-identical");
        // Structure survives, including the derived indexes and name map.
        assert_eq!(back.n_objects(), g.n_objects());
        assert_eq!(back.n_links(), g.n_links());
        assert_eq!(back.object_by_name("alice"), g.object_by_name("alice"));
        let w = g.schema().relation_by_name("write").unwrap();
        for v in g.objects() {
            assert!(back.out_links(v).eq(g.out_links(v)));
            assert_eq!(back.in_links(v), g.in_links(v));
            assert_eq!(back.out_weight(v, w), g.out_weight(v, w));
        }
        let text = g.schema().attribute_by_name("text").unwrap();
        assert_eq!(
            back.attribute(text).term_counts(ObjectId(2)),
            g.attribute(text).term_counts(ObjectId(2))
        );
    }

    #[test]
    fn appended_graphs_round_trip_byte_identically() {
        // The delta path must not produce anything the codec treats
        // specially: grow a *loaded* graph, save it, and require the bytes
        // to load back and re-save identically — the serve crate's refresh
        // loop (load → append → re-snapshot) leans on exactly this.
        let g = toy();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        let mut loaded = HinGraph::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        let author = loaded.schema().object_type_by_name("author").unwrap();
        let w = loaded.schema().relation_by_name("write").unwrap();
        let mut d = crate::delta::GraphDelta::new(&loaded);
        let carol = d.add_object(author, "carol");
        d.add_link(carol, ObjectId(2), w, 1.5).unwrap();
        loaded.append(d).unwrap();

        let mut grown = Vec::new();
        loaded.to_bytes(&mut grown);
        let back = HinGraph::from_bytes(&mut ByteReader::new(&grown)).unwrap();
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, grown, "appended graph must stay byte-stable");
        assert_eq!(back.object_by_name("carol"), Some(carol));
        assert_eq!(back.out_links(carol).count(), 1);
    }

    #[test]
    fn malformed_graphs_are_rejected() {
        let g = toy();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        // Truncations at every prefix must fail cleanly, never panic.
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                HinGraph::from_bytes(&mut ByteReader::new(&bytes[..cut])).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn v1_name_layout_round_trips_through_the_shim() {
        let g = toy();
        let mut v1 = Vec::new();
        g.to_bytes_v1(&mut v1);
        let back = HinGraph::from_bytes_v1(&mut ByteReader::new(&v1)).unwrap();
        // The shim interns names into the arena; everything else matches.
        assert_eq!(back.object_by_name("alice"), g.object_by_name("alice"));
        assert_eq!(back.object_name(ObjectId(3)), g.object_name(ObjectId(3)));
        assert_eq!(back.n_links(), g.n_links());
        // v1 save → load → v1 save stays byte-identical too: the legacy
        // layout is frozen, not merely readable.
        let mut again = Vec::new();
        back.to_bytes_v1(&mut again);
        assert_eq!(again, v1, "v1 layout must stay byte-stable");
        // And re-saving in the current layout equals a direct current save.
        let (mut cur_direct, mut cur_via_v1) = (Vec::new(), Vec::new());
        g.to_bytes(&mut cur_direct);
        back.to_bytes(&mut cur_via_v1);
        assert_eq!(cur_via_v1, cur_direct, "v1 → v2 migration is lossless");
    }

    #[test]
    fn v1_and_v2_layouts_differ() {
        // A v2 payload must not accidentally parse as v1 (or vice versa) —
        // the serve header, not sniffing, selects the decoder.
        let g = toy();
        let (mut v1, mut v2) = (Vec::new(), Vec::new());
        g.to_bytes_v1(&mut v1);
        g.to_bytes(&mut v2);
        assert_ne!(v1, v2);
        assert!(HinGraph::from_bytes(&mut ByteReader::new(&v1)).is_none());
    }

    #[test]
    fn corrupt_arena_blocks_are_rejected() {
        let g = toy();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        // The name block sits right after the (8-padded) type slice; find it
        // by locating the arena byte blob and corrupting a name byte to a
        // UTF-8 continuation byte — decode must refuse, not panic.
        let needle = b"alice";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        let mut bad = bytes.clone();
        bad[at] = 0xBF;
        assert!(HinGraph::from_bytes(&mut ByteReader::new(&bad)).is_none());
    }

    #[test]
    fn empty_graph_round_trips() {
        let mut s = Schema::new();
        s.add_object_type("t");
        s.add_numerical_attribute("x");
        let g = HinBuilder::new(s).build().unwrap();
        let mut bytes = Vec::new();
        g.to_bytes(&mut bytes);
        let back = HinGraph::from_bytes(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.n_objects(), 0);
        assert_eq!(back.schema().n_attributes(), 1);
    }
}
