//! Per-attribute observation storage.
//!
//! Each attribute `X` stores, for every object, an observation list `v[X]`
//! (possibly empty — the incompleteness the paper's title refers to):
//!
//! * categorical attributes store sparse term counts `c_{v,l}` — the paper's
//!   term bags of Eq. 3;
//! * numerical attributes store the raw value list of Eq. 4.
//!
//! `V_X` — the set of objects carrying at least one observation of `X` — is
//! exactly the set of objects the attribute part of the EM update touches;
//! [`AttributeData::objects_with_observations`] materializes it.
//!
//! # Layout
//!
//! Observation rows are stored **flattened** in CSR form: one contiguous
//! entry array plus a `u32` offset table with `n + 1` entries (row `v` is
//! `entries[offsets[v]..offsets[v+1]]`). The former `Vec<Vec<..>>` layout
//! cost one heap allocation per observed object — at million-object scale
//! that dominated both build time and resident memory, and made snapshot
//! decode allocate per object. The flattened form decodes with a fixed
//! number of allocations regardless of object count.

use crate::ids::ObjectId;

/// Observations of a single attribute across all objects, flattened CSR.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeData {
    /// Sparse term counts per object: `(term index, count)` pairs sorted by
    /// term index within each row. Counts are `f64` so generators may use
    /// fractional weights.
    Categorical {
        /// Vocabulary size (term indices are `0..vocab_size`).
        vocab_size: usize,
        /// Row boundaries: object `v`'s pairs are
        /// `entries[offsets[v] as usize..offsets[v+1] as usize]`.
        offsets: Vec<u32>,
        /// All term-count pairs, concatenated in object order.
        entries: Vec<(u32, f64)>,
    },
    /// Raw numerical observation lists per object.
    Numerical {
        /// Row boundaries: object `v`'s values are
        /// `values[offsets[v] as usize..offsets[v+1] as usize]`.
        offsets: Vec<u32>,
        /// All observations, concatenated in object order.
        values: Vec<f64>,
    },
}

/// Flattens nested rows into `(offsets, entries)`.
fn flatten<T: Copy>(rows: &[Vec<T>]) -> (Vec<u32>, Vec<T>) {
    let total: usize = rows.iter().map(Vec::len).sum();
    let mut offsets = Vec::with_capacity(rows.len() + 1);
    let mut entries = Vec::with_capacity(total);
    offsets.push(0u32);
    for row in rows {
        entries.extend_from_slice(row);
        offsets.push(entries.len() as u32);
    }
    (offsets, entries)
}

impl AttributeData {
    /// A categorical table from per-object rows (test/generator surface;
    /// the hot construction paths build the CSR arrays directly).
    pub fn categorical_from_rows(vocab_size: usize, rows: &[Vec<(u32, f64)>]) -> Self {
        let (offsets, entries) = flatten(rows);
        Self::Categorical {
            vocab_size,
            offsets,
            entries,
        }
    }

    /// A numerical table from per-object rows.
    pub fn numerical_from_rows(rows: &[Vec<f64>]) -> Self {
        let (offsets, values) = flatten(rows);
        Self::Numerical { offsets, values }
    }

    /// Number of objects this table has rows for.
    pub fn n_objects(&self) -> usize {
        match self {
            Self::Categorical { offsets, .. } | Self::Numerical { offsets, .. } => {
                offsets.len() - 1
            }
        }
    }

    /// Number of objects with at least one observation (`|V_X|`).
    pub fn n_observed_objects(&self) -> usize {
        let offsets = match self {
            Self::Categorical { offsets, .. } | Self::Numerical { offsets, .. } => offsets,
        };
        offsets.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// Total number of observations across all objects
    /// (categorical counts sum; numerical list lengths).
    pub fn n_observations(&self) -> f64 {
        match self {
            Self::Categorical { entries, .. } => entries.iter().map(|&(_, n)| n).sum(),
            Self::Numerical { values, .. } => values.len() as f64,
        }
    }

    /// Whether object `v` has any observation of this attribute.
    pub fn has_observations(&self, v: ObjectId) -> bool {
        let offsets = match self {
            Self::Categorical { offsets, .. } | Self::Numerical { offsets, .. } => offsets,
        };
        offsets[v.index()] < offsets[v.index() + 1]
    }

    /// Ids of all objects with at least one observation, ascending.
    pub fn objects_with_observations(&self) -> Vec<ObjectId> {
        let offsets = match self {
            Self::Categorical { offsets, .. } | Self::Numerical { offsets, .. } => offsets,
        };
        offsets
            .windows(2)
            .enumerate()
            .filter(|&(_i, w)| w[0] < w[1])
            .map(|(i, _w)| ObjectId::from_index(i))
            .collect()
    }

    /// Term counts of object `v`.
    ///
    /// # Panics
    /// Panics if the attribute is numerical.
    pub fn term_counts(&self, v: ObjectId) -> &[(u32, f64)] {
        match self {
            Self::Categorical {
                offsets, entries, ..
            } => &entries[offsets[v.index()] as usize..offsets[v.index() + 1] as usize],
            Self::Numerical { .. } => panic!("term_counts on a numerical attribute"),
        }
    }

    /// Every term-count pair of every object, concatenated in object order
    /// — the global-histogram scan of the attribute model initializers.
    ///
    /// # Panics
    /// Panics if the attribute is numerical.
    pub fn all_term_counts(&self) -> &[(u32, f64)] {
        match self {
            Self::Categorical { entries, .. } => entries,
            Self::Numerical { .. } => panic!("all_term_counts on a numerical attribute"),
        }
    }

    /// Numerical values of object `v`.
    ///
    /// # Panics
    /// Panics if the attribute is categorical.
    pub fn values(&self, v: ObjectId) -> &[f64] {
        match self {
            Self::Numerical { offsets, values } => {
                &values[offsets[v.index()] as usize..offsets[v.index() + 1] as usize]
            }
            Self::Categorical { .. } => panic!("values on a categorical attribute"),
        }
    }

    /// Every numerical observation of every object, concatenated in object
    /// order.
    ///
    /// # Panics
    /// Panics if the attribute is categorical.
    pub fn all_values(&self) -> &[f64] {
        match self {
            Self::Numerical { values, .. } => values,
            Self::Categorical { .. } => panic!("all_values on a categorical attribute"),
        }
    }

    /// Vocabulary size of a categorical attribute.
    ///
    /// # Panics
    /// Panics if the attribute is numerical.
    pub fn vocab_size(&self) -> usize {
        match self {
            Self::Categorical { vocab_size, .. } => *vocab_size,
            Self::Numerical { .. } => panic!("vocab_size on a numerical attribute"),
        }
    }

    /// Appends one object's row at the tail (the delta append path; new
    /// objects always receive the highest ids, so rows arrive in order).
    ///
    /// # Panics
    /// Panics on a kind mismatch — the delta validated kinds upfront.
    pub(crate) fn push_categorical_row(&mut self, row: &[(u32, f64)]) {
        match self {
            Self::Categorical {
                offsets, entries, ..
            } => {
                entries.extend_from_slice(row);
                offsets.push(entries.len() as u32);
            }
            Self::Numerical { .. } => panic!("categorical row on a numerical attribute"),
        }
    }

    /// Numerical counterpart of [`Self::push_categorical_row`].
    pub(crate) fn push_numerical_row(&mut self, row: &[f64]) {
        match self {
            Self::Numerical { offsets, values } => {
                values.extend_from_slice(row);
                offsets.push(values.len() as u32);
            }
            Self::Categorical { .. } => panic!("numerical row on a categorical attribute"),
        }
    }
}

/// All attribute observation tables of a network, indexed by `AttributeId`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeStore {
    /// One table per declared attribute.
    pub tables: Vec<AttributeData>,
}

impl AttributeStore {
    /// Table of attribute `a`.
    pub fn table(&self, a: crate::ids::AttributeId) -> &AttributeData {
        &self.tables[a.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn categorical_fixture() -> AttributeData {
        AttributeData::categorical_from_rows(
            5,
            &[
                vec![(0, 2.0), (3, 1.0)], // object 0
                vec![],                   // object 1: incomplete!
                vec![(4, 7.0)],           // object 2
            ],
        )
    }

    #[test]
    fn observed_object_accounting() {
        let a = categorical_fixture();
        assert_eq!(a.n_objects(), 3);
        assert_eq!(a.n_observed_objects(), 2);
        assert_eq!(a.n_observations(), 10.0);
        assert!(a.has_observations(ObjectId(0)));
        assert!(!a.has_observations(ObjectId(1)));
        assert_eq!(
            a.objects_with_observations(),
            vec![ObjectId(0), ObjectId(2)]
        );
        assert_eq!(a.term_counts(ObjectId(0)), &[(0, 2.0), (3, 1.0)]);
        assert_eq!(a.term_counts(ObjectId(1)), &[]);
        assert_eq!(a.all_term_counts(), &[(0, 2.0), (3, 1.0), (4, 7.0)]);
    }

    #[test]
    fn numerical_accounting() {
        let a = AttributeData::numerical_from_rows(&[vec![1.0, 2.0], vec![], vec![3.5]]);
        assert_eq!(a.n_observed_objects(), 2);
        assert_eq!(a.n_observations(), 3.0);
        assert_eq!(a.values(ObjectId(2)), &[3.5]);
        assert_eq!(a.all_values(), &[1.0, 2.0, 3.5]);
    }

    #[test]
    fn row_push_extends_the_tail() {
        let mut a = categorical_fixture();
        a.push_categorical_row(&[(1, 4.0)]);
        a.push_categorical_row(&[]);
        assert_eq!(a.n_objects(), 5);
        assert_eq!(a.term_counts(ObjectId(3)), &[(1, 4.0)]);
        assert!(!a.has_observations(ObjectId(4)));

        let mut n = AttributeData::numerical_from_rows(&[vec![1.0]]);
        n.push_numerical_row(&[2.0, 3.0]);
        assert_eq!(n.values(ObjectId(1)), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "numerical attribute")]
    fn kind_confusion_panics() {
        let a = AttributeData::numerical_from_rows(&[]);
        let _ = a.term_counts(ObjectId(0));
    }

    #[test]
    fn vocab_size_reported() {
        assert_eq!(categorical_fixture().vocab_size(), 5);
    }
}
