//! Per-attribute observation storage.
//!
//! Each attribute `X` stores, for every object, an observation list `v[X]`
//! (possibly empty — the incompleteness the paper's title refers to):
//!
//! * categorical attributes store sparse term counts `c_{v,l}` — the paper's
//!   term bags of Eq. 3;
//! * numerical attributes store the raw value list of Eq. 4.
//!
//! `V_X` — the set of objects carrying at least one observation of `X` — is
//! exactly the set of objects the attribute part of the EM update touches;
//! [`AttributeData::objects_with_observations`] materializes it.

use crate::ids::ObjectId;

/// Observations of a single attribute across all objects.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeData {
    /// Sparse term counts per object: `(term index, count)` pairs sorted by
    /// term index. Counts are `f64` so generators may use fractional weights.
    Categorical {
        /// Vocabulary size (term indices are `0..vocab_size`).
        vocab_size: usize,
        /// `counts[v]` = term-count pairs of object `v`.
        counts: Vec<Vec<(u32, f64)>>,
    },
    /// Raw numerical observation lists per object.
    Numerical {
        /// `values[v]` = observation list of object `v`.
        values: Vec<Vec<f64>>,
    },
}

impl AttributeData {
    /// Number of objects with at least one observation (`|V_X|`).
    pub fn n_observed_objects(&self) -> usize {
        match self {
            Self::Categorical { counts, .. } => counts.iter().filter(|c| !c.is_empty()).count(),
            Self::Numerical { values } => values.iter().filter(|v| !v.is_empty()).count(),
        }
    }

    /// Total number of observations across all objects
    /// (categorical counts sum; numerical list lengths).
    pub fn n_observations(&self) -> f64 {
        match self {
            Self::Categorical { counts, .. } => {
                counts.iter().flat_map(|c| c.iter().map(|&(_, n)| n)).sum()
            }
            Self::Numerical { values } => values.iter().map(|v| v.len() as f64).sum(),
        }
    }

    /// Whether object `v` has any observation of this attribute.
    pub fn has_observations(&self, v: ObjectId) -> bool {
        match self {
            Self::Categorical { counts, .. } => !counts[v.index()].is_empty(),
            Self::Numerical { values } => !values[v.index()].is_empty(),
        }
    }

    /// Ids of all objects with at least one observation, ascending.
    pub fn objects_with_observations(&self) -> Vec<ObjectId> {
        let has: Box<dyn Iterator<Item = bool> + '_> = match self {
            Self::Categorical { counts, .. } => Box::new(counts.iter().map(|c| !c.is_empty())),
            Self::Numerical { values } => Box::new(values.iter().map(|v| !v.is_empty())),
        };
        has.enumerate()
            .filter(|&(_i, h)| h)
            .map(|(i, _h)| ObjectId::from_index(i))
            .collect()
    }

    /// Term counts of object `v`.
    ///
    /// # Panics
    /// Panics if the attribute is numerical.
    pub fn term_counts(&self, v: ObjectId) -> &[(u32, f64)] {
        match self {
            Self::Categorical { counts, .. } => &counts[v.index()],
            Self::Numerical { .. } => panic!("term_counts on a numerical attribute"),
        }
    }

    /// Numerical values of object `v`.
    ///
    /// # Panics
    /// Panics if the attribute is categorical.
    pub fn values(&self, v: ObjectId) -> &[f64] {
        match self {
            Self::Numerical { values } => &values[v.index()],
            Self::Categorical { .. } => panic!("values on a categorical attribute"),
        }
    }

    /// Vocabulary size of a categorical attribute.
    ///
    /// # Panics
    /// Panics if the attribute is numerical.
    pub fn vocab_size(&self) -> usize {
        match self {
            Self::Categorical { vocab_size, .. } => *vocab_size,
            Self::Numerical { .. } => panic!("vocab_size on a numerical attribute"),
        }
    }
}

/// All attribute observation tables of a network, indexed by `AttributeId`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeStore {
    /// One table per declared attribute.
    pub tables: Vec<AttributeData>,
}

impl AttributeStore {
    /// Table of attribute `a`.
    pub fn table(&self, a: crate::ids::AttributeId) -> &AttributeData {
        &self.tables[a.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn categorical_fixture() -> AttributeData {
        AttributeData::Categorical {
            vocab_size: 5,
            counts: vec![
                vec![(0, 2.0), (3, 1.0)], // object 0
                vec![],                   // object 1: incomplete!
                vec![(4, 7.0)],           // object 2
            ],
        }
    }

    #[test]
    fn observed_object_accounting() {
        let a = categorical_fixture();
        assert_eq!(a.n_observed_objects(), 2);
        assert_eq!(a.n_observations(), 10.0);
        assert!(a.has_observations(ObjectId(0)));
        assert!(!a.has_observations(ObjectId(1)));
        assert_eq!(
            a.objects_with_observations(),
            vec![ObjectId(0), ObjectId(2)]
        );
    }

    #[test]
    fn numerical_accounting() {
        let a = AttributeData::Numerical {
            values: vec![vec![1.0, 2.0], vec![], vec![3.5]],
        };
        assert_eq!(a.n_observed_objects(), 2);
        assert_eq!(a.n_observations(), 3.0);
        assert_eq!(a.values(ObjectId(2)), &[3.5]);
    }

    #[test]
    #[should_panic(expected = "numerical attribute")]
    fn kind_confusion_panics() {
        let a = AttributeData::Numerical { values: vec![] };
        let _ = a.term_counts(ObjectId(0));
    }

    #[test]
    fn vocab_size_reported() {
        assert_eq!(categorical_fixture().vocab_size(), 5);
    }
}
