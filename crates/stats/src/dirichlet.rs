//! Dirichlet distribution utilities.
//!
//! The pseudo-log-likelihood of Eq. 14 factorizes the structural model into
//! per-object conditionals `p(θ_i | out-neighbors)`, each of which (Eq. 15)
//! is a `Dirichlet(α_i)` with `α_ik = Σ_{e=⟨v_i,v_j⟩} γ(φ(e)) w(e) θ_{j,k} + 1`.
//! Its local partition function is the multivariate Beta `B(α_i)` whose log
//! is computed here.

use crate::special::ln_gamma;

/// `ln B(α) = Σ ln Γ(α_k) − ln Γ(Σ α_k)`, the log-normalizer of a Dirichlet.
///
/// # Panics
/// Panics in debug builds if any `α_k ≤ 0`.
pub fn ln_beta(alpha: &[f64]) -> f64 {
    debug_assert!(
        alpha.iter().all(|&a| a > 0.0),
        "ln_beta needs positive alphas"
    );
    let mut sum_ln_gamma = 0.0;
    let mut sum_alpha = 0.0;
    for &a in alpha {
        sum_ln_gamma += ln_gamma(a);
        sum_alpha += a;
    }
    sum_ln_gamma - ln_gamma(sum_alpha)
}

/// Log-density of `Dirichlet(alpha)` at `theta` (which must lie on the
/// simplex; entries are floored at `1e-300` inside the `log`).
pub fn dirichlet_log_pdf(alpha: &[f64], theta: &[f64]) -> f64 {
    debug_assert_eq!(alpha.len(), theta.len());
    let mut acc = -ln_beta(alpha);
    for (&a, &t) in alpha.iter().zip(theta) {
        acc += (a - 1.0) * t.max(1e-300).ln();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_beta_two_components_matches_beta_function() {
        // B(a, b) = Γ(a)Γ(b)/Γ(a+b); B(2, 3) = 1!·2!/4! = 1/12.
        assert!((ln_beta(&[2.0, 3.0]) - (1.0f64 / 12.0).ln()).abs() < 1e-12);
        // B(1, 1) = 1.
        assert!(ln_beta(&[1.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn uniform_dirichlet_density_is_reciprocal_simplex_volume() {
        // Dirichlet(1,1,1) is uniform on the 2-simplex with density 1/B(1,1,1) = 2.
        let pdf = dirichlet_log_pdf(&[1.0, 1.0, 1.0], &[0.2, 0.3, 0.5]).exp();
        assert!((pdf - 2.0).abs() < 1e-10);
    }

    #[test]
    fn density_integrates_to_one_monte_carlo() {
        // Estimate ∫ pdf over the simplex by importance sampling from the
        // uniform Dirichlet: E_uniform[pdf / 2] ≈ 1/2 · mean → integral 1.
        use crate::rng::{sample_dirichlet, seeded_rng};
        let mut rng = seeded_rng(11);
        let alpha = [2.0, 1.5, 3.0];
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let t = sample_dirichlet(&mut rng, &[1.0, 1.0, 1.0]);
            acc += dirichlet_log_pdf(&alpha, &t).exp();
        }
        let integral = acc / n as f64 / 2.0; // divide by uniform density
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn mode_has_higher_density_than_tail() {
        let alpha = [5.0, 2.0, 2.0];
        // Mode of Dirichlet is (α_k − 1)/(Σα − K).
        let mode = [4.0 / 6.0, 1.0 / 6.0, 1.0 / 6.0];
        let tail = [0.05, 0.05, 0.9];
        assert!(dirichlet_log_pdf(&alpha, &mode) > dirichlet_log_pdf(&alpha, &tail));
    }
}
