//! Probability-simplex vectors and the membership matrix `Θ`.
//!
//! GenClus represents the soft clustering as `Θ (|V| × K)` with each row on
//! the `K`-simplex. Rows feed into `log` (cross-entropy feature function,
//! Eq. 6), so they are kept strictly positive: every normalization floors
//! entries at [`THETA_FLOOR`] before renormalizing.

/// Smallest membership probability kept after normalization.
///
/// Flooring keeps `log θ` finite; `1e-12` is far below any probability the
/// model can distinguish while keeping `|log θ| ≤ ~27.6`, so one degenerate
/// row cannot dominate the structural objective.
pub const THETA_FLOOR: f64 = 1e-12;

/// Shannon entropy `−Σ p_k ln p_k` of a probability vector (nats).
///
/// Zero entries contribute zero (the `p ln p → 0` limit).
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum()
}

/// Cross entropy `H(p, q) = −Σ p_k ln q_k` (nats).
///
/// This is the paper's `H(θ_j, θ_i)` with `p = θ_j` (the link target) and
/// `q = θ_i` (the link source); note the asymmetry. `q` entries are floored
/// at [`THETA_FLOOR`] so the result is finite.
pub fn cross_entropy(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q)
        .filter(|(&pk, _)| pk > 0.0)
        .map(|(&pk, &qk)| -pk * qk.max(THETA_FLOOR).ln())
        .sum()
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats.
///
/// Provided for the feature-function ablation discussed in §3.3 of the paper
/// (cross entropy is preferred because it additionally rewards concentrated
/// `θ_i`).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    cross_entropy(p, q) - entropy(p)
}

/// Normalizes `row` to the simplex with flooring.
///
/// Negative entries are clamped to zero first (callers accumulate weighted
/// sums that are mathematically non-negative; tiny negative dust can appear
/// from cancellation). If the row sums to zero it becomes uniform.
pub fn normalize_floored(row: &mut [f64]) {
    if row.is_empty() {
        return;
    }
    let mut sum = 0.0;
    for x in row.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
        sum += *x;
    }
    if sum <= 0.0 || !sum.is_finite() {
        let u = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|x| *x = u);
        return;
    }
    for x in row.iter_mut() {
        *x = (*x / sum).max(THETA_FLOOR);
    }
    // Renormalize after flooring so the row sums to exactly 1.
    let sum: f64 = row.iter().sum();
    row.iter_mut().for_each(|x| *x /= sum);
}

/// Index of the largest entry (ties broken towards the lower index).
pub fn argmax(row: &[f64]) -> usize {
    let mut best = 0;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &x) in row.iter().enumerate() {
        if x > best_val {
            best_val = x;
            best = i;
        }
    }
    best
}

/// Soft cluster-membership matrix: one simplex row of length `k` per object.
///
/// This is the paper's `Θ`. Storage is flat row-major `Vec<f64>` so E/M steps
/// iterate cache-friendly slices; rows are guaranteed strictly positive and
/// summing to one as long as they are only mutated through
/// [`MembershipMatrix::set_row`] / [`MembershipMatrix::normalize_row`].
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipMatrix {
    data: Vec<f64>,
    n: usize,
    k: usize,
}

impl MembershipMatrix {
    /// A matrix of `n` uniform rows over `k` clusters.
    pub fn uniform(n: usize, k: usize) -> Self {
        assert!(k > 0, "cluster count must be positive");
        Self {
            data: vec![1.0 / k as f64; n * k],
            n,
            k,
        }
    }

    /// A matrix with rows sampled uniformly from the simplex
    /// (via `Dirichlet(1, …, 1)`).
    pub fn random<R: rand::Rng>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "cluster count must be positive");
        let mut m = Self::uniform(n, k);
        let alpha = vec![1.0; k];
        let mut buf = vec![0.0; k];
        for i in 0..n {
            crate::rng::sample_dirichlet_into(rng, &alpha, &mut buf);
            m.set_row(i, &buf);
        }
        m
    }

    /// Builds a matrix from rows, normalizing each.
    ///
    /// # Panics
    /// Panics if any row's length differs from `k`.
    pub fn from_rows(rows: &[Vec<f64>], k: usize) -> Self {
        let mut m = Self::uniform(rows.len(), k);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), k, "row {i} has length {} != k = {k}", r.len());
            m.set_row(i, r);
        }
        m
    }

    /// Number of objects (rows).
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.n
    }

    /// Number of clusters (columns).
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.k
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.k..(i + 1) * self.k]
    }

    /// Mutable view of row `i`.
    ///
    /// Callers must re-establish the simplex invariant (e.g. via
    /// [`Self::normalize_row`]) before the row is read by model code.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.k..(i + 1) * self.k]
    }

    /// Overwrites row `i` with `values`, then floors + normalizes it.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        let row = self.row_mut(i);
        row.copy_from_slice(values);
        normalize_floored(row);
    }

    /// Floors + normalizes row `i` in place.
    pub fn normalize_row(&mut self, i: usize) {
        normalize_floored(self.row_mut(i));
    }

    /// The whole matrix as a flat row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat access for bulk parallel updates. Invariants are the
    /// caller's responsibility, as with [`Self::row_mut`].
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Hard labels: argmax of each row.
    pub fn hard_labels(&self) -> Vec<usize> {
        (0..self.n).map(|i| argmax(self.row(i))).collect()
    }

    /// Maximum absolute entry-wise difference to another matrix of the same
    /// shape; used as the EM convergence criterion.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.n, other.n);
        assert_eq!(self.k, other.k);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Splits the flat storage into disjoint per-row chunks of `rows_per_chunk`
    /// rows for scoped-thread parallel updates.
    pub fn par_chunks_mut(&mut self, rows_per_chunk: usize) -> std::slice::ChunksMut<'_, f64> {
        self.data.chunks_mut(rows_per_chunk.max(1) * self.k)
    }

    /// Serializes as `[n u64][k u64][n·k raw f64 bit patterns]` (LE; see
    /// [`crate::bytesio`]) and returns the byte offset of the first matrix
    /// entry within the emitted bytes. Because every item is 8 bytes, a
    /// caller that starts writing at an 8-aligned position gets an 8-aligned
    /// data payload — the contract the serve crate's zero-copy `Θ` view
    /// relies on.
    pub fn to_bytes(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        crate::bytesio::put_u64(out, self.n as u64);
        crate::bytesio::put_u64(out, self.k as u64);
        let data_offset = out.len() - start;
        out.reserve(self.data.len() * 8);
        for &x in &self.data {
            crate::bytesio::put_f64(out, x);
        }
        data_offset
    }

    /// Inverse of [`Self::to_bytes`]. Returns `None` on truncation, a
    /// corrupt length prefix, zero `k`, or non-finite entries; entries are
    /// restored bit-exactly so write → read → write is byte-identical.
    pub fn from_bytes(r: &mut crate::bytesio::ByteReader<'_>) -> Option<Self> {
        let n: usize = r.u64()?.try_into().ok()?;
        let k: usize = r.u64()?.try_into().ok()?;
        if k == 0 || n.checked_mul(k)?.checked_mul(8)? > r.remaining() {
            return None;
        }
        let mut data = Vec::with_capacity(n * k);
        for _ in 0..n * k {
            let x = r.f64()?;
            if !x.is_finite() {
                return None;
            }
            data.push(x);
        }
        Some(Self { data, n, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn entropy_of_uniform_is_ln_k() {
        let p = [0.25; 4];
        assert!((entropy(&p) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        let p = [0.0, 1.0, 0.0];
        assert_eq!(entropy(&p), 0.0);
    }

    #[test]
    fn cross_entropy_minimized_at_equality_for_point_mass() {
        // H(p, q) ≥ H(p); equality iff p == q. For p a point mass H(p) = 0.
        let p = [1.0, 0.0];
        assert!(cross_entropy(&p, &[1.0, 0.0]).abs() < 1e-9);
        assert!(cross_entropy(&p, &[0.5, 0.5]) > 0.5);
    }

    #[test]
    fn paper_figure4_cross_entropy_values() {
        // Fig. 4 of the paper: f(⟨1,3⟩) = −0.4701 γ, f(⟨1,4⟩) = −1.7174 γ,
        // f(⟨1,5⟩) = −2.3410 γ, where f = −H(θ_j, θ_i) times γ·w, with
        // θ_1 = (5/6, 1/12, 1/12), θ_3 = (7/8, 1/16, 1/16), θ_4 uniform,
        // θ_5 = (1/16, 1/16, 7/8).
        let theta1 = [5.0 / 6.0, 1.0 / 12.0, 1.0 / 12.0];
        let theta3 = [7.0 / 8.0, 1.0 / 16.0, 1.0 / 16.0];
        let theta4 = [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0];
        let theta5 = [1.0 / 16.0, 1.0 / 16.0, 7.0 / 8.0];
        assert!((cross_entropy(&theta3, &theta1) - 0.4701).abs() < 5e-4);
        assert!((cross_entropy(&theta4, &theta1) - 1.7174).abs() < 5e-4);
        assert!((cross_entropy(&theta5, &theta1) - 2.3410).abs() < 5e-4);
        // And the asymmetric pair from the same figure: f(⟨4,1⟩) = −1.0986 γ
        // (H(θ_1, θ_4) = ln 3 because θ_4 is uniform).
        assert!((cross_entropy(&theta1, &theta4) - 1.0986).abs() < 5e-4);
    }

    #[test]
    fn kl_is_nonnegative_and_zero_at_equality() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        let q = [0.5, 0.25, 0.25];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn normalize_handles_zero_row() {
        let mut row = [0.0, 0.0, 0.0];
        normalize_floored(&mut row);
        for &x in &row {
            assert!((x - 1.0 / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    fn normalize_clamps_negatives() {
        let mut row = [-0.5, 1.0, 1.0];
        normalize_floored(&mut row);
        // The floored entry can dip a hair below THETA_FLOOR after the final
        // renormalization; strictly positive is the invariant that matters.
        assert!(row[0] >= THETA_FLOOR * 0.5);
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((row[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn membership_matrix_invariants() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = MembershipMatrix::random(50, 4, &mut rng);
        for i in 0..50 {
            let row = m.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn hard_labels_pick_argmax() {
        let m = MembershipMatrix::from_rows(
            &[
                vec![0.7, 0.2, 0.1],
                vec![0.1, 0.1, 0.8],
                vec![0.3, 0.4, 0.3],
            ],
            3,
        );
        assert_eq!(m.hard_labels(), vec![0, 2, 1]);
    }

    #[test]
    fn bytes_round_trip_is_exact_and_aligned() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let m = MembershipMatrix::random(17, 3, &mut rng);
        let mut bytes = Vec::new();
        let data_offset = m.to_bytes(&mut bytes);
        assert_eq!(data_offset, 16, "n and k headers precede the data");
        assert_eq!(bytes.len(), 16 + 17 * 3 * 8);
        let mut r = crate::bytesio::ByteReader::new(&bytes);
        let back = MembershipMatrix::from_bytes(&mut r).unwrap();
        assert_eq!(back, m, "bit-exact round trip");
        let mut again = Vec::new();
        back.to_bytes(&mut again);
        assert_eq!(again, bytes, "byte-identical re-serialization");
        // Truncation and corrupt prefixes are rejected, not panicked on.
        let mut r = crate::bytesio::ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(MembershipMatrix::from_bytes(&mut r).is_none());
        let mut corrupt = bytes.clone();
        corrupt[0] = 0xff; // absurd row count
        let mut r = crate::bytesio::ByteReader::new(&corrupt);
        assert!(MembershipMatrix::from_bytes(&mut r).is_none());
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = MembershipMatrix::uniform(3, 2);
        let mut b = a.clone();
        b.set_row(1, &[0.9, 0.1]);
        assert!((a.max_abs_diff(&b) - 0.4).abs() < 1e-9);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
