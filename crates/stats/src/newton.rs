//! Damped projected Newton–Raphson maximization under `x ≥ 0`.
//!
//! Algorithm 1 of the paper optimizes the strength vector `γ` by iterating
//! `γ ← γ − H⁻¹∇` followed by clamping negative coordinates to zero. The
//! pseudo-log-likelihood `g₂'` is concave (Appendix B), so the plain step is
//! usually safe; this implementation adds two inexpensive guards for the edge
//! cases that arise with degenerate networks:
//!
//! * backtracking — the step is halved until the objective does not
//!   decrease, so a badly scaled Hessian cannot diverge;
//! * gradient fallback — if the Hessian solve fails (e.g. an empty relation
//!   makes it singular), a projected gradient-ascent step is taken instead.

use crate::matrix::Matrix;

/// Behavioural knobs for [`ProjectedNewton`].
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Maximum number of Newton iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max-norm of the iterate change.
    pub tol: f64,
    /// Maximum number of step halvings per iteration.
    pub max_backtracks: usize,
    /// Initial step size for the gradient-ascent fallback.
    pub fallback_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-6,
            max_backtracks: 30,
            fallback_step: 1e-3,
        }
    }
}

/// A concave maximization problem over the non-negative orthant.
pub trait NewtonProblem {
    /// Objective value at `x`.
    fn value(&self, x: &[f64]) -> f64;
    /// Gradient at `x`, written into `out` (same length as `x`).
    fn gradient(&self, x: &[f64], out: &mut [f64]);
    /// Hessian at `x`, written into the square matrix `out`.
    fn hessian(&self, x: &[f64], out: &mut Matrix);
}

/// Result of a [`ProjectedNewton::maximize`] run.
#[derive(Debug, Clone)]
pub struct NewtonOutcome {
    /// Final iterate (projected onto `x ≥ 0`).
    pub x: Vec<f64>,
    /// Objective at the final iterate.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iters`.
    pub converged: bool,
    /// Whether any iteration fell back to projected gradient ascent.
    pub used_gradient_fallback: bool,
}

/// The solver. Stateless apart from its options; reusable across calls.
#[derive(Debug, Clone, Default)]
pub struct ProjectedNewton {
    /// Solver options.
    pub options: NewtonOptions,
}

impl ProjectedNewton {
    /// Creates a solver with the given options.
    pub fn new(options: NewtonOptions) -> Self {
        Self { options }
    }

    /// Maximizes `problem` starting from `x0` (clamped to `≥ 0` first).
    pub fn maximize<P: NewtonProblem>(&self, x0: &[f64], problem: &P) -> NewtonOutcome {
        let n = x0.len();
        let mut x: Vec<f64> = x0.iter().map(|&v| v.max(0.0)).collect();
        let mut value = problem.value(&x);
        let mut grad = vec![0.0; n];
        let mut hess = Matrix::zeros(n, n);
        let mut used_fallback = false;
        let mut converged = false;
        let mut iterations = 0;

        for _ in 0..self.options.max_iters {
            iterations += 1;
            problem.gradient(&x, &mut grad);
            problem.hessian(&x, &mut hess);

            // Newton direction d solves H d = ∇; the ascent step is x − d
            // because H is negative definite for concave objectives.
            let direction = hess.solve(&grad);
            let (step_dir, sign) = match direction {
                Some(d) => (d, -1.0),
                None => {
                    used_fallback = true;
                    (
                        grad.iter()
                            .map(|&g| g * self.options.fallback_step)
                            .collect(),
                        1.0,
                    )
                }
            };

            // Backtracking line search on the (projected) step.
            let mut t = 1.0;
            let mut accepted = false;
            for _ in 0..=self.options.max_backtracks {
                let candidate: Vec<f64> = x
                    .iter()
                    .zip(&step_dir)
                    .map(|(&xi, &di)| (xi + sign * t * di).max(0.0))
                    .collect();
                let cand_value = problem.value(&candidate);
                if cand_value.is_finite() && cand_value >= value - 1e-12 {
                    let delta = max_abs_delta(&x, &candidate);
                    x = candidate;
                    value = cand_value;
                    accepted = true;
                    if delta < self.options.tol {
                        converged = true;
                    }
                    break;
                }
                t *= 0.5;
            }
            if !accepted {
                // No step improved the objective: treat current iterate as
                // converged (we are at a constrained stationary point up to
                // line-search resolution).
                converged = true;
            }
            if converged {
                break;
            }
        }

        NewtonOutcome {
            x,
            value,
            iterations,
            converged,
            used_gradient_fallback: used_fallback,
        }
    }
}

fn max_abs_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = −Σ (x_k − c_k)², maximum at the projection of c onto x ≥ 0.
    struct Quadratic {
        c: Vec<f64>,
    }

    impl NewtonProblem for Quadratic {
        fn value(&self, x: &[f64]) -> f64 {
            -x.iter()
                .zip(&self.c)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        }
        fn gradient(&self, x: &[f64], out: &mut [f64]) {
            for ((o, &xi), &ci) in out.iter_mut().zip(x).zip(&self.c) {
                *o = -2.0 * (xi - ci);
            }
        }
        fn hessian(&self, _x: &[f64], out: &mut Matrix) {
            let n = out.rows();
            for i in 0..n {
                for j in 0..n {
                    out[(i, j)] = if i == j { -2.0 } else { 0.0 };
                }
            }
        }
    }

    #[test]
    fn quadratic_interior_maximum_in_one_step() {
        let p = Quadratic {
            c: vec![1.5, 0.3, 4.0],
        };
        let out = ProjectedNewton::default().maximize(&[0.0, 0.0, 0.0], &p);
        assert!(out.converged);
        for (got, want) in out.x.iter().zip(&p.c) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        assert!(out.iterations <= 3);
    }

    #[test]
    fn quadratic_boundary_maximum_is_projected() {
        // Unconstrained max at (−2, 3): the constrained max is (0, 3).
        let p = Quadratic { c: vec![-2.0, 3.0] };
        let out = ProjectedNewton::default().maximize(&[1.0, 1.0], &p);
        assert!((out.x[0] - 0.0).abs() < 1e-8);
        assert!((out.x[1] - 3.0).abs() < 1e-8);
    }

    /// Concave but non-quadratic: f(x) = Σ [ln(1 + x_k) − x_k/2], max at x = 1.
    struct LogProblem {
        n: usize,
    }

    impl NewtonProblem for LogProblem {
        fn value(&self, x: &[f64]) -> f64 {
            x.iter().map(|&v| (1.0 + v).ln() - 0.5 * v).sum()
        }
        fn gradient(&self, x: &[f64], out: &mut [f64]) {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = 1.0 / (1.0 + v) - 0.5;
            }
        }
        fn hessian(&self, x: &[f64], out: &mut Matrix) {
            for i in 0..self.n {
                for j in 0..self.n {
                    out[(i, j)] = if i == j {
                        -1.0 / ((1.0 + x[i]) * (1.0 + x[i]))
                    } else {
                        0.0
                    };
                }
            }
        }
    }

    #[test]
    fn non_quadratic_concave_converges_to_analytic_max() {
        let p = LogProblem { n: 4 };
        let out = ProjectedNewton::default().maximize(&[0.1, 2.0, 0.5, 3.0], &p);
        assert!(out.converged);
        for &v in &out.x {
            assert!((v - 1.0).abs() < 1e-6, "expected 1.0, got {v}");
        }
    }

    /// Objective whose Hessian is singular: forces the gradient fallback.
    struct SingularHessian;

    impl NewtonProblem for SingularHessian {
        fn value(&self, x: &[f64]) -> f64 {
            -(x[0] + x[1] - 1.0).powi(2)
        }
        fn gradient(&self, x: &[f64], out: &mut [f64]) {
            let g = -2.0 * (x[0] + x[1] - 1.0);
            out[0] = g;
            out[1] = g;
        }
        fn hessian(&self, _x: &[f64], out: &mut Matrix) {
            for i in 0..2 {
                for j in 0..2 {
                    out[(i, j)] = -2.0; // rank 1 → singular
                }
            }
        }
    }

    #[test]
    fn singular_hessian_falls_back_to_gradient_and_improves() {
        let p = SingularHessian;
        let start = [3.0, 3.0];
        let out = ProjectedNewton::new(NewtonOptions {
            max_iters: 500,
            fallback_step: 0.1,
            ..NewtonOptions::default()
        })
        .maximize(&start, &p);
        assert!(out.used_gradient_fallback);
        assert!(out.value > p.value(&start));
        assert!((out.x[0] + out.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn never_leaves_the_nonnegative_orthant() {
        let p = Quadratic {
            c: vec![-5.0, -1.0, 2.0],
        };
        let out = ProjectedNewton::default().maximize(&[0.5, 0.5, 0.5], &p);
        assert!(out.x.iter().all(|&v| v >= 0.0));
    }
}
