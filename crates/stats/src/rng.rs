//! Seeded sampling helpers.
//!
//! The `rand` crate (the only randomness dependency) provides uniform
//! sampling; the distributions GenClus needs — Gaussian observations for the
//! weather generator, Gamma/Dirichlet draws for membership initialization,
//! categorical draws for mixture sampling — are implemented here with the
//! textbook algorithms (polar Box–Muller, Marsaglia–Tsang) so the workspace
//! stays within the allowed offline dependency set.

use rand::Rng;
use rand::SeedableRng;

/// A deterministic RNG from a 64-bit seed. All stochastic entry points in the
/// workspace accept a seed and build their RNG through this helper so that
/// every experiment is reproducible.
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// One `N(mu, sigma²)` draw via the polar Box–Muller method.
///
/// # Panics
/// Panics in debug builds if `sigma < 0`.
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
    mu + sigma * standard_normal(rng)
}

/// One standard-normal draw (polar Box–Muller; the spare variate is discarded
/// to keep the function stateless — sampling is not a hot path here).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// One `Gamma(shape, scale)` draw via Marsaglia–Tsang (2000).
///
/// For `shape < 1` the standard boost `Gamma(a) = Gamma(a+1) · U^{1/a}` is
/// applied.
///
/// # Panics
/// Panics if `shape <= 0` or `scale <= 0`.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    assert!(scale > 0.0, "gamma scale must be positive, got {scale}");
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

/// One `Dirichlet(alpha)` draw, written into `out` (same length as `alpha`).
///
/// # Panics
/// Panics if `alpha` is empty, contains non-positive entries, or the lengths
/// differ.
pub fn sample_dirichlet_into<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64], out: &mut [f64]) {
    assert!(!alpha.is_empty(), "dirichlet needs at least one component");
    assert_eq!(alpha.len(), out.len());
    let mut sum = 0.0;
    for (o, &a) in out.iter_mut().zip(alpha) {
        *o = sample_gamma(rng, a, 1.0);
        sum += *o;
    }
    if sum <= 0.0 {
        // All gammas underflowed (tiny alphas); fall back to uniform.
        let u = 1.0 / out.len() as f64;
        out.iter_mut().for_each(|o| *o = u);
        return;
    }
    out.iter_mut().for_each(|o| *o /= sum);
}

/// One `Dirichlet(alpha)` draw as a fresh vector. See
/// [`sample_dirichlet_into`].
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; alpha.len()];
    sample_dirichlet_into(rng, alpha, &mut out);
    out
}

/// Samples an index from an (unnormalized, non-negative) weight vector.
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "categorical weights must sum to a positive finite value, got {total}"
    );
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1 // floating-point slack: the last bucket
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded_rng(1);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = sample_gaussian(&mut rng, 3.0, 2.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut rng = seeded_rng(2);
        let (shape, scale) = (2.5, 1.5);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = sample_gamma(&mut rng, shape, scale);
            assert!(x > 0.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - shape * scale).abs() < 0.03, "mean {mean}");
        assert!((var - shape * scale * scale).abs() < 0.12, "var {var}");
    }

    #[test]
    fn gamma_small_shape_stays_positive() {
        let mut rng = seeded_rng(3);
        for _ in 0..10_000 {
            let x = sample_gamma(&mut rng, 0.05, 1.0);
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn dirichlet_rows_sum_to_one() {
        let mut rng = seeded_rng(4);
        let alpha = [0.5, 2.0, 1.0];
        for _ in 0..1000 {
            let p = sample_dirichlet(&mut rng, &alpha);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_mean_matches_alpha() {
        let mut rng = seeded_rng(5);
        let alpha = [1.0, 3.0, 6.0];
        let total: f64 = alpha.iter().sum();
        let n = 50_000;
        let mut acc = [0.0; 3];
        for _ in 0..n {
            let p = sample_dirichlet(&mut rng, &alpha);
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        for (a, &al) in acc.iter().zip(&alpha) {
            assert!((a / n as f64 - al / total).abs() < 0.01);
        }
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = seeded_rng(6);
        let w = [1.0, 2.0, 7.0];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &w)] += 1;
        }
        for (c, &wi) in counts.iter().zip(&w) {
            let freq = *c as f64 / n as f64;
            assert!(
                (freq - wi / 10.0).abs() < 0.01,
                "freq {freq} for weight {wi}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn categorical_rejects_zero_weights() {
        let mut rng = seeded_rng(7);
        sample_categorical(&mut rng, &[0.0, 0.0]);
    }
}
