//! Streaming and batch summary statistics.
//!
//! The experiment harness reports the mean and standard deviation of NMI over
//! 20 random restarts (Figs. 5–6) and per-iteration wall times (Fig. 11);
//! Welford's algorithm keeps those numerically stable without storing runs.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (`n − 1` denominator); `0.0` for fewer than two
/// values.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (`0.0` with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_stats_on_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.5, -2.0, 0.0, 3.25, 10.0, -7.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), xs.len() as u64);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.sample_std() - sample_std(&xs)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_std(&[]), 0.0);
        assert_eq!(sample_std(&[3.0]), 0.0);
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        w.push(3.0);
        assert_eq!(w.sample_std(), 0.0);
    }
}
