//! Minimal little-endian byte codec backing the model-snapshot hooks.
//!
//! The workspace has no serde (the build environment is offline), so every
//! crate that round-trips state to bytes — `genclus-stats` for `Θ`,
//! `genclus-hin` for the network, `genclus-core` for the fitted model — uses
//! this one convention:
//!
//! * all integers are unsigned 64/32/16-bit **little-endian**;
//! * `f64` values are written as their IEEE-754 bit patterns (LE), so a
//!   write → read → write cycle is byte-identical — no text formatting, no
//!   rounding;
//! * variable-length data is length-prefixed with a `u64` count;
//! * packed `u16`/`u32` arrays and strings are padded with zero bytes to the
//!   next multiple of 8, so a writer that starts 8-aligned stays 8-aligned
//!   after every composite item (this is what lets the serve crate expose the
//!   `Θ` payload as an aligned zero-copy `&[f64]`).
//!
//! Readers are *non-panicking*: every accessor returns `Option` and a
//! malformed or truncated buffer surfaces as `None`, never as an
//! out-of-bounds panic — snapshot files are operator-supplied input.

/// Appends a `u64` (LE).
#[inline]
pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (LE).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Pads with zero bytes to the next multiple of 8.
#[inline]
pub fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

/// Appends a length-prefixed UTF-8 string, padded to 8 bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
    pad8(out);
}

/// Appends a length-prefixed packed `u16` array, padded to 8 bytes.
pub fn put_u16_slice(out: &mut Vec<u8>, xs: &[u16]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    pad8(out);
}

/// Appends a length-prefixed packed `u32` array, padded to 8 bytes.
pub fn put_u32_slice(out: &mut Vec<u8>, xs: &[u32]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    pad8(out);
}

/// Appends a length-prefixed raw byte blob, padded to 8 bytes. The reader
/// side ([`ByteReader::byte_blob`]) hands the blob back **borrowed**, so
/// bulk payloads (e.g. a name arena) round-trip without a per-element walk.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
    pad8(out);
}

/// Appends a length-prefixed `u64` array.
pub fn put_u64_slice(out: &mut Vec<u8>, xs: &[u64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u64(out, x);
    }
}

/// Appends a length-prefixed `f64` array (bit patterns, LE).
pub fn put_f64_slice(out: &mut Vec<u8>, xs: &[f64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_f64(out, x);
    }
}

/// A bounds-checked cursor over an immutable byte buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current cursor position.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.bytes(8)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    /// Reads a `u64` and converts it to `usize`, requiring it to be a
    /// plausible element count: at most `remaining / min_elem_size`. This is
    /// the guard that keeps corrupt length prefixes from triggering huge
    /// allocations.
    pub fn count(&mut self, min_elem_size: usize) -> Option<usize> {
        let n = self.u64()?;
        let n: usize = n.try_into().ok()?;
        if n.checked_mul(min_elem_size.max(1))? > self.remaining() {
            return None;
        }
        Some(n)
    }

    /// Reads an `f64` bit pattern (LE).
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Skips padding up to the next multiple of 8.
    pub fn align8(&mut self) -> Option<()> {
        while !self.pos.is_multiple_of(8) {
            self.bytes(1)?;
        }
        Some(())
    }

    /// Reads a length-prefixed string (as written by [`put_str`]).
    pub fn str(&mut self) -> Option<String> {
        let n = self.count(1)?;
        let s = std::str::from_utf8(self.bytes(n)?).ok()?.to_string();
        self.align8()?;
        Some(s)
    }

    /// Reads a packed `u16` array (as written by [`put_u16_slice`]).
    pub fn u16_slice(&mut self) -> Option<Vec<u16>> {
        let n = self.count(2)?;
        let raw = self.bytes(n * 2)?;
        let out = raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        self.align8()?;
        Some(out)
    }

    /// Reads a packed `u32` array (as written by [`put_u32_slice`]).
    pub fn u32_slice(&mut self) -> Option<Vec<u32>> {
        let n = self.count(4)?;
        let raw = self.bytes(n * 4)?;
        let out = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        self.align8()?;
        Some(out)
    }

    /// Reads a `u64` array (as written by [`put_u64_slice`]).
    ///
    /// Bounds-checks the whole array up front and allocates the output
    /// exactly once — the element count must never influence the number of
    /// heap allocations (the serve crate's zero-copy load test counts them).
    pub fn u64_slice(&mut self) -> Option<Vec<u64>> {
        let n = self.count(8)?;
        let raw = self.bytes(n * 8)?;
        let mut out = Vec::with_capacity(n);
        out.extend(
            raw.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))),
        );
        Some(out)
    }

    /// Reads an `f64` array (as written by [`put_f64_slice`]); same
    /// single-allocation contract as [`Self::u64_slice`].
    pub fn f64_slice(&mut self) -> Option<Vec<f64>> {
        let n = self.count(8)?;
        let raw = self.bytes(n * 8)?;
        let mut out = Vec::with_capacity(n);
        out.extend(
            raw.chunks_exact(8).map(|c| {
                f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            }),
        );
        Some(out)
    }

    /// Reads a length-prefixed byte blob (as written by [`put_bytes`]),
    /// **borrowed** from the underlying buffer — no copy, no allocation.
    pub fn byte_blob(&mut self) -> Option<&'a [u8]> {
        let n = self.count(1)?;
        let b = self.bytes(n)?;
        self.align8()?;
        Some(b)
    }
}

/// FNV-1a 64-bit hash — the snapshot payload checksum. Not cryptographic;
/// it detects truncation and bit rot, which is all a local model file needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        put_f64(&mut out, -1.5e300);
        put_f64(&mut out, f64::MIN_POSITIVE);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.f64(), Some(-1.5e300));
        assert_eq!(r.f64(), Some(f64::MIN_POSITIVE));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u64(), None, "reads past the end are None, not panics");
    }

    #[test]
    fn composite_items_keep_eight_alignment() {
        let mut out = Vec::new();
        put_str(&mut out, "abc"); // 3 bytes + 5 pad
        assert_eq!(out.len() % 8, 0);
        put_u16_slice(&mut out, &[1, 2, 3]);
        assert_eq!(out.len() % 8, 0);
        put_u32_slice(&mut out, &[7; 5]);
        assert_eq!(out.len() % 8, 0);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.str().as_deref(), Some("abc"));
        assert_eq!(r.u16_slice(), Some(vec![1, 2, 3]));
        assert_eq!(r.u32_slice(), Some(vec![7; 5]));
    }

    #[test]
    fn slices_round_trip() {
        let mut out = Vec::new();
        put_u64_slice(&mut out, &[u64::MAX, 0]);
        put_f64_slice(&mut out, &[0.1, -0.0, f64::INFINITY]);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u64_slice(), Some(vec![u64::MAX, 0]));
        let f = r.f64_slice().unwrap();
        assert_eq!(f[0], 0.1);
        assert_eq!(
            f[1].to_bits(),
            (-0.0f64).to_bits(),
            "bit-exact, not value-exact"
        );
        assert_eq!(f[2], f64::INFINITY);
    }

    #[test]
    fn byte_blob_round_trips_borrowed_and_aligned() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        assert_eq!(out.len() % 8, 0);
        put_u64(&mut out, 7);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.byte_blob(), Some(&b"hello"[..]));
        assert_eq!(r.u64(), Some(7));
        // Empty blob is fine; truncated blob is rejected.
        let mut out = Vec::new();
        put_bytes(&mut out, b"");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.byte_blob(), Some(&b""[..]));
        let mut out = Vec::new();
        put_u64(&mut out, 99); // claims 99 bytes, provides none
        assert_eq!(ByteReader::new(&out).byte_blob(), None);
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_cheaply() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX); // absurd count
        let mut r = ByteReader::new(&out);
        assert_eq!(r.f64_slice(), None);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.str(), None);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
