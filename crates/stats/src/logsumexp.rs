//! Stable log-domain normalization.
//!
//! E-steps multiply small probabilities; working in log space with
//! max-subtraction avoids underflow when cluster counts or observation counts
//! grow.

/// `log Σ_i exp(x_i)` computed with max-subtraction.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the sum of zero terms).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Normalizes log-domain weights into probabilities, in place.
///
/// After the call, `xs` holds `exp(x_i − logsumexp(x))`, i.e. a point on the
/// probability simplex. If every input is `−∞` the result is uniform (the
/// caller observed an impossible event; uniform is the least-informative
/// fallback and keeps downstream EM iterations finite).
pub fn normalize_log_weights(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let lse = log_sum_exp(xs);
    if lse == f64::NEG_INFINITY {
        let u = 1.0 / xs.len() as f64;
        xs.iter_mut().for_each(|x| *x = u);
        return;
    }
    xs.iter_mut().for_each(|x| *x = (*x - lse).exp());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_on_moderate_values() {
        let xs = [0.1, -1.3, 2.7];
        let naive: f64 = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn survives_large_magnitudes() {
        let xs = [-1000.0, -1000.5];
        let got = log_sum_exp(&xs);
        // logsumexp(a, b) = a + ln(1 + e^{b-a})
        let expected = -1000.0 + (1.0 + (-0.5f64).exp()).ln();
        assert!((got - expected).abs() < 1e-12);

        let xs = [1000.0, 999.0];
        assert!(log_sum_exp(&xs).is_finite());
    }

    #[test]
    fn empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn normalize_produces_simplex_point() {
        let mut xs = [-800.0, -801.0, -799.5];
        normalize_log_weights(&mut xs);
        let sum: f64 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn normalize_all_neg_inf_is_uniform() {
        let mut xs = [f64::NEG_INFINITY; 4];
        normalize_log_weights(&mut xs);
        for &x in &xs {
            assert!((x - 0.25).abs() < 1e-15);
        }
    }

    #[test]
    fn shift_invariance() {
        let xs = [0.3, 1.1, -2.0, 0.0];
        let shifted: Vec<f64> = xs.iter().map(|x| x + 123.456).collect();
        assert!((log_sum_exp(&shifted) - log_sum_exp(&xs) - 123.456).abs() < 1e-9);
    }
}
