//! Small dense matrices with LU-based solving.
//!
//! The only linear systems in GenClus are the `|R| × |R|` Newton systems over
//! the link-type strengths (|R| ≤ a handful) and, in the baselines crate, the
//! Jacobi eigensolver's dense workspace (n up to a few thousand). A plain
//! row-major `Vec<f64>` with partial-pivot LU covers both without an external
//! linear-algebra dependency.

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major flat slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular. `self` must be
    /// square and `b.len() == n`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();

        for col in 0..n {
            // Partial pivot: largest absolute entry in this column at/below
            // the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return None; // singular
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for c in (col + 1)..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in (col + 1)..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        if x.iter().any(|v| !v.is_finite()) {
            return None;
        }
        Some(x)
    }

    /// Matrix inverse via `n` solves against identity columns.
    ///
    /// Returns `None` when singular. Intended for tiny matrices (the Newton
    /// system); `solve` should be preferred when only one right-hand side is
    /// needed.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e.iter_mut().for_each(|v| *v = 0.0);
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Some(inv)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [4/5, 7/5]
        let a = Matrix::from_slice(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_slice(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_slice(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 1.0]).is_none());
        assert!(a.inverse().is_none());
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_slice(3, 3, &[4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 5.0]);
        let inv = a.inverse().unwrap();
        // A * A^{-1} == I
        for i in 0..3 {
            let e: Vec<f64> = (0..3).map(|j| inv[(j, i)]).collect();
            let col = a.matvec(&e);
            for (j, v) in col.iter().enumerate() {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((v - expected).abs() < 1e-10, "entry ({j},{i}) = {v}");
            }
        }
    }

    #[test]
    fn matvec_identity() {
        let i = Matrix::identity(4);
        let x = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn solve_matches_matvec_round_trip() {
        let a = Matrix::from_slice(
            3,
            3,
            &[-5.0, 1.0, 0.3, 1.0, -4.0, 0.1, 0.3, 0.1, -6.0], // diag-dominant (Hessian-like)
        );
        let x_true = [0.5, -1.0, 2.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }
}
