//! Special functions: `ln Γ(x)`, digamma `ψ(x)` and trigamma `ψ'(x)`.
//!
//! The strength-learning step of GenClus evaluates the gradient (Eq. 16) and
//! Hessian (Eq. 17) of the pseudo-log-likelihood, both of which are sums of
//! digamma/trigamma terms of Dirichlet parameters `α_ik ≥ 1`. The
//! implementations below are the standard ones (Lanczos approximation for
//! `ln Γ`, upward recurrence + asymptotic series for `ψ` and `ψ'`) and are
//! accurate to ~1e-12 on the positive axis, far tighter than the optimizer
//! needs.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's table).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the Gamma function for `x > 0`.
///
/// Uses the Lanczos approximation; relative error is below `1e-13` over the
/// range exercised by GenClus (`x ≥ 1`).
///
/// # Panics
/// Panics in debug builds if `x <= 0` (the reflection formula is not needed
/// by any caller in this workspace).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos is formulated for Γ(z + 1); shift accordingly.
    let z = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Applies the recurrence `ψ(x) = ψ(x + 1) − 1/x` until `x ≥ 6`, then an
/// eight-term asymptotic (Stirling) series.
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // ψ(x) ~ ln x − 1/(2x) − Σ B_{2n} / (2n x^{2n})
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0
                        - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))))
}

/// Trigamma function `ψ'(x) = d²/dx² ln Γ(x)` for `x > 0`.
///
/// Same scheme as [`digamma`]: recurrence `ψ'(x) = ψ'(x + 1) + 1/x²` up to
/// `x ≥ 6`, then the asymptotic series.
pub fn trigamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // ψ'(x) ~ 1/x + 1/(2x²) + Σ B_{2n} / x^{2n+1}
    // with B_2 = 1/6, B_4 = −1/30, B_6 = 1/42, B_8 = −1/30, B_10 = 5/66.
    result
        + inv
            * (1.0
                + inv
                    * (0.5
                        + inv
                            * (1.0 / 6.0
                                - inv2
                                    * (1.0 / 30.0
                                        - inv2
                                            * (1.0 / 42.0
                                                - inv2 * (1.0 / 30.0 - inv2 * (5.0 / 66.0)))))))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!(
                (ln_gamma(x) - f64::ln(f)).abs() < TOL,
                "ln_gamma({x}) = {} != ln({f})",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let expected = 0.5 * std::f64::consts::PI.ln();
        assert!((ln_gamma(0.5) - expected).abs() < TOL);
        // Γ(3/2) = √π / 2
        let expected = 0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2;
        assert!((ln_gamma(1.5) - expected).abs() < TOL);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ (Euler–Mascheroni)
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + EULER_GAMMA).abs() < TOL);
        // ψ(1/2) = −γ − 2 ln 2
        assert!((digamma(0.5) + EULER_GAMMA + 2.0 * std::f64::consts::LN_2).abs() < TOL);
        // ψ(2) = 1 − γ
        assert!((digamma(2.0) - (1.0 - EULER_GAMMA)).abs() < TOL);
    }

    #[test]
    fn trigamma_known_values() {
        // ψ'(1) = π²/6
        let expected = std::f64::consts::PI.powi(2) / 6.0;
        assert!((trigamma(1.0) - expected).abs() < TOL);
        // ψ'(1/2) = π²/2
        let expected = std::f64::consts::PI.powi(2) / 2.0;
        assert!((trigamma(0.5) - expected).abs() < TOL);
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.7, 1.3, 2.9, 5.5, 11.0, 53.7] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert!(
                (digamma(x) - numeric).abs() < 1e-6,
                "digamma({x}) = {} vs numeric {numeric}",
                digamma(x)
            );
        }
    }

    #[test]
    fn trigamma_is_derivative_of_digamma() {
        for &x in &[0.7, 1.3, 2.9, 5.5, 11.0, 53.7] {
            let h = 1e-6;
            let numeric = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
            assert!(
                (trigamma(x) - numeric).abs() < 1e-5,
                "trigamma({x}) = {} vs numeric {numeric}",
                trigamma(x)
            );
        }
    }

    #[test]
    fn trigamma_positive_and_decreasing() {
        let mut prev = f64::INFINITY;
        for i in 1..200 {
            let x = i as f64 * 0.25;
            let t = trigamma(x);
            assert!(t > 0.0, "trigamma({x}) = {t} must be positive");
            assert!(t < prev, "trigamma must decrease on (0, ∞)");
            prev = t;
        }
    }
}
