//! Numerics substrate for the GenClus reproduction.
//!
//! GenClus (Sun, Aggarwal, Han; VLDB 2012) needs a small but specific set of
//! numerical tools that we implement from scratch rather than pulling a
//! general-purpose statistics crate:
//!
//! * [`special`] — `ln Γ`, digamma `ψ`, trigamma `ψ'` (the gradient and
//!   Hessian of the pseudo-log-likelihood in Eqs. 16–17 are built from them);
//! * [`logsumexp`] — numerically stable normalization of log-domain weights;
//! * [`simplex`] — operations on probability vectors (entropy, cross entropy,
//!   KL divergence, flooring + renormalization) and the [`simplex::MembershipMatrix`]
//!   type holding one simplex row per network object (the paper's `Θ`);
//! * [`dirichlet`] — `log B(α)` and Dirichlet log-density (the local partition
//!   functions `Z_i(γ)` of Eq. 14 are Dirichlet normalizers);
//! * [`matrix`] — a small dense row-major matrix with LU solve/inversion
//!   (the Newton system over `γ` is `|R| × |R|` with `|R| ≤` a handful);
//! * [`newton`] — a damped, projected Newton–Raphson maximizer for concave
//!   objectives under non-negativity constraints (Algorithm 1, step 2);
//! * [`rng`] — seeded sampling helpers (Gaussian via polar Box–Muller, Gamma
//!   via Marsaglia–Tsang, Dirichlet, categorical);
//! * [`summary`] — streaming mean/variance used by the experiment harness.
//!
//! Everything is deterministic given an RNG seed and allocation-conscious:
//! hot-path functions take `&mut [f64]` buffers instead of returning fresh
//! vectors where it matters.

pub mod bytesio;
pub mod dirichlet;
pub mod logsumexp;
pub mod matrix;
pub mod newton;
pub mod rng;
pub mod simplex;
pub mod special;
pub mod summary;

pub use bytesio::{fnv1a64, ByteReader};
pub use dirichlet::{dirichlet_log_pdf, ln_beta};
pub use logsumexp::{log_sum_exp, normalize_log_weights};
pub use matrix::Matrix;
pub use newton::{NewtonOptions, NewtonOutcome, ProjectedNewton};
pub use rng::{sample_categorical, sample_dirichlet, sample_gamma, sample_gaussian, seeded_rng};
pub use simplex::MembershipMatrix;
pub use special::{digamma, ln_gamma, trigamma};
pub use summary::{mean, sample_std, Welford};
