//! Property-based tests for the numerics substrate.

use genclus_stats::{digamma, ln_gamma, log_sum_exp, trigamma, Matrix, MembershipMatrix};
use proptest::prelude::*;

proptest! {
    /// lnΓ(x + 1) = lnΓ(x) + ln x.
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..80.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
    }

    /// ψ(x + 1) = ψ(x) + 1/x.
    #[test]
    fn digamma_recurrence(x in 0.05f64..80.0) {
        let lhs = digamma(x + 1.0);
        let rhs = digamma(x) + 1.0 / x;
        prop_assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
    }

    /// ψ'(x + 1) = ψ'(x) − 1/x².
    #[test]
    fn trigamma_recurrence(x in 0.05f64..80.0) {
        let lhs = trigamma(x + 1.0);
        let rhs = trigamma(x) - 1.0 / (x * x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
    }

    /// log-sum-exp dominates the max and is shift-invariant.
    #[test]
    fn log_sum_exp_properties(
        xs in proptest::collection::vec(-50.0f64..50.0, 1..20),
        shift in -100.0f64..100.0,
    ) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((log_sum_exp(&shifted) - lse - shift).abs() < 1e-8);
    }

    /// Any non-negative row normalizes onto the simplex with positive entries.
    #[test]
    fn normalize_floored_yields_simplex(
        raw in proptest::collection::vec(0.0f64..1e6, 1..12),
    ) {
        let mut row = raw;
        genclus_stats::simplex::normalize_floored(&mut row);
        let sum: f64 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(row.iter().all(|&x| x > 0.0));
    }

    /// Cross entropy H(p, q) ≥ H(p, p) = entropy(p) (Gibbs' inequality), for
    /// strictly positive simplex rows.
    #[test]
    fn gibbs_inequality(
        pairs in proptest::collection::vec((0.01f64..1.0, 0.01f64..1.0), 2..8),
    ) {
        let (mut p, mut q): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        genclus_stats::simplex::normalize_floored(&mut p);
        genclus_stats::simplex::normalize_floored(&mut q);
        let h_pq = genclus_stats::simplex::cross_entropy(&p, &q);
        let h_p = genclus_stats::simplex::entropy(&p);
        prop_assert!(h_pq >= h_p - 1e-9, "H(p,q)={h_pq} < H(p)={h_p}");
    }

    /// LU solve round-trips A · x = b on diagonally dominant systems.
    #[test]
    fn lu_solve_round_trip(
        n in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut row_abs = 0.0;
            for j in 0..n {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a[(i, j)] = v;
                    row_abs += v.abs();
                }
            }
            a[(i, i)] = row_abs + 1.0 + rng.gen::<f64>();
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let b = a.matvec(&x_true);
        let x = a.solve(&b).expect("diag-dominant must be solvable");
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }

    /// Random membership matrices satisfy the simplex invariant row-wise.
    #[test]
    fn membership_matrix_rows_on_simplex(seed in any::<u64>(), n in 1usize..40, k in 1usize..8) {
        let mut rng = genclus_stats::seeded_rng(seed);
        let m = MembershipMatrix::random(n, k, &mut rng);
        for i in 0..n {
            let s: f64 = m.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
        prop_assert_eq!(m.hard_labels().len(), n);
    }
}
