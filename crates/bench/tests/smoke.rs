//! Smoke tests: every experiment runs at quick scale and produces populated
//! tables, so `cargo test --workspace` exercises the entire harness.

use genclus_bench::{run_experiment, Scale};

fn assert_populated(id: &str) {
    let report = run_experiment(id, Scale::QUICK);
    assert_eq!(report.id, id);
    assert!(!report.tables.is_empty(), "{id}: no tables");
    for t in &report.tables {
        assert!(!t.rows.is_empty(), "{id}: empty table `{}`", t.title);
        for (label, cells) in &t.rows {
            assert_eq!(cells.len(), t.columns.len(), "{id}/{label}: ragged row");
            for cell in cells {
                assert!(!cell.is_empty(), "{id}/{label}: empty cell");
                let v: f64 = cell.parse().unwrap_or(f64::NAN);
                assert!(v.is_finite(), "{id}/{label}: non-numeric cell `{cell}`");
            }
        }
    }
    // Rendering and saving must not fail either.
    let rendered = report.render();
    assert!(rendered.contains(&format!("experiment {id}")));
    let dir = std::env::temp_dir().join("genclus-smoke-results");
    let path = report.save(&dir).expect("save succeeds");
    assert!(path.exists());
}

#[test]
fn fig5_quick() {
    assert_populated("fig5");
}

#[test]
fn fig6_quick() {
    assert_populated("fig6");
}

#[test]
fn table1_quick() {
    assert_populated("table1");
}

#[test]
fn fig7_quick() {
    assert_populated("fig7");
}

#[test]
fn fig8_quick() {
    assert_populated("fig8");
}

#[test]
fn table2_quick() {
    assert_populated("table2");
}

#[test]
fn table3_quick() {
    assert_populated("table3");
}

#[test]
fn table4_quick() {
    assert_populated("table4");
}

#[test]
fn table5_quick() {
    assert_populated("table5");
}

#[test]
fn fig9_quick() {
    assert_populated("fig9");
}

#[test]
fn fig10_quick() {
    assert_populated("fig10");
}

#[test]
fn fig11_quick() {
    assert_populated("fig11");
}

#[test]
fn ablate_sym_quick() {
    assert_populated("ablate-sym");
}

#[test]
fn ablate_fixed_quick() {
    assert_populated("ablate-fixed");
}

#[test]
#[should_panic(expected = "unknown experiment id")]
fn unknown_id_panics() {
    let _ = run_experiment("fig99", Scale::QUICK);
}
