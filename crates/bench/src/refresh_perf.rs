//! The refresh perf trajectory: `BENCH_refresh.json`.
//!
//! Measures what warm-starting buys on the fit → serve → grow → re-fit
//! loop: a weather network is fitted and snapshotted, grown by ~10% new
//! sensors (staged exactly like the serving layer does — fold-in rows
//! under the frozen model, links/observations in a [`GraphDelta`]), and
//! then re-fitted twice on the appended graph in the same run:
//!
//! * **warm** — [`GenClus::fit_warm`] seeded from the served `(Θ, β, γ)`
//!   with the fold-in rows covering the new objects (the refresh path of
//!   `genclus-serve`);
//! * **cold** — an ordinary [`GenClus::fit`] from random initialization
//!   with the same hyperparameters and seed.
//!
//! Per strategy it reports the outer alternations used, the **total EM
//! iterations** across them (the dominant cost, and the convergence
//! currency the paper's Fig. 10 uses), and the wall time. The headline
//! compares total EM iterations; `bench_refresh` exits non-zero in full
//! mode unless warm converges in **strictly fewer** EM iterations than
//! cold. The run also proves the refreshed snapshot serves: it loads the
//! warm fit into a [`QueryEngine`] and requires `membership` / `top_k`
//! answers for both an original and an appended sensor.
//!
//! # Serving latency during a refresh (schema v2)
//!
//! Since schema v2 the run also measures what a refresh **does to query
//! traffic**: the same staged growth is replayed through a
//! [`RefreshableEngine`] twice — once with the inline re-fit (the
//! original, serving-thread-blocking path) and once with
//! [`RefreshPolicy::background`] (double-buffered engines) — while an
//! **open-loop** query stream arrives every `query_interval_ms`
//! (arrival times are fixed in advance, so queries that queue behind a
//! blocked serving loop are charged their full waiting time — no
//! coordinated omission). The re-fit is forced to a fixed depth
//! (`em_tol = 0`) so both modes re-fit an identically sized window. Per
//! mode it reports the refresh wall time and the p50/p99/max latency of
//! the queries that arrived *during* the refresh window; the serving
//! headline is `stall_reduction` — inline p99 over background p99 —
//! and `bench_refresh` exits non-zero in full mode when it falls under
//! 5× (on top of the warm < cold iteration gate).
//!
//! Schema of `BENCH_refresh.json` is documented in ROADMAP.md's
//! Performance section and mirrored by [`RefreshPerfReport::to_json`].

use crate::perf::fmt_f64;
use crate::quantiles::{latency_histogram, quantile_seconds};
use genclus_core::{GenClus, GenClusConfig, GenClusModel};
use genclus_datagen::weather::{generate, PatternSetting, WeatherConfig, WeatherNetwork};
use genclus_hin::{GraphDelta, HinGraph};
use genclus_serve::{
    FoldInEngine, FoldInRequest, QueryEngine, RefreshPolicy, RefreshableEngine, Snapshot,
};
use genclus_stats::MembershipMatrix;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Clusters of the benchmark fit.
pub const K: usize = 4;

/// Controls the measurement run.
#[derive(Debug, Clone)]
pub struct RefreshPerfConfig {
    /// Quick mode: small network (smoke test).
    pub quick: bool,
    /// Worker threads for the fits.
    pub threads: usize,
}

impl RefreshPerfConfig {
    /// Full-scale measurement (the committed `BENCH_refresh.json`): the
    /// paper's 1250-object weather network, grown by 10%.
    pub fn full() -> Self {
        Self {
            quick: false,
            threads: 1,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Self {
            quick: true,
            threads: 1,
        }
    }
}

/// One re-fit measurement.
#[derive(Debug, Clone)]
pub struct RefitMeasurement {
    /// `warm` or `cold`.
    pub strategy: &'static str,
    /// Outer alternations used.
    pub outer_iterations: usize,
    /// Total EM iterations across the outer alternations.
    pub em_iterations: usize,
    /// Wall time of the re-fit.
    pub seconds: f64,
}

/// The warm-vs-cold headline the acceptance gate reads.
#[derive(Debug, Clone)]
pub struct RefreshHeadline {
    /// Total EM iterations of the warm re-fit.
    pub warm_em_iterations: usize,
    /// Total EM iterations of the cold re-fit.
    pub cold_em_iterations: usize,
    /// `cold / warm` EM-iteration ratio.
    pub iteration_ratio: f64,
    /// Wall seconds of the warm re-fit.
    pub warm_seconds: f64,
    /// Wall seconds of the cold re-fit.
    pub cold_seconds: f64,
    /// `cold / warm` wall-time ratio.
    pub speedup: f64,
}

/// Per-query latency of an open-loop stream racing one refresh.
#[derive(Debug, Clone)]
pub struct ServeDuringRefresh {
    /// `inline` or `background`.
    pub mode: &'static str,
    /// Trigger → swap wall time of the re-fit.
    pub refresh_wall_ms: f64,
    /// Queries whose scheduled arrival fell inside the refresh window.
    pub queries_during_refresh: usize,
    /// Median latency of those queries (arrival → response).
    pub p50_ms: f64,
    /// 99th-percentile latency of those queries.
    pub p99_ms: f64,
    /// Worst latency of those queries.
    pub max_ms: f64,
}

/// The inline-vs-background serving comparison the v2 gate reads.
#[derive(Debug, Clone)]
pub struct ServingHeadline {
    /// p99 query latency during an inline (blocking) refresh.
    pub inline_p99_ms: f64,
    /// p99 query latency during a background refresh.
    pub background_p99_ms: f64,
    /// `inline / background` p99 ratio.
    pub stall_reduction: f64,
}

/// Everything one `bench_refresh` run produced.
#[derive(Debug, Clone)]
pub struct RefreshPerfReport {
    /// `full` or `quick`.
    pub mode: &'static str,
    /// Objects before the append.
    pub n_objects_base: usize,
    /// Links before the append.
    pub n_links_base: usize,
    /// Objects appended (~10%).
    pub n_objects_appended: usize,
    /// Links appended.
    pub n_links_appended: usize,
    /// Observations per sensor.
    pub n_obs: usize,
    /// Both measurements, warm first.
    pub measurements: Vec<RefitMeasurement>,
    /// Warm-vs-cold comparison.
    pub headline: RefreshHeadline,
    /// Open-loop arrival spacing of the serving measurement.
    pub query_interval_ms: f64,
    /// Serving-latency measurements, inline first.
    pub serving: Vec<ServeDuringRefresh>,
    /// Inline-vs-background p99 comparison.
    pub serving_headline: ServingHeadline,
}

/// One staged arrival, replayable through
/// [`RefreshableEngine::commit_with_links`] so the serving measurement
/// grows the engine exactly like the warm/cold fixture grew the graph.
struct Arrival {
    name: String,
    obj_type: genclus_hin::ObjectTypeId,
    req: FoldInRequest,
    /// The old→new back-link `(relation, old source, weight)`.
    in_link: (genclus_hin::RelationId, genclus_hin::ObjectId, f64),
}

/// The grown network plus the warm seed covering it.
struct GrownFixture {
    graph: HinGraph,
    warm: GenClusModel,
    base_cfg: GenClusConfig,
    n_links_appended: usize,
    /// Name of one appended temperature sensor (serving check).
    new_sensor: String,
    /// The base fit, serialized — the serving measurement's snapshot.
    snapshot_bytes: Vec<u8>,
    /// The staged growth, replayable through the serving engine.
    arrivals: Vec<Arrival>,
}

/// Fits the base network and stages ~10% growth the way the serving
/// layer's refresh queue does: fold-in rows under the frozen model (with
/// staged rows addressable, so staged→staged links fold in), the topology
/// in a `GraphDelta`. The workload deliberately covers every link class
/// the overflow adjacency accepts: new→old (the classic fold-in links),
/// **old→new** (each arrival is also linked *from* one of its existing
/// targets — the old source's overflow segment grows), and
/// **staged→staged** (arrivals after the first link to an earlier arrival
/// of the same ring).
fn build_fixture(cfg: &RefreshPerfConfig, net: &WeatherNetwork) -> GrownFixture {
    let base_cfg = GenClusConfig::new(K, vec![net.temp_attr, net.precip_attr])
        .with_seed(11)
        .with_threads(cfg.threads)
        .with_outer_iters(if cfg.quick { 3 } else { 5 });
    let fit = GenClus::new(base_cfg.clone())
        .expect("valid config")
        .fit(&net.graph)
        .expect("base fit succeeds");

    // Deterministic growth (xorshift, no RNG dependency): each new sensor
    // belongs to a planted ring, links to existing sensors of that ring,
    // and carries observations near that ring's pattern mean.
    let mut state = 0x243f6a8885a308d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n_temp = net.temp_sensors.len();
    let n_new_temp = n_temp / 10;
    let n_new_precip = net.precip_sensors.len() / 10;
    let means = PatternSetting::Setting1.means();
    // Existing temperature sensors grouped by ground-truth ring. All new
    // links target temperature sensors: `tt` for new temp sensors, `pt`
    // for new precip sensors (both relations have a temp target type).
    let temp_by_ring: Vec<Vec<usize>> = (0..K)
        .map(|c| (0..n_temp).filter(|&i| net.labels[i] == c).collect())
        .collect();

    let mut delta = GraphDelta::new(&net.graph);
    let temp_type = net
        .graph
        .schema()
        .object_type_by_name("temp_sensor")
        .unwrap();
    let precip_type = net
        .graph
        .schema()
        .object_type_by_name("precip_sensor")
        .unwrap();
    let mut new_sensor = String::new();
    let mut arrivals: Vec<Arrival> = Vec::new();
    // Fold-in rows under the frozen model — built incrementally so later
    // arrivals can link to earlier staged ones (the engine reads the
    // staged Θ row for such targets, exactly like the serving layer).
    let mut staged_rows: Vec<Vec<f64>> = Vec::new();
    let mut staged_types: Vec<genclus_hin::ObjectTypeId> = Vec::new();
    // Earlier staged *temperature* arrivals per planted ring.
    let mut staged_temp_by_ring: Vec<Vec<genclus_hin::ObjectId>> = vec![Vec::new(); K];
    for i in 0..n_new_temp + n_new_precip {
        let is_temp = i < n_new_temp;
        let ring = next() as usize % K;
        let (rel, obj_type, attr, mean) = if is_temp {
            (net.relations.tt, temp_type, net.temp_attr, means[ring].0)
        } else {
            (
                net.relations.pt,
                precip_type,
                net.precip_attr,
                means[ring].1,
            )
        };
        let name = if is_temp {
            format!("NT{i}")
        } else {
            format!("NP{}", i - n_new_temp)
        };
        if new_sensor.is_empty() {
            new_sensor = name.clone();
        }
        let mut req = FoldInRequest::default();
        let pool = &temp_by_ring[ring];
        for _ in 0..3 {
            let target = net.temp_sensors[pool[next() as usize % pool.len()]];
            req.links.push((rel, target, 1.0));
        }
        // Staged→staged: link to one earlier arrival of the same ring when
        // it exists (tt / pt both target temperature sensors).
        if let Some(&earlier) = staged_temp_by_ring[ring].last() {
            req.links.push((rel, earlier, 1.0));
        }
        // Match the population's observation count, read from an anchor of
        // the *same* type (each sensor type carries only its own attribute).
        let anchor = if is_temp {
            net.temp_sensors[0]
        } else {
            net.precip_sensors[0]
        };
        let n_values = net.graph.attribute(attr).values(anchor).len().max(1);
        let values: Vec<f64> = (0..n_values)
            .map(|_| mean + ((next() % 400) as f64 / 1000.0 - 0.2))
            .collect();
        req.values.push((attr, values));

        let folded = FoldInEngine::new(&fit.model, &net.graph)
            .with_staged(&staged_rows, &staged_types)
            .assign(&req)
            .expect("fold-in succeeds");

        let v = delta.add_object(obj_type, name.clone());
        for &(r, target, w) in &req.links {
            delta
                .add_link(v, target, r, w)
                .expect("staged links are valid");
        }
        // Old→new: the first existing target also links *to* the arrival
        // (tt for a temp arrival, tp for a precip one — the old source's
        // segment overflows).
        let back_rel = if is_temp {
            net.relations.tt
        } else {
            net.relations.tp
        };
        let first_old_target = req.links[0].1;
        delta
            .add_link(first_old_target, v, back_rel, 1.0)
            .expect("old-source links are valid");
        for (a, vals) in &req.values {
            for &x in vals {
                delta
                    .add_numeric(v, *a, x)
                    .expect("staged values are valid");
            }
        }
        arrivals.push(Arrival {
            name,
            obj_type,
            req: req.clone(),
            in_link: (back_rel, first_old_target, 1.0),
        });
        staged_rows.push(folded.theta);
        staged_types.push(obj_type);
        if is_temp {
            staged_temp_by_ring[ring].push(v);
        }
    }

    let mut rows: Vec<Vec<f64>> = (0..fit.model.theta.n_objects())
        .map(|i| fit.model.theta.row(i).to_vec())
        .collect();
    rows.extend(staged_rows);

    let mut graph = net.graph.clone();
    let n_links_appended = delta.n_new_links();
    graph.append(delta).expect("append succeeds");
    assert!(
        graph.has_overflow(),
        "the grow workload must exercise old-source overflow links"
    );
    let warm = GenClusModel {
        theta: MembershipMatrix::from_rows(&rows, K),
        gamma: fit.model.gamma.clone(),
        components: fit.model.components.clone(),
        attributes: fit.model.attributes.clone(),
        theta_smoothing: fit.model.theta_smoothing,
    };
    let snapshot_bytes = genclus_serve::snapshot::to_bytes(&net.graph, &fit.model);
    GrownFixture {
        graph,
        warm,
        base_cfg,
        n_links_appended,
        new_sensor,
        snapshot_bytes,
        arrivals,
    }
}

fn total_em_iterations(fit: &genclus_core::GenClusFit) -> usize {
    fit.history.total_em_iterations()
}

/// `q`-th nearest-rank percentile of a latency list (ms), through the
/// shared obs histogram ([`crate::quantiles`]) — the same structure the
/// serving layer's `{"op":"metrics"}` op reports from.
fn percentile_ms(latencies: &[f64], q: f64) -> f64 {
    let seconds: Vec<f64> = latencies.iter().map(|ms| ms * 1e-3).collect();
    quantile_seconds(&latency_histogram(&seconds), q) * 1e3
}

/// Open-loop arrival spacing of the serving measurement (ms).
const QUERY_INTERVAL_MS: f64 = 0.5;

/// Replays the staged growth through a [`RefreshableEngine`] and measures
/// query latency while the triggered re-fit runs — inline (the serving
/// loop blocks for the whole re-fit, queued arrivals pay the wait) versus
/// background (reads keep answering from the old engine until the swap).
///
/// Arrival times are scheduled in advance (`QUERY_INTERVAL_MS` apart) and
/// latency is measured from the *scheduled* arrival, so a stalled loop is
/// charged the full queueing delay of every query that arrived during the
/// stall — the open-loop discipline that makes p99-under-refresh honest.
/// The re-fit runs at a forced fixed depth (`em_tol = 0`), giving both
/// modes an identical refresh workload.
fn measure_serving(
    cfg: &RefreshPerfConfig,
    fixture: &GrownFixture,
    background: bool,
) -> ServeDuringRefresh {
    let snap = Snapshot::from_bytes(&fixture.snapshot_bytes).expect("fixture snapshot loads");
    let policy = RefreshPolicy {
        outer_iters: if cfg.quick { 3 } else { 4 },
        em_iters: if cfg.quick { 15 } else { 60 },
        em_tol: 0.0,
        gamma_tol: 0.0,
        base_config: Some(fixture.base_cfg.clone()),
        background,
        ..RefreshPolicy::default()
    };
    let mut engine = RefreshableEngine::new(snap, cfg.threads, policy);
    for a in &fixture.arrivals {
        engine
            .commit_with_links(&a.name, a.obj_type, &a.req, &[a.in_link])
            .expect("arrival commits cleanly");
    }

    // A read mix over original sensors: mostly membership, some top-k.
    let queries: Vec<String> = (0..64)
        .map(|i| {
            if i % 4 == 3 {
                format!(r#"{{"op":"top_k","object":"T{i}","k":5,"type":"temp_sensor"}}"#)
            } else {
                format!(r#"{{"op":"membership","object":"T{i}"}}"#)
            }
        })
        .collect();
    let interval = Duration::from_micros((QUERY_INTERVAL_MS * 1000.0) as u64);
    let tail = Duration::from_millis(30);

    let start = Instant::now();
    let resp = engine.handle_line(r#"{"op":"refresh"}"#);
    assert!(
        resp.contains("\"ok\":true"),
        "refresh trigger failed: {resp}"
    );
    // Inline: the trigger blocked for the whole re-fit and the swap is
    // already done. Background: the swap is observed by a later poll.
    let trigger_done = start.elapsed();
    let mut swap_at = (engine.refreshes() == 1).then_some(trigger_done);

    let mut samples: Vec<(Duration, f64)> = Vec::new();
    let hard_cap = Duration::from_secs(30);
    for i in 0.. {
        let arrival = interval * (i as u32);
        let now = start.elapsed();
        if arrival > now {
            std::thread::sleep(arrival - now);
        }
        let resp = engine.handle_line(&queries[i % queries.len()]);
        // Hard assert: the bench runs in release builds, and timing error
        // responses would make the stall gate measure nothing real.
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let done = start.elapsed();
        samples.push((arrival, (done.saturating_sub(arrival)).as_secs_f64() * 1e3));
        if swap_at.is_none() && engine.refreshes() >= 1 {
            swap_at = Some(done);
        }
        if swap_at.is_some_and(|s| arrival > s + tail) || done > hard_cap {
            break;
        }
    }
    let window_end = swap_at.expect("the re-fit must land within the cap");
    let mut during: Vec<f64> = samples
        .iter()
        .filter(|(arrival, _)| *arrival <= window_end)
        .map(|&(_, ms)| ms)
        .collect();
    if during.is_empty() {
        // Degenerate quick-mode case: the re-fit beat the first arrival.
        during = samples.iter().take(1).map(|&(_, ms)| ms).collect();
    }
    let queries_during_refresh = during.len();
    ServeDuringRefresh {
        mode: if background { "background" } else { "inline" },
        refresh_wall_ms: window_end.as_secs_f64() * 1e3,
        queries_during_refresh,
        p50_ms: percentile_ms(&during, 0.50),
        p99_ms: percentile_ms(&during, 0.99),
        max_ms: percentile_ms(&during, 1.0),
    }
}

/// Runs the warm-vs-cold matrix and the serving check.
pub fn run_refresh_perf(cfg: &RefreshPerfConfig) -> RefreshPerfReport {
    let (n_temp, n_precip, n_obs) = if cfg.quick {
        (120, 40, 5)
    } else {
        (1000, 250, 5)
    };
    let net = generate(&WeatherConfig {
        n_temp,
        n_precip,
        k_neighbors: 5,
        n_obs,
        pattern: PatternSetting::Setting1,
        seed: 7,
    });
    let fixture = build_fixture(cfg, &net);

    // Warm re-fit: the serving layer's refresh path.
    let warm_cfg = fixture.base_cfg.clone().with_warm_start(&fixture.warm);
    let start = Instant::now();
    let warm_fit = GenClus::new(warm_cfg)
        .expect("valid warm config")
        .fit_warm(&fixture.graph, &fixture.warm)
        .expect("warm re-fit succeeds");
    let warm_seconds = start.elapsed().as_secs_f64();

    // Cold re-fit: same hyperparameters, fresh initialization.
    let start = Instant::now();
    let cold_fit = GenClus::new(fixture.base_cfg.clone())
        .expect("valid cold config")
        .fit(&fixture.graph)
        .expect("cold re-fit succeeds");
    let cold_seconds = start.elapsed().as_secs_f64();

    // Serving check: the refreshed snapshot must answer membership/top_k
    // for original and appended sensors alike.
    let bytes = genclus_serve::snapshot::to_bytes(&fixture.graph, &warm_fit.model);
    let engine = QueryEngine::new(
        Snapshot::from_bytes(&bytes).expect("refreshed snapshot loads"),
        1,
    );
    for object in ["T0", fixture.new_sensor.as_str()] {
        for line in [
            format!(r#"{{"op":"membership","object":"{object}"}}"#),
            format!(r#"{{"op":"top_k","object":"{object}","k":5,"type":"temp_sensor"}}"#),
        ] {
            let resp = engine.handle_line(&line);
            assert!(
                resp.contains("\"ok\":true"),
                "refreshed engine failed {line} → {resp}"
            );
        }
    }

    // Serving-latency matrix: the same growth replayed through the wire
    // engine, re-fit inline (blocking the loop) vs in the background.
    let serving = vec![
        measure_serving(cfg, &fixture, false),
        measure_serving(cfg, &fixture, true),
    ];
    let serving_headline = ServingHeadline {
        inline_p99_ms: serving[0].p99_ms,
        background_p99_ms: serving[1].p99_ms,
        stall_reduction: serving[0].p99_ms / serving[1].p99_ms.max(1e-9),
    };

    let measurements = vec![
        RefitMeasurement {
            strategy: "warm",
            outer_iterations: warm_fit.history.n_iterations(),
            em_iterations: total_em_iterations(&warm_fit),
            seconds: warm_seconds,
        },
        RefitMeasurement {
            strategy: "cold",
            outer_iterations: cold_fit.history.n_iterations(),
            em_iterations: total_em_iterations(&cold_fit),
            seconds: cold_seconds,
        },
    ];
    let (warm_iters, cold_iters) = (measurements[0].em_iterations, measurements[1].em_iterations);
    RefreshPerfReport {
        mode: if cfg.quick { "quick" } else { "full" },
        n_objects_base: net.graph.n_objects(),
        n_links_base: net.graph.n_links(),
        n_objects_appended: fixture.graph.n_objects() - net.graph.n_objects(),
        n_links_appended: fixture.n_links_appended,
        n_obs,
        measurements,
        headline: RefreshHeadline {
            warm_em_iterations: warm_iters,
            cold_em_iterations: cold_iters,
            iteration_ratio: cold_iters as f64 / warm_iters.max(1) as f64,
            warm_seconds,
            cold_seconds,
            speedup: cold_seconds / warm_seconds.max(1e-12),
        },
        query_interval_ms: QUERY_INTERVAL_MS,
        serving,
        serving_headline,
    }
}

impl RefreshPerfReport {
    /// Serializes to the documented `BENCH_refresh.json` schema
    /// (hand-rolled — the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(3072);
        out.push_str("{\n  \"schema_version\": 2,\n  \"bench\": \"refresh\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n  \"k\": {K},\n", self.mode));
        out.push_str(&format!(
            "  \"dataset\": {{\"family\": \"weather\", \"n_objects_base\": {}, \
             \"n_links_base\": {}, \"n_objects_appended\": {}, \"n_links_appended\": {}, \
             \"n_obs\": {}}},\n",
            self.n_objects_base,
            self.n_links_base,
            self.n_objects_appended,
            self.n_links_appended,
            self.n_obs
        ));
        out.push_str("  \"unit\": \"total EM iterations to converge / wall seconds\",\n");
        out.push_str("  \"results\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"strategy\": \"{}\", \"outer_iterations\": {}, \
                 \"em_iterations\": {}, \"seconds\": {}}}",
                m.strategy,
                m.outer_iterations,
                m.em_iterations,
                fmt_f64(m.seconds),
            ));
            out.push_str(if i + 1 < self.measurements.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(&format!(
            "  ],\n  \"headline\": {{\"warm_em_iterations\": {}, \"cold_em_iterations\": {}, \
             \"iteration_ratio\": {}, \"warm_seconds\": {}, \"cold_seconds\": {}, \
             \"speedup\": {}}},\n",
            self.headline.warm_em_iterations,
            self.headline.cold_em_iterations,
            fmt_f64(self.headline.iteration_ratio),
            fmt_f64(self.headline.warm_seconds),
            fmt_f64(self.headline.cold_seconds),
            fmt_f64(self.headline.speedup),
        ));
        out.push_str("  \"serving\": {\n");
        out.push_str(
            "    \"unit\": \"per-query latency (ms), open-loop arrivals during one re-fit\",\n",
        );
        out.push_str(&format!(
            "    \"query_interval_ms\": {},\n    \"results\": [\n",
            fmt_f64(self.query_interval_ms)
        ));
        for (i, s) in self.serving.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"mode\": \"{}\", \"refresh_wall_ms\": {}, \
                 \"queries_during_refresh\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"max_ms\": {}}}",
                s.mode,
                fmt_f64(s.refresh_wall_ms),
                s.queries_during_refresh,
                fmt_f64(s.p50_ms),
                fmt_f64(s.p99_ms),
                fmt_f64(s.max_ms),
            ));
            out.push_str(if i + 1 < self.serving.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(&format!(
            "    ],\n    \"headline\": {{\"inline_p99_ms\": {}, \"background_p99_ms\": {}, \
             \"stall_reduction\": {}}}\n  }}\n}}\n",
            fmt_f64(self.serving_headline.inline_p99_ms),
            fmt_f64(self.serving_headline.background_p99_ms),
            fmt_f64(self.serving_headline.stall_reduction),
        ));
        out
    }

    /// Writes the JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        // lint: allow(durable-io-containment) -- bench artifact, regenerated by re-running the harness; crash durability buys nothing here
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }

    /// A terse human-readable rendering for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "warm-start refresh ({} mode, {} + {} objects, {} + {} links)\n",
            self.mode,
            self.n_objects_base,
            self.n_objects_appended,
            self.n_links_base,
            self.n_links_appended,
        ));
        for m in &self.measurements {
            out.push_str(&format!(
                "  {:4} re-fit: {:3} EM iterations over {} outer, {:8.3} s\n",
                m.strategy, m.em_iterations, m.outer_iterations, m.seconds,
            ));
        }
        out.push_str(&format!(
            "headline: warm {} vs cold {} EM iterations → {:.2}x fewer ({:.2}x wall time)\n",
            self.headline.warm_em_iterations,
            self.headline.cold_em_iterations,
            self.headline.iteration_ratio,
            self.headline.speedup,
        ));
        out.push_str(&format!(
            "serving during refresh (queries every {} ms):\n",
            self.query_interval_ms
        ));
        for s in &self.serving {
            out.push_str(&format!(
                "  {:10} re-fit: {:8.1} ms wall, {:4} queries in-window, \
                 p50 {:8.3} ms, p99 {:8.3} ms, max {:8.3} ms\n",
                s.mode, s.refresh_wall_ms, s.queries_during_refresh, s.p50_ms, s.p99_ms, s.max_ms,
            ));
        }
        out.push_str(&format!(
            "serving headline: inline p99 {:.3} ms vs background p99 {:.3} ms → {:.1}x lower stall\n",
            self.serving_headline.inline_p99_ms,
            self.serving_headline.background_p99_ms,
            self.serving_headline.stall_reduction,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_report_and_json() {
        let report = run_refresh_perf(&RefreshPerfConfig::quick());
        assert_eq!(report.measurements.len(), 2);
        assert_eq!(report.measurements[0].strategy, "warm");
        assert_eq!(report.measurements[1].strategy, "cold");
        for m in &report.measurements {
            assert!(m.em_iterations >= 1);
            assert!(m.outer_iterations >= 1);
            assert!(m.seconds >= 0.0);
        }
        // ~10% growth really happened.
        assert!(report.n_objects_appended >= report.n_objects_base / 20);
        assert!(report.n_links_appended > 0);
        // Warm must not be *worse* even at smoke scale (the strict gate is
        // full-mode-only, where the fit is deep enough to be stable).
        assert!(
            report.headline.warm_em_iterations <= report.headline.cold_em_iterations,
            "warm {} vs cold {}",
            report.headline.warm_em_iterations,
            report.headline.cold_em_iterations
        );

        // The serving matrix covered both modes, with sane latencies.
        assert_eq!(report.serving.len(), 2);
        assert_eq!(report.serving[0].mode, "inline");
        assert_eq!(report.serving[1].mode, "background");
        for s in &report.serving {
            assert!(s.refresh_wall_ms > 0.0, "{s:?}");
            assert!(s.queries_during_refresh >= 1, "{s:?}");
            assert!(s.p50_ms <= s.p99_ms && s.p99_ms <= s.max_ms, "{s:?}");
        }
        assert!(report.serving_headline.stall_reduction > 0.0);

        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"bench\": \"refresh\""));
        assert!(json.contains("\"strategy\": \"warm\""));
        assert!(json.contains("\"strategy\": \"cold\""));
        assert!(json.contains("\"mode\": \"inline\""));
        assert!(json.contains("\"mode\": \"background\""));
        assert!(json.contains("\"stall_reduction\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let dir = std::env::temp_dir().join("genclus-bench-refresh");
        let path = report.save(&dir.join("BENCH_refresh.json")).expect("save");
        assert!(path.exists());
    }
}
