//! Weather sensor network experiments: Figs. 7–8 and Tables 4–5.

use crate::methods::{labelset_from, nmi_of};
use crate::report::{f2, f4, Report, Table};
use crate::Scale;
use genclus_core::prelude::*;
use genclus_datagen::weather::{self, PatternSetting, WeatherConfig, WeatherNetwork};
use genclus_eval::prelude::*;
use genclus_hin::ObjectId;

const K: usize = 4;

/// Builds a weather network for a grid point.
fn make_network(
    scale: Scale,
    pattern: PatternSetting,
    n_precip: usize,
    n_obs: usize,
    seed: u64,
) -> WeatherNetwork {
    let (n_temp, _) = scale.weather_sizes();
    weather::generate(&WeatherConfig {
        n_temp,
        n_precip,
        k_neighbors: 5,
        n_obs,
        pattern,
        seed,
    })
}

/// Runs GenClus on a weather network with the paper's §5.2.1 settings:
/// multi-start initialization chosen by objective ("we choose the initial
/// seed as one of the tentative running results with the highest objective
/// function"), 5 outer iterations.
///
/// On the XOR-like Setting 2 the component *combination* across the two
/// attributes can lock into a bad basin that early-iteration objectives do
/// not yet distinguish, so on top of the warmup-based seed selection we run
/// a few full restarts and keep the fit with the best `g₁` evaluated at the
/// common reference strength `γ = 1` (comparable across runs, unlike `g₁`
/// at each run's own learned `γ`).
pub fn run_genclus_weather(net: &WeatherNetwork, scale: Scale, seed: u64) -> GenClusFit {
    let attrs = vec![net.temp_attr, net.precip_attr];
    let restarts = if scale.quick { 1 } else { 6 };
    let ones = vec![1.0; net.graph.schema().n_relations()];
    let mut best: Option<(f64, GenClusFit)> = None;
    for r in 0..restarts {
        let mut cfg = GenClusConfig::new(K, attrs.clone())
            .with_seed(seed.wrapping_add(1000 * r as u64))
            .with_outer_iters(scale.outer_iters_weather());
        cfg.init = InitStrategy::BestOfSeeds {
            candidates: 4,
            warmup_iters: if scale.quick { 3 } else { 5 },
        };
        let fit = GenClus::new(cfg)
            .expect("valid config")
            .fit(&net.graph)
            .expect("fit succeeds");
        let score = genclus_core::objective::g1(
            &net.graph,
            &attrs,
            &fit.model.theta,
            &fit.model.components,
            &ones,
        );
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, fit));
        }
    }
    best.expect("restarts >= 1").1
}

/// Hard labels from k-means on interpolated 2-D features.
fn run_kmeans_weather(net: &WeatherNetwork, seed: u64) -> Vec<usize> {
    let features =
        genclus_baselines::interpolate_features(&net.graph, &[net.temp_attr, net.precip_attr]);
    let mut cfg = genclus_baselines::KMeansConfig::new(K);
    cfg.seed = seed;
    genclus_baselines::kmeans(&features, &cfg).labels
}

/// Hard labels from the spectral-combine baseline.
fn run_spectral_weather(net: &WeatherNetwork, scale: Scale, seed: u64) -> Vec<usize> {
    let mut cfg = genclus_baselines::SpectralConfig::new(K);
    cfg.seed = seed;
    if scale.quick {
        cfg.power_iters = 40;
    }
    genclus_baselines::spectral_combine(&net.graph, &[net.temp_attr, net.precip_attr], &cfg).labels
}

/// The Figs. 7/8 grid: NMI of the three methods over #P × #obs.
fn accuracy_grid(scale: Scale, pattern: PatternSetting, id: &str) -> Report {
    let (n_temp, p_sizes) = scale.weather_sizes();
    let mut report = Report::new(id);
    report.note(format!(
        "Weather network {:?}: #T = {n_temp}, 5-NN per type, K = {K}",
        pattern
    ));
    for &n_precip in &p_sizes {
        let mut table = Table::new(
            format!("T:{n_temp}; P:{n_precip} (NMI by #obs)"),
            &["nobs=1", "nobs=5", "nobs=20"],
        );
        let mut rows: Vec<(&str, Vec<String>)> = vec![
            ("Kmeans", Vec::new()),
            ("SpectralCombine", Vec::new()),
            ("GenClus", Vec::new()),
        ];
        for &n_obs in &scale.weather_obs() {
            let net = make_network(scale, pattern.clone(), n_precip, n_obs, 7);
            let truth = labelset_from(&net.labels.iter().map(|&l| Some(l)).collect::<Vec<_>>());
            let km = run_kmeans_weather(&net, 7);
            rows[0].1.push(f4(nmi_against(&km, &truth, None)));
            let sp = run_spectral_weather(&net, scale, 7);
            rows[1].1.push(f4(nmi_against(&sp, &truth, None)));
            let gc = run_genclus_weather(&net, scale, 7);
            rows[2].1.push(f4(nmi_of(&gc.model.theta, &truth, None)));
        }
        for (name, cells) in rows {
            table.push_row(name, cells);
        }
        report.tables.push(table);
    }
    report
}

/// Fig. 7: clustering accuracy on weather Setting 1.
pub fn fig7(scale: Scale) -> Report {
    accuracy_grid(scale, PatternSetting::Setting1, "fig7")
}

/// Fig. 8: clustering accuracy on weather Setting 2 (the XOR-like layout
/// where both attributes are needed).
pub fn fig8(scale: Scale) -> Report {
    accuracy_grid(scale, PatternSetting::Setting2, "fig8")
}

/// Table 4: ⟨T,P⟩ link prediction MAP on Setting 1 (#T = 1000, #P = 250),
/// GenClus with all three similarity functions.
pub fn table4(scale: Scale) -> Report {
    let (n_temp, p_sizes) = scale.weather_sizes();
    let net = make_network(scale, PatternSetting::Setting1, p_sizes[0], 5, 7);
    let fit = run_genclus_weather(&net, scale, 7);
    let theta = &fit.model.theta;

    let mut report = Report::new("table4");
    report.note(format!(
        "GenClus link prediction for <T,P> on Setting 1, #T={n_temp}, #P={}",
        p_sizes[0]
    ));
    let mut table = Table::new("MAP for <T,P>", &["MAP"]);
    for sim in Similarity::ALL {
        let map = link_prediction_map(&net.graph, net.relations.tp, |q: ObjectId, c: ObjectId| {
            sim.score(theta.row(q.index()), theta.row(c.index()))
        });
        table.push_row(sim.label(), vec![f4(map)]);
    }
    report.tables.push(table);
    report
}

/// Table 5: learned strengths for the four kNN link types on Setting 1 with
/// 5 observations per sensor, across the three network sizes.
pub fn table5(scale: Scale) -> Report {
    let (n_temp, p_sizes) = scale.weather_sizes();
    let mut report = Report::new("table5");
    report.note("Learned link type strengths, Setting 1, 5 observations per sensor".to_string());
    let mut table = Table::new(
        "Strengths by network size",
        &["<T,T>", "<T,P>", "<P,T>", "<P,P>"],
    );
    for &n_precip in &p_sizes {
        let net = make_network(scale, PatternSetting::Setting1, n_precip, 5, 7);
        let fit = run_genclus_weather(&net, scale, 7);
        let cells = net
            .relations
            .labeled()
            .iter()
            .map(|&(_, r)| f2(fit.model.strength(r)))
            .collect();
        table.push_row(format!("T:{n_temp}; P:{n_precip}"), cells);
    }
    report.tables.push(table);
    report
}
