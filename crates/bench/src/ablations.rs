//! Ablation experiments for the design choices §3.3 motivates.
//!
//! * `ablate-sym` — is the *asymmetric* cross-entropy similarity really
//!   better for link prediction than a symmetrized one? (Desideratum 3;
//!   the paper validates it via the Table 2-4 similarity comparison.)
//! * `ablate-fixed` — does *learning* γ improve clustering over fixing
//!   γ ≡ 1? This isolates the paper's headline mechanism: with fixed
//!   strengths GenClus degenerates into an iTopicModel-like smoother.

use crate::methods::{labelset_from, nmi_of, run_text_method, TextMethod};
use crate::report::{f4, Report, Table};
use crate::weather_experiments::run_genclus_weather;
use crate::Scale;
use genclus_core::prelude::*;
use genclus_datagen::dblp;
use genclus_datagen::weather::{self, PatternSetting, WeatherConfig};
use genclus_eval::prelude::*;
use genclus_stats::simplex::cross_entropy;

const K: usize = 4;

/// Symmetrized cross-entropy similarity (violates desideratum 3).
fn symmetric_ce(a: &[f64], b: &[f64]) -> f64 {
    -0.5 * (cross_entropy(a, b) + cross_entropy(b, a))
}

/// `ablate-sym`: MAP on the AC ⟨A,C⟩ prediction task with the asymmetric
/// `−H(θ_j, θ_i)` versus its symmetrization, on GenClus memberships.
pub fn ablate_sym(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let ac = corpus.build_ac();
    let (theta, _) = run_text_method(
        TextMethod::GenClus,
        &ac.graph,
        ac.text_attr,
        K,
        0,
        scale.outer_iters_dblp(),
        true,
    );
    let mut report = Report::new("ablate-sym");
    report.note("Asymmetric vs symmetrized cross-entropy similarity, AC <A,C> MAP".to_string());
    let mut table = Table::new("MAP by similarity", &["MAP"]);
    let asym = link_prediction_map(&ac.graph, ac.rel_ac, |q, c| {
        Similarity::NegCrossEntropy.score(theta.row(q.index()), theta.row(c.index()))
    });
    let sym = link_prediction_map(&ac.graph, ac.rel_ac, |q, c| {
        symmetric_ce(theta.row(q.index()), theta.row(c.index()))
    });
    let cos = link_prediction_map(&ac.graph, ac.rel_ac, |q, c| {
        Similarity::Cosine.score(theta.row(q.index()), theta.row(c.index()))
    });
    table.push_row("-H(theta_j,theta_i) (asymmetric)", vec![f4(asym)]);
    table.push_row("symmetrized cross entropy", vec![f4(sym)]);
    table.push_row("cosine (reference)", vec![f4(cos)]);
    report.tables.push(table);
    report
}

/// Rebuilds a weather network with an extra `noise` relation of `per_node`
/// uniformly random same-type links per sensor — links that carry no cluster
/// signal whatsoever. A method that treats all link types as equally
/// important is poisoned by them; GenClus should learn `γ(noise) ≈ 0`.
fn with_noise_relation(
    net: &genclus_datagen::weather::WeatherNetwork,
    per_node: usize,
    seed: u64,
) -> (genclus_hin::HinGraph, genclus_hin::RelationId) {
    use genclus_hin::{AttributeData, HinBuilder};
    use rand::Rng;

    let mut schema = net.graph.schema().clone();
    let t_type = schema.object_type_by_name("temp_sensor").expect("schema");
    let noise = schema.add_relation("noise", t_type, t_type);
    let mut b = HinBuilder::new(schema);
    for v in net.graph.objects() {
        b.add_object(net.graph.object_type(v), net.graph.object_name(v));
    }
    for (src, link) in net.graph.iter_links() {
        b.add_link(src, link.endpoint, link.relation, link.weight)
            .expect("replayed links are valid");
    }
    for (attr_idx, table) in [net.temp_attr, net.precip_attr].iter().enumerate() {
        let data = net.graph.attribute(*table);
        if let AttributeData::Numerical { .. } = data {
            for v in net.graph.objects() {
                for &x in data.values(v) {
                    b.add_numeric(v, [net.temp_attr, net.precip_attr][attr_idx], x)
                        .expect("replayed observations are valid");
                }
            }
        }
    }
    // Random temp-temp links, cluster-agnostic by construction.
    let mut rng = genclus_stats::seeded_rng(seed);
    let n_t = net.temp_sensors.len();
    for &v in &net.temp_sensors {
        for _ in 0..per_node {
            let u = net.temp_sensors[rng.gen_range(0..n_t)];
            if u != v {
                b.add_link(v, u, noise, 1.0).expect("valid noise link");
            }
        }
    }
    (b.build().expect("valid rebuild"), noise)
}

/// `ablate-fixed`: the value of *learning* γ. A weather network is poisoned
/// with a pure-noise link type; GenClus with strength learning recovers by
/// driving `γ(noise)` to ~0, while the same model with `γ` frozen at 1
/// (an iTopicModel-like smoother) is dragged down by the noise links.
pub fn ablate_fixed(scale: Scale) -> Report {
    let mut report = Report::new("ablate-fixed");
    report.note(
        "Learning gamma vs fixing gamma = 1 on a weather network with an \
         injected pure-noise relation (5 random links per temp sensor)"
            .to_string(),
    );

    let (n_temp, p_sizes) = scale.weather_sizes();
    let base = weather::generate(&WeatherConfig {
        n_temp,
        n_precip: p_sizes[0],
        k_neighbors: 5,
        n_obs: 5,
        pattern: PatternSetting::Setting1,
        seed: 7,
    });
    let (noisy_graph, noise_rel) = with_noise_relation(&base, 5, 99);
    let truth = labelset_from(&base.labels.iter().map(|&l| Some(l)).collect::<Vec<_>>());

    let mut learned_cfg = GenClusConfig::new(K, vec![base.temp_attr, base.precip_attr])
        .with_seed(7)
        .with_outer_iters(scale.outer_iters_weather());
    learned_cfg.init = InitStrategy::BestOfSeeds {
        candidates: if scale.quick { 3 } else { 6 },
        warmup_iters: 3,
    };
    let learned = GenClus::new(learned_cfg.clone())
        .expect("valid config")
        .fit(&noisy_graph)
        .expect("fit succeeds");
    let nmi_learned = nmi_of(&learned.model.theta, &truth, None);

    // Fixed strengths: one outer iteration = the whole EM budget runs with
    // the all-ones γ (the strength update never feeds back).
    let mut fixed_cfg = learned_cfg;
    fixed_cfg.outer_iters = 1;
    fixed_cfg.em_iters = 30 * scale.outer_iters_weather();
    let fixed = GenClus::new(fixed_cfg)
        .expect("valid config")
        .fit(&noisy_graph)
        .expect("fit succeeds");
    let nmi_fixed = nmi_of(&fixed.model.theta, &truth, None);

    let mut table = Table::new(
        format!(
            "Weather Setting 1 + noise relation, T:{n_temp}; P:{} (NMI)",
            p_sizes[0]
        ),
        &["NMI", "gamma(noise)"],
    );
    table.push_row(
        "learned gamma",
        vec![f4(nmi_learned), f4(learned.model.strength(noise_rel))],
    );
    table.push_row("fixed gamma = 1", vec![f4(nmi_fixed), f4(1.0)]);
    report.tables.push(table);

    // The clean network for reference: how much of the gap the noise causes.
    let clean = run_genclus_weather(&base, scale, 7);
    let mut reference = Table::new("Clean network reference", &["NMI"]);
    reference.push_row(
        "learned gamma (no noise relation)",
        vec![f4(nmi_of(&clean.model.theta, &truth, None))],
    );
    report.tables.push(reference);
    report
}
