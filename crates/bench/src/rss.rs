//! Peak-RSS measurement for the size sweep.
//!
//! Linux exposes a process's high-water resident set as `VmHWM` in
//! `/proc/self/status`, and (with `CONFIG_PROC_PAGE_MONITOR`) lets it be
//! reset by writing `5` to `/proc/self/clear_refs`. The sweep resets the
//! peak before each cell and reads it after, giving a true per-cell peak;
//! where the reset is unavailable (non-Linux, locked-down `/proc`) the
//! reading degrades to a monotone process-wide high-water mark — still
//! meaningful because the sweep runs cells smallest-first, so each cell's
//! reading bounds that cell's own peak from above.

/// Current peak RSS in bytes (`VmHWM`), or `None` off Linux / without
/// `/proc`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            // Format: "VmHWM:      1234 kB".
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Attempts to reset the peak-RSS counter; `true` when the write was
/// accepted (subsequent [`peak_rss_bytes`] readings are per-interval).
pub fn reset_peak_rss() -> bool {
    // lint: allow(durable-io-containment) -- procfs control knob, no durable data involved
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_plausibly_on_linux() {
        let Some(peak) = peak_rss_bytes() else {
            return; // not a /proc platform; the sweep records null
        };
        // A test process resident set is at least a few hundred KiB and
        // below a TiB — anything else means the parse slipped a unit.
        assert!(peak > 100 * 1024, "peak {peak} implausibly small");
        assert!(peak < 1 << 40, "peak {peak} implausibly large");

        // Growing the heap must raise (or at least not lower) the peak.
        let before = peak_rss_bytes().unwrap();
        let ballast = vec![7u8; 32 << 20];
        std::hint::black_box(&ballast);
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before);
        assert!(
            after - before >= 16 << 20,
            "32 MiB ballast must show up in the peak (before {before}, after {after})"
        );
    }

    #[test]
    fn reset_makes_readings_per_interval_when_supported() {
        if peak_rss_bytes().is_none() {
            return;
        }
        if !reset_peak_rss() {
            return; // reset unsupported — monotone fallback is documented
        }
        // After a reset the peak collapses to (roughly) the current RSS,
        // which must be far below the ballast-driven peak a fresh large
        // allocation then re-establishes.
        let ballast = vec![7u8; 64 << 20];
        std::hint::black_box(&ballast);
        let with_ballast = peak_rss_bytes().unwrap();
        drop(ballast);
        assert!(reset_peak_rss());
        let after_reset = peak_rss_bytes().unwrap();
        assert!(
            after_reset < with_ballast,
            "reset must drop the peak below the ballast high-water mark \
             ({after_reset} vs {with_ballast})"
        );
    }
}
