//! Reproducible EM perf harness: writes `BENCH_em.json`.
//!
//! ```text
//! bench_em [--quick] [--out <path>]
//! ```
//!
//! Measures the median wall-time of one EM iteration on the weather scaling
//! configurations (1250 / 1500 / 2000 objects, 20 observations per sensor)
//! and the DBLP ACP network, for 1/2/4 threads, with both the optimized
//! kernel and the naive reference kernel in the same run. The headline
//! `speedup` field is the naive/optimized ratio on the 2000-object weather
//! configuration. Exits non-zero if that ratio regresses below 1.5× so the
//! harness doubles as a perf gate.

use genclus_bench::perf::{run_em_perf, EmPerfConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = EmPerfConfig::full();
    let mut out = PathBuf::from("BENCH_em.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = EmPerfConfig::quick(),
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}`\nusage: bench_em [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let report = run_em_perf(&cfg);
    print!("{}", report.render());
    match report.save(&out) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    // Perf gate: only meaningful at full scale on an unloaded machine, but
    // always reported.
    if report.mode == "full" && report.headline.speedup < 1.5 {
        eprintln!(
            "PERF REGRESSION: optimized kernel only {:.2}x over naive (gate: 1.5x)",
            report.headline.speedup
        );
        std::process::exit(1);
    }
}
