//! Reproducible EM perf harness: writes `BENCH_em.json`.
//!
//! ```text
//! bench_em [--quick] [--sweep-only] [--out <path>]
//! ```
//!
//! Measures the median wall-time of one EM iteration on the weather scaling
//! configurations (1250 / 1500 / 2000 objects, 20 observations per sensor)
//! and the DBLP ACP network, for 1/2/4 threads, with both the optimized
//! kernel and the naive reference kernel in the same run — then runs the
//! **size sweep**: the optimized kernel on the scaled presets (10k → 1M
//! objects; `--quick` caps at 100k), recording milliseconds per iteration
//! *and* peak RSS per cell.
//!
//! Gates (full mode only; always reported):
//!
//! * the headline naive/optimized ratio on the 2000-object weather
//!   configuration must stay ≥ 1.5×;
//! * every sweep cell must stay under the per-object time and memory
//!   ceilings (`SWEEP_US_PER_OBJECT_GATE`, `SWEEP_RSS_BYTES_PER_OBJECT_GATE`)
//!   — a regression in either speed or footprint fails the run.
//!
//! `--sweep-only` skips the kernel matrix (no `BENCH_em.json` rewrite) and
//! runs just the sweep and its gates — the CI smoke step uses it with
//! `--quick`.

use genclus_bench::perf::{run_em_perf, run_size_sweep, sweep_violations, EmPerfConfig};
use genclus_datagen::scaled::SCALED_REGISTRY;
use std::path::PathBuf;

fn main() {
    let mut cfg = EmPerfConfig::full();
    let mut out = PathBuf::from("BENCH_em.json");
    let mut sweep_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = EmPerfConfig::quick(),
            "--sweep-only" => sweep_only = true,
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\n\
                     usage: bench_em [--quick] [--sweep-only] [--out <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    if sweep_only {
        let cap = cfg.sweep_max_objects.unwrap_or(usize::MAX);
        let specs: Vec<_> = SCALED_REGISTRY
            .iter()
            .copied()
            .filter(|s| s.n_objects <= cap)
            .collect();
        let threads = *cfg.threads.iter().max().expect("non-empty threads");
        let cells = run_size_sweep(&specs, threads, if cfg.quick { 2 } else { 5 });
        for c in &cells {
            let rss = match c.peak_rss_bytes {
                Some(b) => format!("{:.1} MB peak RSS", b as f64 / (1024.0 * 1024.0)),
                None => "n/a peak RSS".to_string(),
            };
            println!(
                "sweep {:14} {:>9} objects: build {:.2} s  {:.3} ms/iter  {}",
                c.dataset, c.n_objects, c.build_seconds, c.ms_per_iter, rss
            );
        }
        fail_on_sweep_violations(!cfg.quick, &cells);
        return;
    }

    let report = run_em_perf(&cfg);
    print!("{}", report.render());
    match report.save(&out) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    // Perf gates: only meaningful at full scale on an unloaded machine, but
    // always reported.
    if report.mode == "full" && report.headline.speedup < 1.5 {
        eprintln!(
            "PERF REGRESSION: optimized kernel only {:.2}x over naive (gate: 1.5x)",
            report.headline.speedup
        );
        std::process::exit(1);
    }
    fail_on_sweep_violations(report.mode == "full", &report.size_sweep);
}

/// Prints every sweep-gate violation; exits non-zero when gating.
fn fail_on_sweep_violations(gate: bool, cells: &[genclus_bench::perf::SizeSweepCell]) {
    let violations = sweep_violations(cells);
    for v in &violations {
        eprintln!("SWEEP REGRESSION: {v}");
    }
    if gate && !violations.is_empty() {
        std::process::exit(1);
    }
}
