//! Reproducible serving perf harness: writes `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--quick] [--threads N] [--out <path>]
//! ```
//!
//! Fits a weather network, snapshots it, loads the snapshot (exactly the
//! serving path), and measures fold-in / top-k / mixed query batches at
//! batch sizes 1, 16, and 256 in the same run — p50/p99 per-query latency
//! and sustained queries/sec per cell — plus the `commit` / `commit_wal`
//! pair: fold-in commits through the refresh engine without and with the
//! commit write-ahead log, pricing the append + fsync every durable ack
//! pays, the `mixed_metrics_off` / `mixed_metrics_on` pair pricing
//! the always-on metrics registry, and the `multi_client` open-loop pair:
//! the TCP front-end serving the same offered read load through 1 vs 64
//! concurrent connections. In full mode the run exits non-zero if
//! batch-256 throughput falls below batch-1 on the mixed workload
//! (batching must never cost throughput), if metrics-on mixed
//! throughput falls under 97% of metrics-off (`{"op":"metrics"}` must
//! stay near-free for everyone who never asks for it), or if the N=64
//! open-loop p99 exceeds 16x the N=1 p99 (with an absolute allowance of
//! 2 ms per client for scheduler multiplexing on machines with fewer
//! cores than clients) — fanning the same load across connections must
//! cost thread wakeups, not collapse.

use genclus_bench::serve_perf::{run_serve_perf, ServePerfConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = ServePerfConfig::full();
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let threads = cfg.threads;
                cfg = ServePerfConfig::quick();
                cfg.threads = threads;
            }
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\nusage: bench_serve [--quick] [--threads N] [--out <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    let report = run_serve_perf(&cfg);
    print!("{}", report.render());
    match report.save(&out) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    // Throughput gate: only meaningful at full scale on an unloaded
    // machine, but always reported.
    if report.mode == "full" && report.headline.speedup < 1.0 {
        eprintln!(
            "PERF REGRESSION: batch-256 serves only {:.2}x the batch-1 throughput (gate: 1.0x)",
            report.headline.speedup
        );
        std::process::exit(1);
    }

    // Observability gate: recording per-request metrics must cost at most
    // 3% of mixed throughput.
    if report.mode == "full" && report.metrics_overhead.ratio < 0.97 {
        eprintln!(
            "PERF REGRESSION: metrics-on mixed throughput is only {:.3}x metrics-off (gate: 0.97x)",
            report.metrics_overhead.ratio
        );
        std::process::exit(1);
    }

    // Concurrency gate: at the same offered load, 64 connections may pay
    // scheduler wakeups over 1 connection, but nothing pathological. On a
    // machine with fewer cores than clients each client thread can wait
    // ~(clients / cores) timeslices just to be scheduled, so the absolute
    // allowance scales with the client count (2 ms per client); a real
    // serialization collapse on the serving path (the snapshot pin, the
    // accept loop, a stray lock) queues without bound at fixed offered
    // load and blows far past it.
    let mc = &report.multi_client;
    let p99_1 = mc.cells[0].p99_seconds();
    let p99_64 = mc.cells[1].p99_seconds();
    let allowance = 0.002 * mc.cells[1].clients as f64;
    if report.mode == "full" && p99_64 > (16.0 * p99_1).max(allowance) {
        eprintln!(
            "PERF REGRESSION: open-loop p99 at N=64 is {:.3} ms vs {:.3} ms at N=1 \
             ({:.1}x; gate: 16x or {:.0} ms)",
            p99_64 * 1e3,
            p99_1 * 1e3,
            mc.p99_ratio,
            allowance * 1e3,
        );
        std::process::exit(1);
    }
}
