//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <id>... [--quick] [--out <dir>]
//! experiments all [--quick]
//! experiments --list
//! ```

use genclus_bench::{run_experiment, Scale, ALL_EXPERIMENTS};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id>... [--quick] [--out <dir>]\n\
         \u{20}      experiments all [--quick]\n\
         \u{20}      experiments --list\n\
         ids: {}",
        ALL_EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::FULL;
    let mut out_dir = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::QUICK,
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else { usage() };
                out_dir = PathBuf::from(dir);
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            id if ALL_EXPERIMENTS.contains(&id) => ids.push(id.to_string()),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }

    for id in &ids {
        let start = std::time::Instant::now();
        let report = run_experiment(id, scale);
        println!("{}", report.render());
        match report.save(&out_dir) {
            Ok(path) => println!(
                "  [saved {} after {:.1}s]\n",
                path.display(),
                start.elapsed().as_secs_f64()
            ),
            Err(e) => eprintln!("  [failed to save {id}: {e}]"),
        }
    }
}
