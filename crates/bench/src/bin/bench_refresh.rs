//! Reproducible refresh perf harness: writes `BENCH_refresh.json`.
//!
//! ```text
//! bench_refresh [--quick] [--threads N] [--out <path>]
//! ```
//!
//! Fits the paper's 1250-object weather network, grows it by 10% new
//! sensors (staged like the serving layer's refresh queue: fold-in rows +
//! `GraphDelta`), and re-fits the appended graph twice in the same run —
//! warm-started from the served `(Θ, β, γ)` versus cold from random
//! initialization — reporting total EM iterations to converge and wall
//! time for each. In full mode the run exits non-zero unless the warm
//! re-fit converges in **strictly fewer** EM iterations than the cold
//! one: that gap is the entire value of the refresh subsystem. Both modes
//! also require the refreshed snapshot to answer `membership` / `top_k`
//! for original and appended sensors.
//!
//! Schema v2 adds the serving matrix: an open-loop query stream races the
//! triggered re-fit through the wire engine, inline (loop-blocking) vs
//! background (double-buffered), and the run exits non-zero in full mode
//! when the inline p99 during the refresh is not at least **5×** the
//! background p99 — the stall the background worker exists to remove.

use genclus_bench::refresh_perf::{run_refresh_perf, RefreshPerfConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = RefreshPerfConfig::full();
    let mut out = PathBuf::from("BENCH_refresh.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let threads = cfg.threads;
                cfg = RefreshPerfConfig::quick();
                cfg.threads = threads;
            }
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\nusage: bench_refresh [--quick] [--threads N] [--out <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    let report = run_refresh_perf(&cfg);
    print!("{}", report.render());
    match report.save(&out) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    // Convergence gate: the acceptance criterion of the refresh subsystem.
    if report.mode == "full"
        && report.headline.warm_em_iterations >= report.headline.cold_em_iterations
    {
        eprintln!(
            "PERF REGRESSION: warm re-fit took {} EM iterations, cold took {} (gate: strictly fewer)",
            report.headline.warm_em_iterations, report.headline.cold_em_iterations
        );
        std::process::exit(1);
    }

    // Stall gate: background refresh must keep query p99 during a re-fit
    // at least 5× below the inline (loop-blocking) path.
    if report.mode == "full" && report.serving_headline.stall_reduction < 5.0 {
        eprintln!(
            "PERF REGRESSION: inline p99 {:.3} ms is only {:.2}x the background p99 {:.3} ms \
             during a refresh (gate: >= 5x)",
            report.serving_headline.inline_p99_ms,
            report.serving_headline.stall_reduction,
            report.serving_headline.background_p99_ms,
        );
        std::process::exit(1);
    }
}
