//! Experiment harness for the GenClus reproduction.
//!
//! One runnable experiment per table and figure of the paper's §5 (plus two
//! ablations), each printing the same rows/series the paper reports and
//! writing a TSV copy under `results/`. Run them via
//!
//! ```text
//! cargo run --release -p genclus-bench --bin experiments -- <id> [--quick]
//! cargo run --release -p genclus-bench --bin experiments -- all
//! ```
//!
//! where `<id>` is one of `fig5`, `fig6`, `table1`, `fig7`, `fig8`,
//! `table2`, `table3`, `table4`, `table5`, `fig9`, `fig10`, `fig11`,
//! `ablate-sym`, `ablate-fixed`. `--quick` shrinks corpus sizes and restart
//! counts so the whole suite finishes in well under a minute (used by the
//! crate's tests); the default scale matches the paper's configurations.

pub mod ablations;
pub mod dblp_experiments;
pub mod methods;
pub mod perf;
pub mod quantiles;
pub mod refresh_perf;
pub mod report;
pub mod rss;
pub mod serve_perf;
pub mod timing;
pub mod weather_experiments;

use report::Report;

/// Controls experiment sizes: `full` reproduces the paper's configurations,
/// quick mode shrinks them for smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Quick (test) mode flag.
    pub quick: bool,
}

impl Scale {
    /// Paper-scale experiments.
    pub const FULL: Scale = Scale { quick: false };
    /// Smoke-test scale.
    pub const QUICK: Scale = Scale { quick: true };

    /// DBLP corpus configuration.
    pub fn dblp_config(&self) -> genclus_datagen::DblpConfig {
        if self.quick {
            genclus_datagen::dblp::DblpConfig {
                n_authors: 200,
                n_papers: 300,
                ..Default::default()
            }
        } else {
            genclus_datagen::dblp::DblpConfig::default()
        }
    }

    /// Number of random restarts for the Fig. 5/6 mean±std runs (paper: 20).
    pub fn restarts(&self) -> usize {
        if self.quick {
            3
        } else {
            20
        }
    }

    /// GenClus outer iterations (paper: 10 on DBLP, 5 on weather).
    pub fn outer_iters_dblp(&self) -> usize {
        if self.quick {
            3
        } else {
            10
        }
    }

    /// GenClus outer iterations for weather networks.
    pub fn outer_iters_weather(&self) -> usize {
        if self.quick {
            3
        } else {
            5
        }
    }

    /// Weather network sizes: `#T` and the three `#P` values.
    pub fn weather_sizes(&self) -> (usize, [usize; 3]) {
        if self.quick {
            (200, [50, 100, 200])
        } else {
            (1000, [250, 500, 1000])
        }
    }

    /// Observation counts per sensor.
    pub fn weather_obs(&self) -> [usize; 3] {
        [1, 5, 20]
    }
}

/// Every experiment id, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig5",
    "fig6",
    "table1",
    "fig7",
    "fig8",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig9",
    "fig10",
    "fig11",
    "ablate-sym",
    "ablate-fixed",
];

/// Dispatches one experiment by id.
///
/// # Panics
/// Panics on an unknown id (the binary validates first).
pub fn run_experiment(id: &str, scale: Scale) -> Report {
    match id {
        "fig5" => dblp_experiments::fig5(scale),
        "fig6" => dblp_experiments::fig6(scale),
        "table1" => dblp_experiments::table1(scale),
        "table2" => dblp_experiments::table2(scale),
        "table3" => dblp_experiments::table3(scale),
        "fig9" => dblp_experiments::fig9(scale),
        "fig10" => dblp_experiments::fig10(scale),
        "fig7" => weather_experiments::fig7(scale),
        "fig8" => weather_experiments::fig8(scale),
        "table4" => weather_experiments::table4(scale),
        "table5" => weather_experiments::table5(scale),
        "fig11" => timing::fig11(scale),
        "ablate-sym" => ablations::ablate_sym(scale),
        "ablate-fixed" => ablations::ablate_fixed(scale),
        other => panic!("unknown experiment id `{other}`"),
    }
}
