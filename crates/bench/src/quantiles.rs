//! Latency quantiles through the shared obs histogram.
//!
//! The bench harness used to sort each cell's latency samples and index
//! into the sorted vector — two slightly different nearest-rank formulas
//! across `serve_perf` and `refresh_perf`. Both now go through
//! [`genclus_obs::Histogram`], the same log-bucketed structure the
//! serving layer's `{"op":"metrics"}` op reports from, so a bench p99
//! and a served p99 are computed by the same code with the same bounded
//! representation error (bucket midpoint, ≤ 1/64 relative; the maximum
//! is exact). The test below pins the histogram path against the old
//! sort-based computation.

use genclus_obs::{Histogram, HistogramSnapshot};

/// Builds a histogram over latency samples given in **seconds**,
/// recorded at nanosecond resolution (the serving layer's unit).
pub fn latency_histogram(samples_seconds: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples_seconds {
        h.record((s.max(0.0) * 1e9).round() as u64);
    }
    h.snapshot()
}

/// Nearest-rank quantile in seconds; `q >= 1.0` is the exact maximum.
/// Returns 0 when no samples were recorded.
pub fn quantile_seconds(snap: &HistogramSnapshot, q: f64) -> f64 {
    snap.quantile(q) as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The formula `ServeMeasurement::percentile` used before the
    /// histogram: sort, index `floor(q·n)` clamped to the last sample.
    fn sort_based(samples: &[f64], q: f64) -> f64 {
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * s.len() as f64) as usize).min(s.len() - 1);
        s[idx]
    }

    #[test]
    fn histogram_quantiles_match_the_old_sort_based_math() {
        // 997 samples (prime, so q·n is never an integer and the old
        // floor rank and the histogram's ceil rank pick the same order
        // statistic), spanning the µs-to-ms range a serve cell produces.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let samples: Vec<f64> = (0..997)
            .map(|_| 1e-6 + (next() % 1_000_000) as f64 * 1e-8)
            .collect();
        let snap = latency_histogram(&samples);
        for q in [0.5, 0.9, 0.99] {
            let want = sort_based(&samples, q);
            let got = quantile_seconds(&snap, q);
            let tol = want / 64.0 + 2e-9;
            assert!(
                (got - want).abs() <= tol,
                "q={q}: histogram {got} vs sorted {want} (tol {tol:e})"
            );
        }
        // q = 1.0 reports the recorded maximum exactly, not a bucket.
        let want = sort_based(&samples, 1.0);
        let got = quantile_seconds(&snap, 1.0);
        assert!((got - want).abs() <= 1e-9, "max {got} vs {want}");
    }

    #[test]
    fn degenerate_sample_sets_behave() {
        assert_eq!(quantile_seconds(&latency_histogram(&[]), 0.5), 0.0);
        let one = latency_histogram(&[0.25]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = quantile_seconds(&one, q);
            assert!((got - 0.25).abs() <= 0.25 / 64.0, "q={q}: {got}");
        }
        // Negative wall-clock artifacts clamp to zero instead of wrapping.
        assert_eq!(quantile_seconds(&latency_histogram(&[-1.0]), 1.0), 0.0);
    }
}
