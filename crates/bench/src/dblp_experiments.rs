//! DBLP four-area experiments: Figs. 5, 6, 9, 10 and Tables 1–3.

use crate::methods::{
    cluster_to_class_map, labelset_from, nmi_of, row_in_class_order, run_text_method, TextMethod,
};
use crate::report::{f2, f4, Report, Table};
use crate::Scale;
use genclus_core::prelude::*;
use genclus_datagen::dblp::{self, FOUR_AREAS};
use genclus_eval::prelude::*;
use genclus_hin::prelude::*;
use genclus_stats::{mean, sample_std};

const K: usize = 4;

/// Fig. 5: clustering accuracy (NMI mean and std over random restarts) on
/// the **AC network**, columns Overall / C / A.
pub fn fig5(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let ac = corpus.build_ac();
    let truth = labelset_from(&ac.labels);
    let mut report = Report::new("fig5");
    report.note(format!(
        "AC network: {} authors, {} conferences, {} links; {} restarts",
        ac.authors.len(),
        ac.conferences.len(),
        ac.graph.n_links(),
        scale.restarts()
    ));

    let subsets: [(&str, Option<&[ObjectId]>); 3] = [
        ("Overall", None),
        ("C", Some(&ac.conferences)),
        ("A", Some(&ac.authors)),
    ];
    let mut mean_table = Table::new("Mean of NMI", &["Overall", "C", "A"]);
    let mut std_table = Table::new("Std of NMI", &["Overall", "C", "A"]);
    for method in TextMethod::ALL {
        let mut per_column: Vec<Vec<f64>> = vec![Vec::new(); subsets.len()];
        for restart in 0..scale.restarts() {
            let (theta, _) = run_text_method(
                method,
                &ac.graph,
                ac.text_attr,
                K,
                restart as u64,
                scale.outer_iters_dblp(),
                false,
            );
            for (c, (_, subset)) in subsets.iter().enumerate() {
                per_column[c].push(nmi_of(&theta, &truth, *subset));
            }
        }
        mean_table.push_row(
            method.name(),
            per_column.iter().map(|xs| f4(mean(xs))).collect(),
        );
        std_table.push_row(
            method.name(),
            per_column.iter().map(|xs| f4(sample_std(xs))).collect(),
        );
    }
    report.tables.push(mean_table);
    report.tables.push(std_table);
    report
}

/// Fig. 6: the same comparison on the **ACP network** (text on papers
/// only), columns Overall / C / A / P.
pub fn fig6(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let acp = corpus.build_acp();
    let truth = labelset_from(&acp.labels);
    let mut report = Report::new("fig6");
    report.note(format!(
        "ACP network: {} authors, {} conferences, {} papers, {} links; {} restarts",
        acp.authors.len(),
        acp.conferences.len(),
        acp.papers.len(),
        acp.graph.n_links(),
        scale.restarts()
    ));

    let subsets: [(&str, Option<&[ObjectId]>); 4] = [
        ("Overall", None),
        ("C", Some(&acp.conferences)),
        ("A", Some(&acp.authors)),
        ("P", Some(&acp.papers)),
    ];
    let mut mean_table = Table::new("Mean of NMI", &["Overall", "C", "A", "P"]);
    let mut std_table = Table::new("Std of NMI", &["Overall", "C", "A", "P"]);
    for method in TextMethod::ALL {
        let mut per_column: Vec<Vec<f64>> = vec![Vec::new(); subsets.len()];
        for restart in 0..scale.restarts() {
            let (theta, _) = run_text_method(
                method,
                &acp.graph,
                acp.text_attr,
                K,
                restart as u64,
                scale.outer_iters_dblp(),
                false,
            );
            for (c, (_, subset)) in subsets.iter().enumerate() {
                per_column[c].push(nmi_of(&theta, &truth, *subset));
            }
        }
        mean_table.push_row(
            method.name(),
            per_column.iter().map(|xs| f4(mean(xs))).collect(),
        );
        std_table.push_row(
            method.name(),
            per_column.iter().map(|xs| f4(sample_std(xs))).collect(),
        );
    }
    report.tables.push(mean_table);
    report.tables.push(std_table);
    report
}

/// Table 1: cluster-membership case study on the AC network. Clusters are
/// matched to areas by majority vote over the labeled conferences, then the
/// membership rows of the case-study objects are printed in area order.
pub fn table1(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let ac = corpus.build_ac();
    let truth = labelset_from(&ac.labels);
    let (theta, _) = run_text_method(
        TextMethod::GenClus,
        &ac.graph,
        ac.text_attr,
        K,
        0,
        scale.outer_iters_dblp(),
        true,
    );
    let map = cluster_to_class_map(&theta, &truth, &ac.conferences, K, FOUR_AREAS.len());

    let mut report = Report::new("table1");
    report.note("GenClus cluster memberships for case-study objects (AC network)".to_string());
    let mut table = Table::new("Case Studies of Cluster Membership", &FOUR_AREAS);
    for name in [
        "SIGMOD",
        "KDD",
        "CIKM",
        "Jennifer Widom",
        "Jim Gray",
        "Christos Faloutsos",
    ] {
        let Some(v) = ac.graph.object_by_name(name) else {
            continue;
        };
        let row = row_in_class_order(theta.row(v.index()), &map, FOUR_AREAS.len());
        table.push_row(name, row.iter().map(|&x| f4(x)).collect());
    }
    report.tables.push(table);
    report
}

/// Shared MAP-table builder for Tables 2 and 3.
fn map_table(
    graph: &HinGraph,
    attr: AttributeId,
    relation: RelationId,
    scale: Scale,
    title: &str,
) -> Table {
    let mut thetas = Vec::new();
    for method in TextMethod::ALL {
        let (theta, _) = run_text_method(
            method,
            graph,
            attr,
            K,
            0,
            scale.outer_iters_dblp(),
            method == TextMethod::GenClus,
        );
        thetas.push((method, theta));
    }
    let mut table = Table::new(title, &["NetPLSA", "iTopicModel", "GenClus"]);
    for sim in Similarity::ALL {
        let cells = thetas
            .iter()
            .map(|(_, theta)| {
                f4(link_prediction_map(graph, relation, |q, c| {
                    sim.score(theta.row(q.index()), theta.row(c.index()))
                }))
            })
            .collect();
        table.push_row(sim.label(), cells);
    }
    table
}

/// Table 2: link prediction MAP for the ⟨A,C⟩ relation on the AC network.
pub fn table2(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let ac = corpus.build_ac();
    let mut report = Report::new("table2");
    report.note("Prediction accuracy (MAP) for the A-C relation in the AC network".to_string());
    report.tables.push(map_table(
        &ac.graph,
        ac.text_attr,
        ac.rel_ac,
        scale,
        "MAP for <A,C>",
    ));
    report
}

/// Table 3: link prediction MAP for the ⟨P,C⟩ relation on the ACP network.
pub fn table3(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let acp = corpus.build_acp();
    let mut report = Report::new("table3");
    report.note("Prediction accuracy (MAP) for the P-C relation in the ACP network".to_string());
    report.tables.push(map_table(
        &acp.graph,
        acp.text_attr,
        acp.rel_pc,
        scale,
        "MAP for <P,C>",
    ));
    report
}

/// Fig. 9: learned link-type strengths on the AC and ACP networks.
pub fn fig9(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let mut report = Report::new("fig9");

    let ac = corpus.build_ac();
    let (_, gamma) = run_text_method(
        TextMethod::GenClus,
        &ac.graph,
        ac.text_attr,
        K,
        0,
        scale.outer_iters_dblp(),
        true,
    );
    let gamma = gamma.expect("GenClus returns strengths");
    let mut t_ac = Table::new("Strengths: AC network", &["gamma"]);
    for (r, def) in ac.graph.schema().relations() {
        t_ac.push_row(def.name.clone(), vec![f2(gamma[r.index()])]);
    }
    report.tables.push(t_ac);

    let acp = corpus.build_acp();
    let (_, gamma) = run_text_method(
        TextMethod::GenClus,
        &acp.graph,
        acp.text_attr,
        K,
        0,
        scale.outer_iters_dblp(),
        true,
    );
    let gamma = gamma.expect("GenClus returns strengths");
    let mut t_acp = Table::new("Strengths: ACP network", &["gamma"]);
    for (r, def) in acp.graph.schema().relations() {
        t_acp.push_row(def.name.clone(), vec![f2(gamma[r.index()])]);
    }
    report.tables.push(t_acp);
    report
}

/// Fig. 10: a typical running case on the AC network — per-outer-iteration
/// clustering accuracy (C and A) and strength trajectories.
pub fn fig10(scale: Scale) -> Report {
    let corpus = dblp::generate(&scale.dblp_config());
    let ac = corpus.build_ac();
    let truth = labelset_from(&ac.labels);

    let mut cfg = GenClusConfig::new(K, vec![ac.text_attr])
        .with_seed(0)
        .with_outer_iters(scale.outer_iters_dblp());
    cfg.init = InitStrategy::BestOfSeeds {
        candidates: 5,
        warmup_iters: 3,
    };
    cfg.gamma_tol = 0.0; // run all iterations so the trajectory is complete

    let mut rows: Vec<(usize, f64, f64, Vec<f64>)> = Vec::new();
    let runner = GenClus::new(cfg).expect("valid config");
    let _fit = runner
        .fit_observed(&ac.graph, |view| {
            let nmi_c = nmi_against(&view.theta.hard_labels(), &truth, Some(&ac.conferences));
            let nmi_a = nmi_against(&view.theta.hard_labels(), &truth, Some(&ac.authors));
            rows.push((view.iteration, nmi_c, nmi_a, view.gamma.to_vec()));
        })
        .expect("fit succeeds");

    let mut report = Report::new("fig10");
    report
        .note("GenClus on the AC network: accuracy and strengths per outer iteration".to_string());
    let rel_names: Vec<String> = ac
        .graph
        .schema()
        .relations()
        .map(|(_, d)| d.name.clone())
        .collect();
    let mut columns: Vec<&str> = vec!["NMI(C)", "NMI(A)"];
    for n in &rel_names {
        columns.push(n);
    }
    let mut table = Table::new("Running case: per-iteration trajectory", &columns);
    for (iter, nmi_c, nmi_a, gamma) in &rows {
        let mut cells = vec![f4(*nmi_c), f4(*nmi_a)];
        cells.extend(gamma.iter().map(|&g| f2(g)));
        table.push_row(format!("iter {iter}"), cells);
    }
    report.tables.push(table);
    report
}
