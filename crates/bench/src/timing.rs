//! Fig. 11: efficiency study — EM wall-time per inner iteration as the
//! network grows, plus the parallel-EM speedup observation of §5.4.

use crate::report::{f2, Report, Table};
use crate::weather_experiments::run_genclus_weather;
use crate::Scale;
use genclus_core::prelude::*;
use genclus_datagen::weather::{self, PatternSetting, WeatherConfig};

const K: usize = 4;

/// Fig. 11: execution time of one EM inner iteration for both pattern
/// settings, network sizes 1250/1500/2000 (i.e. #T = 1000, #P ∈
/// {250, 500, 1000}), and 1/5/20 observations per sensor; plus a 4-thread
/// parallel speedup measurement on the largest configuration.
pub fn fig11(scale: Scale) -> Report {
    let (n_temp, p_sizes) = scale.weather_sizes();
    let mut report = Report::new("fig11");
    report.note("EM wall-time per inner iteration (milliseconds)".to_string());

    for (setting, pattern) in [
        ("Setting 1", PatternSetting::Setting1),
        ("Setting 2", PatternSetting::Setting2),
    ] {
        let mut table = Table::new(
            format!("{setting}: ms / EM iteration"),
            &["nobs=1", "nobs=5", "nobs=20"],
        );
        for &n_precip in &p_sizes {
            let mut cells = Vec::new();
            for &n_obs in &scale.weather_obs() {
                let net = weather::generate(&WeatherConfig {
                    n_temp,
                    n_precip,
                    k_neighbors: 5,
                    n_obs,
                    pattern: pattern.clone(),
                    seed: 7,
                });
                let fit = run_genclus_weather(&net, scale, 7);
                cells.push(f2(fit.history.mean_em_seconds_per_inner_iteration() * 1e3));
            }
            table.push_row(format!("{} objects", n_temp + n_precip), cells);
        }
        report.tables.push(table);
    }

    // Parallel speedup on the largest configuration (paper: 3.19× with 4
    // threads).
    let net = weather::generate(&WeatherConfig {
        n_temp,
        n_precip: p_sizes[2],
        k_neighbors: 5,
        n_obs: 20,
        pattern: PatternSetting::Setting1,
        seed: 7,
    });
    let time_with = |threads: usize| -> f64 {
        let mut cfg = GenClusConfig::new(K, vec![net.temp_attr, net.precip_attr])
            .with_seed(7)
            .with_threads(threads)
            .with_outer_iters(if scale.quick { 1 } else { 2 });
        cfg.em_iters = if scale.quick { 5 } else { 15 };
        cfg.em_tol = 0.0; // fixed iteration count for a fair timing comparison
        let fit = GenClus::new(cfg)
            .expect("valid config")
            .fit(&net.graph)
            .expect("fit succeeds");
        fit.history.mean_em_seconds_per_inner_iteration()
    };
    let serial = time_with(1);
    let parallel = time_with(4);
    let speedup = if parallel > 0.0 {
        serial / parallel
    } else {
        0.0
    };
    let mut table = Table::new(
        "Parallel EM (4 threads) on the largest network",
        &["serial ms/iter", "parallel ms/iter", "speedup"],
    );
    table.push_row(
        format!("{} objects, nobs=20", n_temp + p_sizes[2]),
        vec![f2(serial * 1e3), f2(parallel * 1e3), f2(speedup)],
    );
    report.tables.push(table);
    report
}
