//! Method adapters: run each clustering method on a network with a common
//! interface, plus label/NMI helpers shared by the experiments.

use genclus_core::prelude::*;
use genclus_eval::prelude::*;
use genclus_hin::prelude::*;
use genclus_stats::MembershipMatrix;

/// The three soft-clustering methods compared on the text networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextMethod {
    /// NetPLSA (Mei et al. 2008).
    NetPlsa,
    /// iTopicModel (Sun et al. 2009).
    ITopicModel,
    /// GenClus (this paper).
    GenClus,
}

impl TextMethod {
    /// All methods in the paper's legend order.
    pub const ALL: [TextMethod; 3] = [
        TextMethod::NetPlsa,
        TextMethod::ITopicModel,
        TextMethod::GenClus,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::NetPlsa => "NetPLSA",
            Self::ITopicModel => "iTopicModel",
            Self::GenClus => "GenClus",
        }
    }
}

/// Runs a text-attribute method and returns its soft memberships (plus the
/// learned strengths for GenClus).
pub fn run_text_method(
    method: TextMethod,
    graph: &HinGraph,
    attr: AttributeId,
    k: usize,
    seed: u64,
    outer_iters: usize,
    stable_init: bool,
) -> (MembershipMatrix, Option<Vec<f64>>) {
    match method {
        TextMethod::NetPlsa => {
            let mut cfg = genclus_baselines::NetPlsaConfig::new(k);
            cfg.seed = seed;
            let out = genclus_baselines::fit_netplsa(graph, attr, &cfg);
            (out.theta, None)
        }
        TextMethod::ITopicModel => {
            let mut cfg = genclus_baselines::ITopicConfig::new(k);
            cfg.seed = seed;
            let out = genclus_baselines::fit_itopicmodel(graph, attr, &cfg);
            (out.theta, None)
        }
        TextMethod::GenClus => {
            let mut cfg = GenClusConfig::new(k, vec![attr])
                .with_seed(seed)
                .with_outer_iters(outer_iters);
            if stable_init {
                cfg.init = InitStrategy::BestOfSeeds {
                    candidates: 5,
                    warmup_iters: 3,
                };
            }
            let fit = GenClus::new(cfg)
                .expect("valid config")
                .fit(graph)
                .expect("fit succeeds");
            (fit.model.theta, Some(fit.model.gamma))
        }
    }
}

/// Converts a per-object optional label vector into a [`LabelSet`].
pub fn labelset_from(labels: &[Option<usize>]) -> LabelSet {
    let mut ls = LabelSet::new(labels.len());
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            ls.set(ObjectId::from_index(i), *c);
        }
    }
    ls
}

/// NMI of hard labels against a partial truth, optionally restricted to a
/// subset of objects (an object type).
pub fn nmi_of(theta: &MembershipMatrix, truth: &LabelSet, subset: Option<&[ObjectId]>) -> f64 {
    nmi_against(&theta.hard_labels(), truth, subset)
}

/// Maps each cluster index to the majority ground-truth class among a set of
/// reference objects (used to present Table 1 columns in area order).
///
/// Clusters with no labeled representative map to themselves.
pub fn cluster_to_class_map(
    theta: &MembershipMatrix,
    truth: &LabelSet,
    reference: &[ObjectId],
    k: usize,
    n_classes: usize,
) -> Vec<usize> {
    let hard = theta.hard_labels();
    let mut votes = vec![vec![0usize; n_classes]; k];
    for &v in reference {
        if let Some(t) = truth.get(v) {
            votes[hard[v.index()]][t] += 1;
        }
    }
    votes
        .iter()
        .enumerate()
        .map(|(cluster, v)| {
            let (best, &n) = v
                .iter()
                .enumerate()
                .max_by_key(|&(_, n)| *n)
                .unwrap_or((cluster, &0));
            if n == 0 {
                cluster.min(n_classes - 1)
            } else {
                best
            }
        })
        .collect()
}

/// Reorders a membership row from cluster order into class order using the
/// map from [`cluster_to_class_map`]; classes claimed by several clusters
/// accumulate.
pub fn row_in_class_order(row: &[f64], cluster_to_class: &[usize], n_classes: usize) -> Vec<f64> {
    let mut out = vec![0.0; n_classes];
    for (cluster, &mass) in row.iter().enumerate() {
        out[cluster_to_class[cluster]] += mass;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labelset_round_trip() {
        let ls = labelset_from(&[Some(1), None, Some(0)]);
        assert_eq!(ls.n_labeled(), 2);
        assert_eq!(ls.get(ObjectId(0)), Some(1));
        assert_eq!(ls.get(ObjectId(1)), None);
    }

    #[test]
    fn cluster_map_majority_vote() {
        let theta = MembershipMatrix::from_rows(
            &[
                vec![0.9, 0.1], // cluster 0
                vec![0.8, 0.2], // cluster 0
                vec![0.1, 0.9], // cluster 1
            ],
            2,
        );
        let truth = labelset_from(&[Some(1), Some(1), Some(0)]);
        let refs: Vec<ObjectId> = (0..3).map(ObjectId::from_index).collect();
        let map = cluster_to_class_map(&theta, &truth, &refs, 2, 2);
        assert_eq!(map, vec![1, 0]);
        let row = row_in_class_order(&[0.7, 0.3], &map, 2);
        assert_eq!(row, vec![0.3, 0.7]);
    }

    #[test]
    fn method_names() {
        assert_eq!(TextMethod::GenClus.name(), "GenClus");
        assert_eq!(TextMethod::ALL.len(), 3);
    }
}
