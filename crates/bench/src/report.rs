//! Aligned-table rendering and TSV persistence for experiment output.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One table of an experiment report: a header column plus named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers (not counting the row-label column).
    pub columns: Vec<String>,
    /// `(row label, cells)` pairs; each row must have `columns.len()` cells.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of formatted cells.
    ///
    /// # Panics
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push((label.into(), cells));
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(0))
            .max()
            .unwrap_or(0);
        widths.push(label_width);
        for (c, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, cells)| cells[c].len())
                .chain(std::iter::once(col.len()))
                .max()
                .unwrap_or(col.len());
            widths.push(w);
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<w$}", "", w = widths[0] + 2));
        for (c, col) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", col, w = widths[c + 1]));
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{:<w$}  ", label, w = widths[0]));
            for (c, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", cell, w = widths[c + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Tab-separated representation (header row first).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str("row");
        for c in &self.columns {
            out.push('\t');
            out.push_str(c);
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(label);
            for cell in cells {
                out.push('\t');
                out.push_str(cell);
            }
            out.push('\n');
        }
        out
    }
}

/// A complete experiment report: tables plus free-form notes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (`fig5`, `table2`, …).
    pub id: String,
    /// Rendered tables.
    pub tables: Vec<Table>,
    /// Context lines printed before the tables.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report for `id`.
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            ..Self::default()
        }
    }

    /// Adds a context note.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Renders the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("==== experiment {} ====\n", self.id));
        for n in &self.notes {
            out.push_str(&format!("  {n}\n"));
        }
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        out
    }

    /// Writes the TSV form to `<dir>/<id>.tsv` and returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.tsv", self.id));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        for n in &self.notes {
            writeln!(f, "# {n}")?;
        }
        for t in &self.tables {
            writeln!(f, "{}", t.to_tsv())?;
        }
        f.flush()?;
        Ok(path)
    }
}

/// Formats a float with 4 decimal places (the paper's table precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimal places (the paper's strength precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["alpha", "b"]);
        t.push_row("row-one", vec!["1.0".into(), "2".into()]);
        t.push_row("r2", vec!["10.25".into(), "333".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines have the same length (alignment).
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row("x", vec!["1".into()]);
    }

    #[test]
    fn tsv_round_trip_structure() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row("x", vec!["1".into()]);
        let tsv = t.to_tsv();
        assert!(tsv.contains("row\ta"));
        assert!(tsv.contains("x\t1"));
    }

    #[test]
    fn report_saves_tsv() {
        let mut r = Report::new("unit-test-report");
        r.note("a note");
        let mut t = Table::new("demo", &["a"]);
        t.push_row("x", vec![f4(0.123456).to_string()]);
        r.tables.push(t);
        let dir = std::env::temp_dir().join("genclus-bench-test");
        let path = r.save(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("# a note"));
        assert!(content.contains("0.1235"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.5), "0.5000");
        assert_eq!(f2(13.302), "13.30");
    }
}
