//! The EM perf trajectory: `BENCH_em.json`.
//!
//! Measures the median wall-time of one EM iteration — per dataset size, per
//! thread count, for **both** kernels in the same run:
//!
//! * `optimized` — [`genclus_core::em::EmEngine`]: cached log tables,
//!   reusable scratch, persistent worker pool;
//! * `naive` — [`genclus_core::em_reference::ReferenceEmKernel`]: `ln` per
//!   observation, fresh allocations and a scoped thread spawn per step (the
//!   seed implementation, kept as the yardstick).
//!
//! The headline number is the naive/optimized median ratio on the largest
//! weather configuration (2000 objects, 20 observations per sensor, the
//! paper's Fig. 11 scaling network) at the highest measured thread count.
//! `cargo run --release -p genclus-bench --bin bench_em` writes
//! `BENCH_em.json`; the schema is documented in ROADMAP.md's Performance
//! section and mirrored by [`EmPerfReport::to_json`].

use crate::rss;
use genclus_core::attr_model::ClusterComponents;
use genclus_core::em::EmEngine;
use genclus_core::em_reference::ReferenceEmKernel;
use genclus_datagen::dblp::{self, DblpConfig};
use genclus_datagen::scaled::{ScaledSpec, SCALED_REGISTRY};
use genclus_datagen::weather::{generate, PatternSetting, WeatherConfig};
use genclus_hin::{AttributeId, HinGraph};
use genclus_stats::MembershipMatrix;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Clusters used by every measured configuration.
pub const K: usize = 4;

/// Controls the measurement run.
#[derive(Debug, Clone)]
pub struct EmPerfConfig {
    /// Quick mode: tiny networks, few samples (used by the smoke test).
    pub quick: bool,
    /// Thread counts to measure (each with both kernels).
    pub threads: Vec<usize>,
    /// Timed iterations per (config, threads, kernel) cell.
    pub samples: usize,
    /// Largest [`SCALED_REGISTRY`] preset the size sweep runs (`None`
    /// skips the sweep entirely).
    pub sweep_max_objects: Option<usize>,
}

impl EmPerfConfig {
    /// Full-scale measurement (the committed `BENCH_em.json`): the whole
    /// sweep registry, up to and including the million-object preset.
    pub fn full() -> Self {
        Self {
            quick: false,
            threads: vec![1, 2, 4],
            samples: 15,
            sweep_max_objects: Some(usize::MAX),
        }
    }

    /// Smoke-test scale; the sweep is capped at the 100k presets so a
    /// quick run still exercises the scale path without the 1M build.
    pub fn quick() -> Self {
        Self {
            quick: true,
            threads: vec![1, 2],
            samples: 3,
            sweep_max_objects: Some(100_000),
        }
    }
}

/// One measured cell: a (dataset config, thread count, kernel) triple.
#[derive(Debug, Clone)]
pub struct EmMeasurement {
    /// Dataset family: `weather` or `dblp-acp`.
    pub dataset: &'static str,
    /// Human-readable configuration label.
    pub config: String,
    /// Objects in the network.
    pub n_objects: usize,
    /// Directed links in the network.
    pub n_links: usize,
    /// Worker threads.
    pub threads: usize,
    /// `optimized` or `naive`.
    pub kernel: &'static str,
    /// Seconds per EM iteration, one entry per timed iteration.
    pub samples: Vec<f64>,
}

impl EmMeasurement {
    /// Median seconds per iteration.
    pub fn median_seconds(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    }

    /// Mean seconds per iteration.
    pub fn mean_seconds(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// The headline comparison the acceptance gate reads.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Configuration label the comparison was taken on.
    pub config: String,
    /// Thread count of the compared cells.
    pub threads: usize,
    /// Optimized kernel median, milliseconds per iteration.
    pub optimized_median_ms: f64,
    /// Naive kernel median, milliseconds per iteration.
    pub naive_median_ms: f64,
    /// `naive / optimized` median ratio.
    pub speedup: f64,
}

/// One size-sweep cell: the optimized kernel on a [`SCALED_REGISTRY`]
/// preset, recording both time *and* memory.
#[derive(Debug, Clone)]
pub struct SizeSweepCell {
    /// Preset name (`weather-100k`, …).
    pub dataset: &'static str,
    /// Objects in the network.
    pub n_objects: usize,
    /// Directed links in the network.
    pub n_links: usize,
    /// Worker threads.
    pub threads: usize,
    /// Wall seconds to build the network (not part of the gate; context).
    pub build_seconds: f64,
    /// Median milliseconds per EM iteration.
    pub ms_per_iter: f64,
    /// Peak RSS (`VmHWM`) after the cell, bytes; `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
    /// Whether the peak counter was reset before the cell (per-cell peak)
    /// or left monotone (upper bound; cells run smallest-first).
    pub rss_reset: bool,
}

/// Time gate: median EM microseconds per object, per iteration. The EM
/// step is linear in objects + links + observations, so per-object cost is
/// size-independent; an accidental `O(n²)` path or per-object allocation
/// storm blows straight through this generous ceiling.
pub const SWEEP_US_PER_OBJECT_GATE: f64 = 5.0;

/// Memory gate: peak RSS bytes per object. The interned-arena layout costs
/// ~0.5 KB/object all-in on the sweep shapes (CSR links both directions,
/// per-relation indexes, `Θ`, kernel scratch); reverting to per-object
/// heap structures (`String` names, nested `Vec` rows) or leaking a copy
/// of the network trips this. Applied only at ≥ 100k objects, where the
/// process baseline no longer distorts the per-object figure.
pub const SWEEP_RSS_BYTES_PER_OBJECT_GATE: f64 = 1024.0;

/// Objects below which the RSS gate is not applied.
pub const SWEEP_RSS_GATE_MIN_OBJECTS: usize = 100_000;

/// Runs the optimized kernel over `specs` (smallest-first), one cell per
/// preset, resetting the peak-RSS counter between cells when the kernel
/// allows it.
pub fn run_size_sweep(specs: &[ScaledSpec], threads: usize, samples: usize) -> Vec<SizeSweepCell> {
    let mut cells = Vec::new();
    for spec in specs {
        let rss_reset = rss::reset_peak_rss();
        let build_start = Instant::now();
        let net = spec.build();
        let build_seconds = build_start.elapsed().as_secs_f64();
        let mut rng = genclus_stats::seeded_rng(3);
        let theta = MembershipMatrix::random(net.graph.n_objects(), K, &mut rng);
        let comps: Vec<ClusterComponents> = net
            .attrs
            .iter()
            .map(|&a| ClusterComponents::init(K, net.graph.attribute(a), &mut rng, 1e-9, 1e-6))
            .collect();
        let gamma = vec![1.0; net.graph.schema().n_relations()];
        let mut engine = EmEngine::new(&net.graph, &net.attrs, K, threads, 1e-9, 1e-6);
        let mut s = time_steps(
            || {
                std::hint::black_box(engine.step(&theta, &comps, &gamma));
            },
            1,
            samples,
        );
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        cells.push(SizeSweepCell {
            dataset: spec.name,
            n_objects: net.graph.n_objects(),
            n_links: net.graph.n_links(),
            threads,
            build_seconds,
            ms_per_iter: s[s.len() / 2] * 1e3,
            peak_rss_bytes: rss::peak_rss_bytes(),
            rss_reset,
        });
    }
    cells
}

/// Evaluates the sweep gates; one message per violated (cell, gate) pair.
pub fn sweep_violations(cells: &[SizeSweepCell]) -> Vec<String> {
    let mut v = Vec::new();
    for c in cells {
        let us_per_obj = c.ms_per_iter * 1e3 / c.n_objects as f64;
        if us_per_obj > SWEEP_US_PER_OBJECT_GATE {
            v.push(format!(
                "{}: {us_per_obj:.2} µs/object per EM iteration (gate: \
                 {SWEEP_US_PER_OBJECT_GATE} µs)",
                c.dataset
            ));
        }
        if c.n_objects >= SWEEP_RSS_GATE_MIN_OBJECTS {
            if let Some(rss) = c.peak_rss_bytes {
                let per_obj = rss as f64 / c.n_objects as f64;
                if per_obj > SWEEP_RSS_BYTES_PER_OBJECT_GATE {
                    v.push(format!(
                        "{}: peak RSS {per_obj:.0} bytes/object (gate: \
                         {SWEEP_RSS_BYTES_PER_OBJECT_GATE} bytes)",
                        c.dataset
                    ));
                }
            }
        }
    }
    v
}

/// Everything one `bench_em` run produced.
#[derive(Debug, Clone)]
pub struct EmPerfReport {
    /// `full` or `quick`.
    pub mode: &'static str,
    /// All measured cells.
    pub measurements: Vec<EmMeasurement>,
    /// Headline naive-vs-optimized comparison (largest weather config,
    /// highest thread count).
    pub headline: Headline,
    /// Size-sweep cells (empty when the sweep was skipped).
    pub size_sweep: Vec<SizeSweepCell>,
}

/// A prepared EM problem: network + fixed starting state.
struct Problem {
    dataset: &'static str,
    config: String,
    graph: HinGraph,
    attrs: Vec<AttributeId>,
    theta: MembershipMatrix,
    comps: Vec<ClusterComponents>,
    gamma: Vec<f64>,
    /// Marks the headline configuration.
    headline: bool,
}

fn weather_problem(n_temp: usize, n_precip: usize, n_obs: usize, headline: bool) -> Problem {
    let net = generate(&WeatherConfig {
        n_temp,
        n_precip,
        k_neighbors: 5,
        n_obs,
        pattern: PatternSetting::Setting1,
        seed: 7,
    });
    let attrs = vec![net.temp_attr, net.precip_attr];
    let mut rng = genclus_stats::seeded_rng(1);
    let theta = MembershipMatrix::random(net.graph.n_objects(), K, &mut rng);
    let comps = attrs
        .iter()
        .map(|&a| ClusterComponents::init(K, net.graph.attribute(a), &mut rng, 1e-9, 1e-6))
        .collect();
    let gamma = vec![1.0; net.graph.schema().n_relations()];
    Problem {
        dataset: "weather",
        config: format!("{} objects, nobs={n_obs}", n_temp + n_precip),
        graph: net.graph,
        attrs,
        theta,
        comps,
        gamma,
        headline,
    }
}

fn dblp_problem(n_authors: usize, n_papers: usize) -> Problem {
    let corpus = dblp::generate(&DblpConfig {
        n_authors,
        n_papers,
        ..DblpConfig::default()
    });
    let acp = corpus.build_acp();
    let attrs = vec![acp.text_attr];
    let mut rng = genclus_stats::seeded_rng(2);
    let theta = MembershipMatrix::random(acp.graph.n_objects(), K, &mut rng);
    let comps = attrs
        .iter()
        .map(|&a| ClusterComponents::init(K, acp.graph.attribute(a), &mut rng, 1e-9, 1e-6))
        .collect();
    let gamma = vec![1.0; acp.graph.schema().n_relations()];
    Problem {
        dataset: "dblp-acp",
        config: format!("{} authors, {} papers", n_authors, n_papers),
        graph: acp.graph,
        attrs,
        theta,
        comps,
        gamma,
        headline: false,
    }
}

/// Times `step()` — `warmup` untimed calls, then `samples` timed ones.
fn time_steps(mut step: impl FnMut(), warmup: usize, samples: usize) -> Vec<f64> {
    for _ in 0..warmup {
        step();
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            step();
            start.elapsed().as_secs_f64()
        })
        .collect()
}

/// Runs the full measurement matrix.
pub fn run_em_perf(cfg: &EmPerfConfig) -> EmPerfReport {
    let problems: Vec<Problem> = if cfg.quick {
        vec![
            weather_problem(120, 40, 5, false),
            weather_problem(120, 80, 5, true),
            dblp_problem(80, 120),
        ]
    } else {
        vec![
            weather_problem(1000, 250, 20, false),
            weather_problem(1000, 500, 20, false),
            weather_problem(1000, 1000, 20, true),
            dblp_problem(1500, 3000),
        ]
    };
    let warmup = if cfg.quick { 1 } else { 2 };

    let mut measurements = Vec::new();
    let mut headline: Option<Headline> = None;
    for p in &problems {
        for &threads in &cfg.threads {
            let mut optimized = EmEngine::new(&p.graph, &p.attrs, K, threads, 1e-9, 1e-6);
            let opt_samples = time_steps(
                || {
                    std::hint::black_box(optimized.step(&p.theta, &p.comps, &p.gamma));
                },
                warmup,
                cfg.samples,
            );
            let naive = ReferenceEmKernel::new(&p.graph, &p.attrs, K, threads, 1e-9, 1e-6);
            let naive_samples = time_steps(
                || {
                    std::hint::black_box(naive.step(&p.theta, &p.comps, &p.gamma));
                },
                warmup,
                cfg.samples,
            );
            for (kernel, samples) in [("optimized", opt_samples), ("naive", naive_samples)] {
                measurements.push(EmMeasurement {
                    dataset: p.dataset,
                    config: p.config.clone(),
                    n_objects: p.graph.n_objects(),
                    n_links: p.graph.n_links(),
                    threads,
                    kernel,
                    samples,
                });
            }
            if p.headline && threads == *cfg.threads.iter().max().expect("non-empty threads") {
                let n = measurements.len();
                let (opt, nai) = (&measurements[n - 2], &measurements[n - 1]);
                headline = Some(Headline {
                    config: p.config.clone(),
                    threads,
                    optimized_median_ms: opt.median_seconds() * 1e3,
                    naive_median_ms: nai.median_seconds() * 1e3,
                    speedup: nai.median_seconds() / opt.median_seconds(),
                });
            }
        }
    }

    let size_sweep = match cfg.sweep_max_objects {
        None => Vec::new(),
        Some(cap) => {
            let specs: Vec<ScaledSpec> = SCALED_REGISTRY
                .iter()
                .copied()
                .filter(|s| s.n_objects <= cap)
                .collect();
            let threads = *cfg.threads.iter().max().expect("non-empty threads");
            run_size_sweep(&specs, threads, if cfg.quick { 2 } else { 5 })
        }
    };

    EmPerfReport {
        mode: if cfg.quick { "quick" } else { "full" },
        measurements,
        headline: headline.expect("one problem carries the headline flag"),
        size_sweep,
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for the perf-log JSON writers (finite, compact,
/// round-trippable enough for a perf log); shared by `BENCH_em.json` and
/// `BENCH_serve.json` emission.
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl EmPerfReport {
    /// Serializes to the documented `BENCH_em.json` schema (hand-rolled —
    /// the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema_version\": 2,\n  \"bench\": \"em_step\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n  \"k\": {K},\n", self.mode));
        out.push_str("  \"unit\": \"milliseconds per EM iteration\",\n");
        out.push_str("  \"results\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str("    {\"dataset\": ");
            push_json_str(&mut out, m.dataset);
            out.push_str(", \"config\": ");
            push_json_str(&mut out, &m.config);
            out.push_str(&format!(
                ", \"n_objects\": {}, \"n_links\": {}, \"threads\": {}, \"kernel\": \"{}\", \
                 \"iters_timed\": {}, \"median_ms\": {}, \"mean_ms\": {}}}",
                m.n_objects,
                m.n_links,
                m.threads,
                m.kernel,
                m.samples.len(),
                fmt_f64(m.median_seconds() * 1e3),
                fmt_f64(m.mean_seconds() * 1e3),
            ));
            out.push_str(if i + 1 < self.measurements.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"size_sweep\": [\n");
        for (i, c) in self.size_sweep.iter().enumerate() {
            out.push_str("    {\"dataset\": ");
            push_json_str(&mut out, c.dataset);
            let rss_mb = match c.peak_rss_bytes {
                Some(b) => fmt_f64(b as f64 / (1024.0 * 1024.0)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                ", \"n_objects\": {}, \"n_links\": {}, \"threads\": {}, \
                 \"build_seconds\": {}, \"ms_per_iter\": {}, \"peak_rss_mb\": {rss_mb}, \
                 \"rss_reset\": {}}}",
                c.n_objects,
                c.n_links,
                c.threads,
                fmt_f64(c.build_seconds),
                fmt_f64(c.ms_per_iter),
                c.rss_reset,
            ));
            out.push_str(if i + 1 < self.size_sweep.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"headline\": {\"config\": ");
        push_json_str(&mut out, &self.headline.config);
        out.push_str(&format!(
            ", \"threads\": {}, \"optimized_median_ms\": {}, \"naive_median_ms\": {}, \
             \"speedup\": {}}}\n}}\n",
            self.headline.threads,
            fmt_f64(self.headline.optimized_median_ms),
            fmt_f64(self.headline.naive_median_ms),
            fmt_f64(self.headline.speedup),
        ));
        out
    }

    /// Writes the JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        // lint: allow(durable-io-containment) -- bench artifact, regenerated by re-running the harness; crash durability buys nothing here
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }

    /// A terse human-readable rendering for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("EM step wall-time ({} mode)\n", self.mode));
        for m in &self.measurements {
            out.push_str(&format!(
                "  {:9} {:28} threads={} {:9}: median {:8.3} ms  mean {:8.3} ms\n",
                m.dataset,
                m.config,
                m.threads,
                m.kernel,
                m.median_seconds() * 1e3,
                m.mean_seconds() * 1e3,
            ));
        }
        for c in &self.size_sweep {
            let rss = match c.peak_rss_bytes {
                Some(b) => format!("{:8.1} MB peak RSS", b as f64 / (1024.0 * 1024.0)),
                None => "     n/a peak RSS".to_string(),
            };
            out.push_str(&format!(
                "  sweep {:14} {:>9} objects {:>9} links threads={}: build {:6.2} s  \
                 {:9.3} ms/iter  {}{}\n",
                c.dataset,
                c.n_objects,
                c.n_links,
                c.threads,
                c.build_seconds,
                c.ms_per_iter,
                rss,
                if c.rss_reset { "" } else { " (monotone)" },
            ));
        }
        out.push_str(&format!(
            "headline [{} @ {} threads]: optimized {:.3} ms vs naive {:.3} ms → {:.2}x\n",
            self.headline.config,
            self.headline.threads,
            self.headline.optimized_median_ms,
            self.headline.naive_median_ms,
            self.headline.speedup,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_report_and_json() {
        // Sweep disabled here: the 100k presets belong to the release-mode
        // smoke run, not a debug unit test. The sweep path has its own test
        // below on a shrunken spec.
        let cfg = EmPerfConfig {
            sweep_max_objects: None,
            ..EmPerfConfig::quick()
        };
        let report = run_em_perf(&cfg);
        // 3 problems × 2 thread counts × 2 kernels.
        assert_eq!(report.measurements.len(), 12);
        for m in &report.measurements {
            assert_eq!(m.samples.len(), 3);
            assert!(m.samples.iter().all(|&s| s >= 0.0 && s.is_finite()));
            assert!(m.n_objects > 0 && m.n_links > 0);
        }
        assert!(report.headline.speedup.is_finite());
        assert!(report.headline.optimized_median_ms > 0.0);

        let json = report.to_json();
        assert!(json.contains("\"bench\": \"em_step\""));
        assert!(json.contains("\"kernel\": \"optimized\""));
        assert!(json.contains("\"kernel\": \"naive\""));
        assert!(json.contains("\"headline\""));
        // Balanced braces/brackets — a cheap structural sanity check given
        // the hand-rolled writer.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON objects"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let dir = std::env::temp_dir().join("genclus-bench-em");
        let path = report.save(&dir.join("BENCH_em.json")).expect("save");
        assert!(path.exists());
        // The sweep was disabled, but the v2 schema still carries the key.
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"size_sweep\""));
    }

    #[test]
    fn size_sweep_measures_time_and_memory_per_cell() {
        // Shrunken presets: the sweep machinery end to end (build → EM →
        // gates → JSON) without release-scale networks.
        let specs: Vec<ScaledSpec> = SCALED_REGISTRY
            .iter()
            .take(2)
            .map(|s| s.with_objects(1_500))
            .collect();
        let cells = run_size_sweep(&specs, 1, 2);
        assert_eq!(cells.len(), 2);
        for (c, s) in cells.iter().zip(&specs) {
            assert_eq!(c.dataset, s.name);
            assert_eq!(c.n_objects, 1_500);
            assert_eq!(c.n_links, s.expected_links());
            assert!(c.ms_per_iter > 0.0 && c.ms_per_iter.is_finite());
            assert!(c.build_seconds >= 0.0);
            if cfg!(target_os = "linux") {
                let rss = c.peak_rss_bytes.expect("VmHWM available on Linux");
                assert!(rss > 1024 * 1024, "implausible peak: {rss}");
            }
        }
        // Gates: these tiny cells are below the RSS floor and far under
        // the µs/object ceiling in any build profile... except the time
        // gate, which debug builds can trip legitimately — so check the
        // violation *format* instead on a synthetic regression.
        let bad = SizeSweepCell {
            dataset: "weather-100k",
            n_objects: 200_000,
            n_links: 400_000,
            threads: 1,
            build_seconds: 1.0,
            ms_per_iter: 200_000.0 * SWEEP_US_PER_OBJECT_GATE / 1e3 * 2.0,
            peak_rss_bytes: Some((200_000.0 * SWEEP_RSS_BYTES_PER_OBJECT_GATE * 2.0) as u64),
            rss_reset: true,
        };
        let v = sweep_violations(&[bad]);
        assert_eq!(v.len(), 2, "both gates must fire: {v:?}");
        assert!(v[0].contains("µs/object"), "{v:?}");
        assert!(v[1].contains("bytes/object"), "{v:?}");
        // And a healthy large cell passes both.
        let good = SizeSweepCell {
            dataset: "weather-1m",
            n_objects: 1_000_000,
            n_links: 2_000_000,
            threads: 1,
            build_seconds: 5.0,
            ms_per_iter: 400.0,
            peak_rss_bytes: Some(500 * 1_000_000),
            rss_reset: true,
        };
        assert!(sweep_violations(&[good]).is_empty());
    }
}
