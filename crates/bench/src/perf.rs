//! The EM perf trajectory: `BENCH_em.json`.
//!
//! Measures the median wall-time of one EM iteration — per dataset size, per
//! thread count, for **both** kernels in the same run:
//!
//! * `optimized` — [`genclus_core::em::EmEngine`]: cached log tables,
//!   reusable scratch, persistent worker pool;
//! * `naive` — [`genclus_core::em_reference::ReferenceEmKernel`]: `ln` per
//!   observation, fresh allocations and a scoped thread spawn per step (the
//!   seed implementation, kept as the yardstick).
//!
//! The headline number is the naive/optimized median ratio on the largest
//! weather configuration (2000 objects, 20 observations per sensor, the
//! paper's Fig. 11 scaling network) at the highest measured thread count.
//! `cargo run --release -p genclus-bench --bin bench_em` writes
//! `BENCH_em.json`; the schema is documented in ROADMAP.md's Performance
//! section and mirrored by [`EmPerfReport::to_json`].

use genclus_core::attr_model::ClusterComponents;
use genclus_core::em::EmEngine;
use genclus_core::em_reference::ReferenceEmKernel;
use genclus_datagen::dblp::{self, DblpConfig};
use genclus_datagen::weather::{generate, PatternSetting, WeatherConfig};
use genclus_hin::{AttributeId, HinGraph};
use genclus_stats::MembershipMatrix;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Clusters used by every measured configuration.
pub const K: usize = 4;

/// Controls the measurement run.
#[derive(Debug, Clone)]
pub struct EmPerfConfig {
    /// Quick mode: tiny networks, few samples (used by the smoke test).
    pub quick: bool,
    /// Thread counts to measure (each with both kernels).
    pub threads: Vec<usize>,
    /// Timed iterations per (config, threads, kernel) cell.
    pub samples: usize,
}

impl EmPerfConfig {
    /// Full-scale measurement (the committed `BENCH_em.json`).
    pub fn full() -> Self {
        Self {
            quick: false,
            threads: vec![1, 2, 4],
            samples: 15,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Self {
            quick: true,
            threads: vec![1, 2],
            samples: 3,
        }
    }
}

/// One measured cell: a (dataset config, thread count, kernel) triple.
#[derive(Debug, Clone)]
pub struct EmMeasurement {
    /// Dataset family: `weather` or `dblp-acp`.
    pub dataset: &'static str,
    /// Human-readable configuration label.
    pub config: String,
    /// Objects in the network.
    pub n_objects: usize,
    /// Directed links in the network.
    pub n_links: usize,
    /// Worker threads.
    pub threads: usize,
    /// `optimized` or `naive`.
    pub kernel: &'static str,
    /// Seconds per EM iteration, one entry per timed iteration.
    pub samples: Vec<f64>,
}

impl EmMeasurement {
    /// Median seconds per iteration.
    pub fn median_seconds(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    }

    /// Mean seconds per iteration.
    pub fn mean_seconds(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// The headline comparison the acceptance gate reads.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Configuration label the comparison was taken on.
    pub config: String,
    /// Thread count of the compared cells.
    pub threads: usize,
    /// Optimized kernel median, milliseconds per iteration.
    pub optimized_median_ms: f64,
    /// Naive kernel median, milliseconds per iteration.
    pub naive_median_ms: f64,
    /// `naive / optimized` median ratio.
    pub speedup: f64,
}

/// Everything one `bench_em` run produced.
#[derive(Debug, Clone)]
pub struct EmPerfReport {
    /// `full` or `quick`.
    pub mode: &'static str,
    /// All measured cells.
    pub measurements: Vec<EmMeasurement>,
    /// Headline naive-vs-optimized comparison (largest weather config,
    /// highest thread count).
    pub headline: Headline,
}

/// A prepared EM problem: network + fixed starting state.
struct Problem {
    dataset: &'static str,
    config: String,
    graph: HinGraph,
    attrs: Vec<AttributeId>,
    theta: MembershipMatrix,
    comps: Vec<ClusterComponents>,
    gamma: Vec<f64>,
    /// Marks the headline configuration.
    headline: bool,
}

fn weather_problem(n_temp: usize, n_precip: usize, n_obs: usize, headline: bool) -> Problem {
    let net = generate(&WeatherConfig {
        n_temp,
        n_precip,
        k_neighbors: 5,
        n_obs,
        pattern: PatternSetting::Setting1,
        seed: 7,
    });
    let attrs = vec![net.temp_attr, net.precip_attr];
    let mut rng = genclus_stats::seeded_rng(1);
    let theta = MembershipMatrix::random(net.graph.n_objects(), K, &mut rng);
    let comps = attrs
        .iter()
        .map(|&a| ClusterComponents::init(K, net.graph.attribute(a), &mut rng, 1e-9, 1e-6))
        .collect();
    let gamma = vec![1.0; net.graph.schema().n_relations()];
    Problem {
        dataset: "weather",
        config: format!("{} objects, nobs={n_obs}", n_temp + n_precip),
        graph: net.graph,
        attrs,
        theta,
        comps,
        gamma,
        headline,
    }
}

fn dblp_problem(n_authors: usize, n_papers: usize) -> Problem {
    let corpus = dblp::generate(&DblpConfig {
        n_authors,
        n_papers,
        ..DblpConfig::default()
    });
    let acp = corpus.build_acp();
    let attrs = vec![acp.text_attr];
    let mut rng = genclus_stats::seeded_rng(2);
    let theta = MembershipMatrix::random(acp.graph.n_objects(), K, &mut rng);
    let comps = attrs
        .iter()
        .map(|&a| ClusterComponents::init(K, acp.graph.attribute(a), &mut rng, 1e-9, 1e-6))
        .collect();
    let gamma = vec![1.0; acp.graph.schema().n_relations()];
    Problem {
        dataset: "dblp-acp",
        config: format!("{} authors, {} papers", n_authors, n_papers),
        graph: acp.graph,
        attrs,
        theta,
        comps,
        gamma,
        headline: false,
    }
}

/// Times `step()` — `warmup` untimed calls, then `samples` timed ones.
fn time_steps(mut step: impl FnMut(), warmup: usize, samples: usize) -> Vec<f64> {
    for _ in 0..warmup {
        step();
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            step();
            start.elapsed().as_secs_f64()
        })
        .collect()
}

/// Runs the full measurement matrix.
pub fn run_em_perf(cfg: &EmPerfConfig) -> EmPerfReport {
    let problems: Vec<Problem> = if cfg.quick {
        vec![
            weather_problem(120, 40, 5, false),
            weather_problem(120, 80, 5, true),
            dblp_problem(80, 120),
        ]
    } else {
        vec![
            weather_problem(1000, 250, 20, false),
            weather_problem(1000, 500, 20, false),
            weather_problem(1000, 1000, 20, true),
            dblp_problem(1500, 3000),
        ]
    };
    let warmup = if cfg.quick { 1 } else { 2 };

    let mut measurements = Vec::new();
    let mut headline: Option<Headline> = None;
    for p in &problems {
        for &threads in &cfg.threads {
            let mut optimized = EmEngine::new(&p.graph, &p.attrs, K, threads, 1e-9, 1e-6);
            let opt_samples = time_steps(
                || {
                    std::hint::black_box(optimized.step(&p.theta, &p.comps, &p.gamma));
                },
                warmup,
                cfg.samples,
            );
            let naive = ReferenceEmKernel::new(&p.graph, &p.attrs, K, threads, 1e-9, 1e-6);
            let naive_samples = time_steps(
                || {
                    std::hint::black_box(naive.step(&p.theta, &p.comps, &p.gamma));
                },
                warmup,
                cfg.samples,
            );
            for (kernel, samples) in [("optimized", opt_samples), ("naive", naive_samples)] {
                measurements.push(EmMeasurement {
                    dataset: p.dataset,
                    config: p.config.clone(),
                    n_objects: p.graph.n_objects(),
                    n_links: p.graph.n_links(),
                    threads,
                    kernel,
                    samples,
                });
            }
            if p.headline && threads == *cfg.threads.iter().max().expect("non-empty threads") {
                let n = measurements.len();
                let (opt, nai) = (&measurements[n - 2], &measurements[n - 1]);
                headline = Some(Headline {
                    config: p.config.clone(),
                    threads,
                    optimized_median_ms: opt.median_seconds() * 1e3,
                    naive_median_ms: nai.median_seconds() * 1e3,
                    speedup: nai.median_seconds() / opt.median_seconds(),
                });
            }
        }
    }

    EmPerfReport {
        mode: if cfg.quick { "quick" } else { "full" },
        measurements,
        headline: headline.expect("one problem carries the headline flag"),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for the perf-log JSON writers (finite, compact,
/// round-trippable enough for a perf log); shared by `BENCH_em.json` and
/// `BENCH_serve.json` emission.
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl EmPerfReport {
    /// Serializes to the documented `BENCH_em.json` schema (hand-rolled —
    /// the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema_version\": 1,\n  \"bench\": \"em_step\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n  \"k\": {K},\n", self.mode));
        out.push_str("  \"unit\": \"milliseconds per EM iteration\",\n");
        out.push_str("  \"results\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str("    {\"dataset\": ");
            push_json_str(&mut out, m.dataset);
            out.push_str(", \"config\": ");
            push_json_str(&mut out, &m.config);
            out.push_str(&format!(
                ", \"n_objects\": {}, \"n_links\": {}, \"threads\": {}, \"kernel\": \"{}\", \
                 \"iters_timed\": {}, \"median_ms\": {}, \"mean_ms\": {}}}",
                m.n_objects,
                m.n_links,
                m.threads,
                m.kernel,
                m.samples.len(),
                fmt_f64(m.median_seconds() * 1e3),
                fmt_f64(m.mean_seconds() * 1e3),
            ));
            out.push_str(if i + 1 < self.measurements.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"headline\": {\"config\": ");
        push_json_str(&mut out, &self.headline.config);
        out.push_str(&format!(
            ", \"threads\": {}, \"optimized_median_ms\": {}, \"naive_median_ms\": {}, \
             \"speedup\": {}}}\n}}\n",
            self.headline.threads,
            fmt_f64(self.headline.optimized_median_ms),
            fmt_f64(self.headline.naive_median_ms),
            fmt_f64(self.headline.speedup),
        ));
        out
    }

    /// Writes the JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        // lint: allow(durable-io-containment) -- bench artifact, regenerated by re-running the harness; crash durability buys nothing here
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }

    /// A terse human-readable rendering for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("EM step wall-time ({} mode)\n", self.mode));
        for m in &self.measurements {
            out.push_str(&format!(
                "  {:9} {:28} threads={} {:9}: median {:8.3} ms  mean {:8.3} ms\n",
                m.dataset,
                m.config,
                m.threads,
                m.kernel,
                m.median_seconds() * 1e3,
                m.mean_seconds() * 1e3,
            ));
        }
        out.push_str(&format!(
            "headline [{} @ {} threads]: optimized {:.3} ms vs naive {:.3} ms → {:.2}x\n",
            self.headline.config,
            self.headline.threads,
            self.headline.optimized_median_ms,
            self.headline.naive_median_ms,
            self.headline.speedup,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_report_and_json() {
        let report = run_em_perf(&EmPerfConfig::quick());
        // 3 problems × 2 thread counts × 2 kernels.
        assert_eq!(report.measurements.len(), 12);
        for m in &report.measurements {
            assert_eq!(m.samples.len(), 3);
            assert!(m.samples.iter().all(|&s| s >= 0.0 && s.is_finite()));
            assert!(m.n_objects > 0 && m.n_links > 0);
        }
        assert!(report.headline.speedup.is_finite());
        assert!(report.headline.optimized_median_ms > 0.0);

        let json = report.to_json();
        assert!(json.contains("\"bench\": \"em_step\""));
        assert!(json.contains("\"kernel\": \"optimized\""));
        assert!(json.contains("\"kernel\": \"naive\""));
        assert!(json.contains("\"headline\""));
        // Balanced braces/brackets — a cheap structural sanity check given
        // the hand-rolled writer.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON objects"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let dir = std::env::temp_dir().join("genclus-bench-em");
        let path = report.save(&dir.join("BENCH_em.json")).expect("save");
        assert!(path.exists());
    }
}
