//! The serving perf trajectory: `BENCH_serve.json`.
//!
//! Measures the query engine of `genclus-serve` end-to-end — JSON parse,
//! dispatch, fold-in fixed point / top-k selection, JSON render — from a
//! loaded snapshot of a fitted weather network, at batch sizes 1 / 16 /
//! 256 for three workloads:
//!
//! * `fold_in` — assign a new sensor linked to 3 existing sensors, with a
//!   ~50% chance of carrying readings (the incomplete-attribute serving
//!   case);
//! * `top_k` — §5.2.2 link-prediction ranking, k = 10 over one object
//!   type;
//! * `mixed` — alternating fold-in and top-k, the realistic stream;
//! * `commit` / `commit_wal` — fold-in **commits** through the refresh
//!   engine at batch size 1, without and with the commit WAL: the
//!   `commit_wal` cell pays one append + fsync per ack (the *ack ⇒
//!   replayable* durability point), so the pair prices the WAL's
//!   per-commit overhead directly;
//! * `mixed_metrics_off` / `mixed_metrics_on` — the mixed workload at
//!   batch 16 on engines wired to a disabled vs an enabled
//!   [`ServeMetrics`] registry, pricing the always-on observability
//!   layer (per-request clock reads + lock-free histogram records);
//! * `multi_client` — the TCP front-end ([`NetServer`]) on loopback,
//!   **open-loop**: read requests arrive on a fixed global schedule
//!   (calibrated to ~50% of the single-connection service rate) split
//!   across N = 1 vs N = 64 concurrent connections, latency charged from
//!   the scheduled arrival. Same offered load in both cells, so the
//!   `p99_ratio` prices concurrency itself — accept fan-in, thread
//!   wakeups, snapshot pinning — and `bench_serve` gates it in full mode.
//!
//! Per `(workload, batch size)` cell it reports the p50/p99 **per-query**
//! latency (batch wall-time divided by batch size, quantiles through the
//! shared obs histogram) and the sustained queries/sec over the whole
//! cell. The headline compares batch-1 against batch-256 throughput on
//! the mixed workload, measured in the same run; `bench_serve` exits
//! non-zero in full mode if batching does not help at all (ratio < 1.0)
//! — amortizing dispatch over a batch must never *lose* throughput — or
//! if metrics-on throughput falls under 97% of metrics-off.
//!
//! Schema of `BENCH_serve.json` is documented in ROADMAP.md's Performance
//! section and mirrored by [`ServePerfReport::to_json`].

use crate::perf::fmt_f64;
use crate::quantiles::{latency_histogram, quantile_seconds};
use genclus_core::{GenClus, GenClusConfig};
use genclus_datagen::weather::{generate, PatternSetting, WeatherConfig};
use genclus_serve::{
    NetConfig, NetServer, QueryEngine, RefreshPolicy, RefreshableEngine, ServeMetrics, Snapshot,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Clusters of the benchmark fit.
pub const K: usize = 4;
/// Batch sizes every workload is measured at.
pub const BATCH_SIZES: [usize; 3] = [1, 16, 256];

/// Controls the measurement run.
#[derive(Debug, Clone)]
pub struct ServePerfConfig {
    /// Quick mode: small network, few queries (smoke test).
    pub quick: bool,
    /// Worker threads for the query engine.
    pub threads: usize,
    /// Total queries per `(workload, batch size)` cell.
    pub queries_per_cell: usize,
}

impl ServePerfConfig {
    /// Full-scale measurement (the committed `BENCH_serve.json`).
    pub fn full() -> Self {
        Self {
            quick: false,
            threads: 1,
            queries_per_cell: 4096,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Self {
            quick: true,
            threads: 1,
            queries_per_cell: 256,
        }
    }
}

/// One measured `(workload, batch size)` cell.
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// `fold_in`, `top_k`, or `mixed`.
    pub workload: &'static str,
    /// Queries per [`QueryEngine::handle_batch`] call.
    pub batch_size: usize,
    /// Batches timed.
    pub batches: usize,
    /// Per-query latencies in seconds (batch wall-time / batch size, one
    /// entry per batch).
    pub per_query_seconds: Vec<f64>,
    /// Sustained queries per second over the cell.
    pub qps: f64,
}

impl ServeMeasurement {
    /// Nearest-rank quantile of the per-query latencies, through the
    /// shared obs histogram ([`crate::quantiles`]) — the same structure
    /// the serving layer's `{"op":"metrics"}` op reports from.
    fn percentile(&self, q: f64) -> f64 {
        quantile_seconds(&latency_histogram(&self.per_query_seconds), q)
    }

    /// Median per-query latency (seconds).
    pub fn p50_seconds(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 99th-percentile per-query latency (seconds).
    pub fn p99_seconds(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// The metrics-overhead headline the observability gate reads: the
/// mixed workload at one batch size, measured on two engines decoded
/// from the same snapshot bytes — registry disabled vs enabled (the
/// serving default).
#[derive(Debug, Clone)]
pub struct MetricsOverhead {
    /// Batch size both cells ran at.
    pub batch_size: usize,
    /// Queries/sec with the registry disabled.
    pub off_qps: f64,
    /// Queries/sec with the registry enabled.
    pub on_qps: f64,
    /// `on / off` throughput ratio (1.0 = metrics are free).
    pub ratio: f64,
}

/// One open-loop multi-client cell: `clients` concurrent TCP connections
/// against a live [`NetServer`], requests arriving on a fixed global
/// schedule (latency measured from the *scheduled* arrival, so queueing
/// delay is charged, never silently omitted).
#[derive(Debug, Clone)]
pub struct MultiClientCell {
    /// Concurrent TCP connections.
    pub clients: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Open-loop latencies in seconds (scheduled arrival → response read).
    pub latency_seconds: Vec<f64>,
    /// Achieved requests/sec over the cell.
    pub qps: f64,
}

impl MultiClientCell {
    fn percentile(&self, q: f64) -> f64 {
        quantile_seconds(&latency_histogram(&self.latency_seconds), q)
    }

    /// Median open-loop latency (seconds).
    pub fn p50_seconds(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 99th-percentile open-loop latency (seconds).
    pub fn p99_seconds(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// The multi-client headline: the same offered load served through 1
/// vs 64 connections. Concurrency must buy fan-in, not collapse — the
/// full-mode gate bounds the p99 blow-up.
#[derive(Debug, Clone)]
pub struct MultiClientComparison {
    /// Total offered load both cells were driven at (requests/sec).
    pub offered_qps: f64,
    /// The measured cells, N = 1 then N = 64.
    pub cells: Vec<MultiClientCell>,
    /// `p99(N=64) / p99(N=1)`.
    pub p99_ratio: f64,
}

/// The batching headline the acceptance gate reads.
#[derive(Debug, Clone)]
pub struct ServeHeadline {
    /// Workload compared (`mixed`).
    pub workload: &'static str,
    /// Queries/sec at batch size 1.
    pub batch1_qps: f64,
    /// Queries/sec at batch size 256.
    pub batch256_qps: f64,
    /// `batch256 / batch1` throughput ratio.
    pub speedup: f64,
}

/// Everything one `bench_serve` run produced.
#[derive(Debug, Clone)]
pub struct ServePerfReport {
    /// `full` or `quick`.
    pub mode: &'static str,
    /// Network geometry the snapshot was built from.
    pub n_objects: usize,
    /// Links of the snapshot network.
    pub n_links: usize,
    /// Snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// All measured cells.
    pub measurements: Vec<ServeMeasurement>,
    /// Batch-1 vs batch-256 comparison on the mixed workload.
    pub headline: ServeHeadline,
    /// Metrics-on vs metrics-off comparison on the mixed workload.
    pub metrics_overhead: MetricsOverhead,
    /// Open-loop TCP serving at 1 vs 64 concurrent connections.
    pub multi_client: MultiClientComparison,
}

/// Fits the weather fixture and serializes its snapshot; returns the
/// bytes plus the temp-sensor count request generators draw targets from.
fn build_snapshot_bytes(cfg: &ServePerfConfig) -> (Vec<u8>, usize) {
    let (n_temp, n_precip, n_obs) = if cfg.quick {
        (120, 40, 5)
    } else {
        (1000, 250, 20)
    };
    let net = generate(&WeatherConfig {
        n_temp,
        n_precip,
        k_neighbors: 5,
        n_obs,
        pattern: PatternSetting::Setting1,
        seed: 7,
    });
    let fit_cfg = GenClusConfig::new(K, vec![net.temp_attr, net.precip_attr])
        .with_seed(11)
        .with_outer_iters(if cfg.quick { 2 } else { 4 });
    let fit = GenClus::new(fit_cfg)
        .expect("valid config")
        .fit(&net.graph)
        .expect("fit succeeds");
    (
        genclus_serve::snapshot::to_bytes(&net.graph, &fit.model),
        n_temp,
    )
}

/// Deterministic request stream seed (xorshift; no RNG dependency needed).
fn xorshift() -> impl FnMut() -> u64 {
    let mut state = 0x9e3779b97f4a7c15u64;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Builds the serving fixture: fit a weather network, snapshot it, load
/// the snapshot (exactly the serving path), return the engine plus
/// pre-rendered request lines.
fn build_engine(cfg: &ServePerfConfig) -> (QueryEngine, Vec<String>, Vec<String>) {
    let (bytes, n_temp) = build_snapshot_bytes(cfg);
    let snapshot = Snapshot::from_bytes(&bytes).expect("snapshot round trip");
    let engine = QueryEngine::new(snapshot, cfg.threads);

    let mut next = xorshift();
    let fold_in: Vec<String> = (0..cfg.queries_per_cell)
        .map(|i| {
            let a = next() as usize % n_temp;
            let b = next() as usize % n_temp;
            let c = next() as usize % n_temp;
            let readings = if i % 2 == 0 {
                // Half the new sensors arrive with readings …
                format!(
                    ",\"values\":{{\"temperature\":[{}]}}",
                    (next() % 400) as f64 / 100.0
                )
            } else {
                // … and half with every attribute missing.
                String::new()
            };
            format!(
                "{{\"id\":{i},\"op\":\"fold_in\",\"links\":[[\"tt\",\"T{a}\",1.0],[\"tt\",\"T{b}\",1.0],[\"tt\",\"T{c}\",1.0]]{readings}}}"
            )
        })
        .collect();
    let top_k: Vec<String> = (0..cfg.queries_per_cell)
        .map(|i| {
            let q = next() as usize % n_temp;
            format!(
                "{{\"id\":{i},\"op\":\"top_k\",\"object\":\"T{q}\",\"k\":10,\"sim\":\"cosine\",\"type\":\"temp_sensor\"}}"
            )
        })
        .collect();
    (engine, fold_in, top_k)
}

/// Measures commit-ack latency through the refresh engine at batch size 1,
/// with or without the commit WAL. Thresholds stay at 0 (manual refresh
/// only) so no re-fit lands mid-measurement — the cell prices the ack
/// path alone, which for `commit_wal` includes one append + fsync per
/// commit.
fn measure_commit_cell(cfg: &ServePerfConfig, with_wal: bool) -> ServeMeasurement {
    let (bytes, n_temp) = build_snapshot_bytes(cfg);
    let snapshot = Snapshot::from_bytes(&bytes).expect("snapshot round trip");
    let mut wal_dir = None;
    let mut engine = if with_wal {
        let dir =
            std::env::temp_dir().join(format!("genclus-bench-commit-wal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("bench WAL dir");
        let (engine, _) = RefreshableEngine::with_wal(
            snapshot,
            cfg.threads,
            RefreshPolicy::default(),
            &dir.join("commits.gcwal"),
        )
        .expect("fresh bench WAL");
        wal_dir = Some(dir);
        engine
    } else {
        RefreshableEngine::new(snapshot, cfg.threads, RefreshPolicy::default())
    };

    let mut next = xorshift();
    let mut line_for = |name: String| {
        let a = next() as usize % n_temp;
        let b = next() as usize % n_temp;
        format!(
            "{{\"op\":\"fold_in\",\"links\":[[\"tt\",\"T{a}\",1.0],[\"tt\",\"T{b}\",1.0]],\"commit\":\"{name}\"}}"
        )
    };
    let lines: Vec<String> = (0..cfg.queries_per_cell)
        .map(|i| line_for(format!("w{i}")))
        .collect();
    // One untimed warmup commit (commits are unique, so it gets its own name).
    let warm = engine.handle_line(&line_for("warmup".into()));
    assert!(warm.contains("\"ok\":true"), "warmup commit failed: {warm}");

    let mut per_query = Vec::with_capacity(lines.len());
    let start_all = Instant::now();
    for line in &lines {
        let start = Instant::now();
        let resp = engine.handle_line(line);
        per_query.push(start.elapsed().as_secs_f64());
        assert!(resp.contains("\"ok\":true"), "bench commit failed: {resp}");
    }
    let total = start_all.elapsed().as_secs_f64();
    let batches = per_query.len();
    drop(engine);
    if let Some(dir) = wal_dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    ServeMeasurement {
        workload: if with_wal { "commit_wal" } else { "commit" },
        batch_size: 1,
        batches,
        qps: lines.len() as f64 / total,
        per_query_seconds: per_query,
    }
}

/// Prices the always-on metrics registry: the mixed workload at batch
/// 16 on two engines decoded from the same snapshot bytes — metrics
/// disabled (no clock reads, no histogram writes) versus enabled (the
/// serving default: one `Instant` pair plus one lock-free histogram
/// record per request). `{"op":"metrics"}` is only cheap to promise if
/// this ratio stays ≈ 1; full mode gates it at ≥ 0.97. The pair is
/// measured in alternating passes and each side keeps its best pass, so
/// a noisy-neighbor stall hitting one pass cannot fake (or hide) an
/// overhead that isn't in the code.
fn measure_metrics_cells(
    cfg: &ServePerfConfig,
    mixed: &[String],
) -> (ServeMeasurement, ServeMeasurement, MetricsOverhead) {
    const BATCH: usize = 16;
    let (bytes, _) = build_snapshot_bytes(cfg);
    let engine_of = |enabled: bool| {
        let snap = Snapshot::from_bytes(&bytes).expect("snapshot round trip");
        let metrics = if enabled {
            ServeMetrics::new()
        } else {
            ServeMetrics::disabled()
        };
        QueryEngine::with_metrics(snap, cfg.threads, Arc::new(metrics))
    };
    let engine_off = engine_of(false);
    let engine_on = engine_of(true);
    let passes = if cfg.quick { 1 } else { 3 };
    let best = |a: ServeMeasurement, b: ServeMeasurement| if b.qps > a.qps { b } else { a };
    let mut off = measure_cell(&engine_off, mixed, "mixed_metrics_off", BATCH);
    let mut on = measure_cell(&engine_on, mixed, "mixed_metrics_on", BATCH);
    for _ in 1..passes {
        off = best(
            off,
            measure_cell(&engine_off, mixed, "mixed_metrics_off", BATCH),
        );
        on = best(
            on,
            measure_cell(&engine_on, mixed, "mixed_metrics_on", BATCH),
        );
    }
    let overhead = MetricsOverhead {
        batch_size: BATCH,
        off_qps: off.qps,
        on_qps: on.qps,
        ratio: on.qps / off.qps,
    };
    (off, on, overhead)
}

/// Measures the TCP front-end under concurrency, open-loop: a live
/// [`NetServer`] on loopback, read requests (membership / top-k) arriving
/// on a fixed global schedule split across N connections. A short
/// closed-loop calibration pass sets the offered load at ~50% of the
/// single-connection service rate, and **both** cells (N = 1, N = 64) are
/// driven at that same total rate — so the comparison isolates what
/// concurrency itself costs (accept fan-in, per-connection threads,
/// snapshot pinning), not a different load. Latency is charged from the
/// scheduled arrival time: a client that falls behind keeps the schedule,
/// so queueing shows up in p99 instead of being coordinated away.
fn measure_multi_client(cfg: &ServePerfConfig) -> MultiClientComparison {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let (bytes, n_temp) = build_snapshot_bytes(cfg);
    let snapshot = Snapshot::from_bytes(&bytes).expect("snapshot round trip");
    let engine = RefreshableEngine::new(snapshot, cfg.threads, RefreshPolicy::default());
    let server = NetServer::bind("127.0.0.1:0", engine, NetConfig::default())
        .expect("bind bench server on loopback");
    let addr = server.local_addr();

    let mut next = xorshift();
    let mut request = |i: usize| {
        let q = next() as usize % n_temp;
        if i.is_multiple_of(2) {
            format!("{{\"op\":\"membership\",\"object\":\"T{q}\"}}")
        } else {
            format!(
                "{{\"op\":\"top_k\",\"object\":\"T{q}\",\"k\":10,\"sim\":\"cosine\",\"type\":\"temp_sensor\"}}"
            )
        }
    };

    let connect = || {
        let stream = TcpStream::connect(addr).expect("bench client connect");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("clone bench stream"));
        (stream, reader)
    };
    let roundtrip = |stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| {
        writeln!(stream, "{line}").expect("bench request write");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("bench response read");
        assert!(resp.contains("\"ok\":true"), "bench query failed: {resp}");
    };

    // Closed-loop calibration: the single-connection service rate sets
    // the offered load at ~50% utilization for both cells.
    let mean_rtt = {
        let (mut stream, mut reader) = connect();
        let calibration = 64;
        for i in 0..8 {
            roundtrip(&mut stream, &mut reader, &request(i));
        }
        let start = Instant::now();
        for i in 0..calibration {
            roundtrip(&mut stream, &mut reader, &request(i));
        }
        start.elapsed().as_secs_f64() / calibration as f64
    };
    let interval = Duration::from_secs_f64((mean_rtt * 2.0).max(1e-5));
    let offered_qps = 1.0 / interval.as_secs_f64();

    let total_requests = if cfg.quick { 256 } else { 2048 };
    let run_cell = |clients: usize| -> MultiClientCell {
        let per_client = total_requests / clients;
        let barrier = Arc::new(std::sync::Barrier::new(clients + 1));
        let handles: Vec<_> = (0..clients)
            .map(|who| {
                let barrier = Arc::clone(&barrier);
                // Per-client request streams, pre-rendered off the clock.
                let mut next = xorshift();
                let lines: Vec<String> = (0..per_client)
                    .map(|i| {
                        let q = (next() as usize).wrapping_add(who * 7919) % n_temp;
                        if (i + who) % 2 == 0 {
                            format!("{{\"op\":\"membership\",\"object\":\"T{q}\"}}")
                        } else {
                            format!(
                                "{{\"op\":\"top_k\",\"object\":\"T{q}\",\"k\":10,\"sim\":\"cosine\",\"type\":\"temp_sensor\"}}"
                            )
                        }
                    })
                    .collect();
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("bench client connect");
                    stream.set_nodelay(true).ok();
                    let mut reader =
                        BufReader::new(stream.try_clone().expect("clone bench stream"));
                    barrier.wait();
                    let t0 = Instant::now();
                    let mut latencies = Vec::with_capacity(lines.len());
                    for (i, line) in lines.iter().enumerate() {
                        // Global arrival i*clients + who: the schedule
                        // interleaves all clients at the common rate.
                        let due = interval * (i * clients + who) as u32;
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        writeln!(stream, "{line}").expect("bench request write");
                        let mut resp = String::new();
                        reader.read_line(&mut resp).expect("bench response read");
                        assert!(resp.contains("\"ok\":true"), "bench query failed: {resp}");
                        latencies.push((t0.elapsed() - due).as_secs_f64());
                    }
                    latencies
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut latency_seconds = Vec::with_capacity(total_requests);
        for h in handles {
            latency_seconds.extend(h.join().expect("bench client thread"));
        }
        let wall = start.elapsed().as_secs_f64();
        MultiClientCell {
            clients,
            requests: latency_seconds.len(),
            qps: latency_seconds.len() as f64 / wall,
            latency_seconds,
        }
    };

    // Like the metrics-overhead pair: alternating passes, each cell keeps
    // its best (lowest-p99) pass — on a small shared machine a scheduler
    // burst hitting one pass would otherwise dominate the tail and fake a
    // concurrency regression that isn't in the code.
    let passes = if cfg.quick { 1 } else { 3 };
    let best = |a: MultiClientCell, b: MultiClientCell| {
        if b.p99_seconds() < a.p99_seconds() {
            b
        } else {
            a
        }
    };
    let mut one = run_cell(1);
    let mut many = run_cell(64);
    for _ in 1..passes {
        one = best(one, run_cell(1));
        many = best(many, run_cell(64));
    }
    let cells = vec![one, many];
    let p99_ratio = cells[1].p99_seconds() / cells[0].p99_seconds().max(1e-9);
    server.shutdown();
    MultiClientComparison {
        offered_qps,
        cells,
        p99_ratio,
    }
}

fn measure_cell(
    engine: &QueryEngine,
    lines: &[String],
    workload: &'static str,
    batch_size: usize,
) -> ServeMeasurement {
    // One warmup batch, untimed.
    let warm = batch_size.min(lines.len());
    let _ = engine.handle_batch(&lines[..warm]);

    let mut per_query = Vec::new();
    let mut total_queries = 0usize;
    let start_all = Instant::now();
    for batch in lines.chunks(batch_size) {
        let start = Instant::now();
        let responses = engine.handle_batch(batch);
        let dt = start.elapsed().as_secs_f64();
        assert_eq!(responses.len(), batch.len());
        per_query.push(dt / batch.len() as f64);
        total_queries += batch.len();
    }
    let total = start_all.elapsed().as_secs_f64();
    ServeMeasurement {
        workload,
        batch_size,
        batches: per_query.len(),
        per_query_seconds: per_query,
        qps: total_queries as f64 / total,
    }
}

/// Runs the full measurement matrix.
pub fn run_serve_perf(cfg: &ServePerfConfig) -> ServePerfReport {
    let (engine, fold_in, top_k) = build_engine(cfg);
    let mixed: Vec<String> = fold_in
        .iter()
        .zip(&top_k)
        .flat_map(|(f, t)| [f.clone(), t.clone()])
        .take(cfg.queries_per_cell)
        .collect();

    let mut measurements = Vec::new();
    for &batch_size in &BATCH_SIZES {
        measurements.push(measure_cell(&engine, &fold_in, "fold_in", batch_size));
        measurements.push(measure_cell(&engine, &top_k, "top_k", batch_size));
        measurements.push(measure_cell(&engine, &mixed, "mixed", batch_size));
    }
    // Commit-ack latency, WAL off vs on — the durability surcharge.
    measurements.push(measure_commit_cell(cfg, false));
    measurements.push(measure_commit_cell(cfg, true));
    // Observability surcharge: the same mixed stream, registry off vs on.
    let (metrics_off, metrics_on, metrics_overhead) = measure_metrics_cells(cfg, &mixed);
    measurements.push(metrics_off);
    measurements.push(metrics_on);
    // Concurrency surcharge: the TCP front-end, 1 vs 64 connections at
    // the same offered load.
    let multi_client = measure_multi_client(cfg);
    let qps_of = |batch: usize| {
        measurements
            .iter()
            .find(|m| m.workload == "mixed" && m.batch_size == batch)
            .expect("mixed cell measured")
            .qps
    };
    let (b1, b256) = (qps_of(1), qps_of(256));
    ServePerfReport {
        mode: if cfg.quick { "quick" } else { "full" },
        n_objects: engine.graph().n_objects(),
        n_links: engine.graph().n_links(),
        snapshot_bytes: engine.snapshot().raw_bytes().len(),
        measurements,
        headline: ServeHeadline {
            workload: "mixed",
            batch1_qps: b1,
            batch256_qps: b256,
            speedup: b256 / b1,
        },
        metrics_overhead,
        multi_client,
    }
}

impl ServePerfReport {
    /// Serializes to the documented `BENCH_serve.json` schema (hand-rolled
    /// — the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema_version\": 3,\n  \"bench\": \"serve_queries\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n  \"k\": {K},\n", self.mode));
        out.push_str(&format!(
            "  \"dataset\": {{\"family\": \"weather\", \"n_objects\": {}, \"n_links\": {}, \
             \"snapshot_bytes\": {}}},\n",
            self.n_objects, self.n_links, self.snapshot_bytes
        ));
        out.push_str("  \"unit\": \"milliseconds per query\",\n");
        out.push_str("  \"results\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"batch_size\": {}, \"batches_timed\": {}, \
                 \"p50_ms\": {}, \"p99_ms\": {}, \"qps\": {}}}",
                m.workload,
                m.batch_size,
                m.batches,
                fmt_f64(m.p50_seconds() * 1e3),
                fmt_f64(m.p99_seconds() * 1e3),
                fmt_f64(m.qps),
            ));
            out.push_str(if i + 1 < self.measurements.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str(&format!(
            "  ],\n  \"headline\": {{\"workload\": \"{}\", \"batch1_qps\": {}, \
             \"batch256_qps\": {}, \"speedup\": {}}},\n",
            self.headline.workload,
            fmt_f64(self.headline.batch1_qps),
            fmt_f64(self.headline.batch256_qps),
            fmt_f64(self.headline.speedup),
        ));
        out.push_str(&format!(
            "  \"metrics_overhead\": {{\"workload\": \"mixed\", \"batch_size\": {}, \
             \"off_qps\": {}, \"on_qps\": {}, \"ratio\": {}}},\n",
            self.metrics_overhead.batch_size,
            fmt_f64(self.metrics_overhead.off_qps),
            fmt_f64(self.metrics_overhead.on_qps),
            fmt_f64(self.metrics_overhead.ratio),
        ));
        out.push_str(&format!(
            "  \"multi_client\": {{\"workload\": \"tcp_reads\", \"offered_qps\": {}, \"cells\": [\n",
            fmt_f64(self.multi_client.offered_qps),
        ));
        for (i, c) in self.multi_client.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"clients\": {}, \"requests\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"qps\": {}}}{}\n",
                c.clients,
                c.requests,
                fmt_f64(c.p50_seconds() * 1e3),
                fmt_f64(c.p99_seconds() * 1e3),
                fmt_f64(c.qps),
                if i + 1 < self.multi_client.cells.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str(&format!(
            "  ], \"p99_ratio\": {}}}\n}}\n",
            fmt_f64(self.multi_client.p99_ratio),
        ));
        out
    }

    /// Writes the JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        // lint: allow(durable-io-containment) -- bench artifact, regenerated by re-running the harness; crash durability buys nothing here
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }

    /// A terse human-readable rendering for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve query latency ({} mode, {} objects, {} links, snapshot {} KiB)\n",
            self.mode,
            self.n_objects,
            self.n_links,
            self.snapshot_bytes / 1024,
        ));
        for m in &self.measurements {
            out.push_str(&format!(
                "  {:8} batch={:>3}: p50 {:7.4} ms  p99 {:7.4} ms  {:9.0} q/s\n",
                m.workload,
                m.batch_size,
                m.p50_seconds() * 1e3,
                m.p99_seconds() * 1e3,
                m.qps,
            ));
        }
        out.push_str(&format!(
            "headline [mixed]: batch-1 {:.0} q/s vs batch-256 {:.0} q/s → {:.2}x\n",
            self.headline.batch1_qps, self.headline.batch256_qps, self.headline.speedup,
        ));
        out.push_str(&format!(
            "metrics overhead [mixed, batch-{}]: off {:.0} q/s vs on {:.0} q/s → {:.3}x\n",
            self.metrics_overhead.batch_size,
            self.metrics_overhead.off_qps,
            self.metrics_overhead.on_qps,
            self.metrics_overhead.ratio,
        ));
        for c in &self.multi_client.cells {
            out.push_str(&format!(
                "  tcp open-loop N={:>2}: p50 {:7.4} ms  p99 {:7.4} ms  {:9.0} q/s\n",
                c.clients,
                c.p50_seconds() * 1e3,
                c.p99_seconds() * 1e3,
                c.qps,
            ));
        }
        out.push_str(&format!(
            "multi-client [tcp reads @ {:.0} q/s offered]: p99 N=64 / N=1 → {:.2}x\n",
            self.multi_client.offered_qps, self.multi_client.p99_ratio,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_report_and_json() {
        let report = run_serve_perf(&ServePerfConfig::quick());
        // 3 workloads × 3 batch sizes + the commit / commit_wal pair +
        // the metrics off / on pair.
        assert_eq!(report.measurements.len(), 13);
        for m in &report.measurements {
            assert!(m.batches >= 1);
            assert!(m.qps > 0.0 && m.qps.is_finite());
            assert!(m.p50_seconds() >= 0.0 && m.p99_seconds() >= m.p50_seconds());
        }
        assert!(report.headline.speedup.is_finite());
        assert!(report.metrics_overhead.ratio.is_finite() && report.metrics_overhead.ratio > 0.0);
        assert!(report.metrics_overhead.off_qps > 0.0 && report.metrics_overhead.on_qps > 0.0);
        let mc = &report.multi_client;
        assert!(mc.offered_qps > 0.0 && mc.offered_qps.is_finite());
        assert_eq!(mc.cells.len(), 2);
        assert_eq!(mc.cells[0].clients, 1);
        assert_eq!(mc.cells[1].clients, 64);
        for c in &mc.cells {
            assert!(c.requests >= 64, "cell N={} too small", c.clients);
            assert!(c.qps > 0.0 && c.qps.is_finite());
            assert!(c.p50_seconds() >= 0.0 && c.p99_seconds() >= c.p50_seconds());
        }
        assert!(mc.p99_ratio.is_finite() && mc.p99_ratio > 0.0);

        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 3"));
        assert!(json.contains("\"bench\": \"serve_queries\""));
        assert!(json.contains("\"workload\": \"fold_in\""));
        assert!(json.contains("\"workload\": \"top_k\""));
        assert!(json.contains("\"workload\": \"mixed\""));
        assert!(json.contains("\"workload\": \"commit\""));
        assert!(json.contains("\"workload\": \"commit_wal\""));
        assert!(json.contains("\"workload\": \"mixed_metrics_off\""));
        assert!(json.contains("\"workload\": \"mixed_metrics_on\""));
        assert!(json.contains("\"metrics_overhead\""));
        assert!(json.contains("\"multi_client\""));
        assert!(json.contains("\"clients\": 64"));
        assert!(json.contains("\"p99_ratio\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let dir = std::env::temp_dir().join("genclus-bench-serve");
        let path = report.save(&dir.join("BENCH_serve.json")).expect("save");
        assert!(path.exists());
    }

    #[test]
    fn every_benchmarked_response_is_ok() {
        // The harness must measure *successful* queries — a stream of
        // errors would "benchmark" the error path.
        let cfg = ServePerfConfig {
            quick: true,
            threads: 1,
            queries_per_cell: 8,
        };
        let (engine, fold_in, top_k) = build_engine(&cfg);
        for line in fold_in.iter().chain(&top_k) {
            let resp = engine.handle_line(line);
            assert!(
                resp.contains("\"ok\":true"),
                "benchmark query failed: {line} → {resp}"
            );
        }
    }
}
