//! Fig. 11 counterpart: wall-time of one EM inner iteration as the weather
//! network grows (1250 / 1500 / 2000 objects) and as the per-sensor
//! observation count grows (1 / 5 / 20), plus the 4-thread parallel E-step.
//!
//! The paper's claim is *linearity in the number of objects* for sparse
//! networks and near-linear parallel speedup; compare the medians across
//! groups to check both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genclus_core::attr_model::ClusterComponents;
use genclus_core::em::EmEngine;
use genclus_datagen::weather::{generate, PatternSetting, WeatherConfig};
use genclus_stats::MembershipMatrix;

const K: usize = 4;

fn setup(
    n_precip: usize,
    n_obs: usize,
) -> (
    genclus_datagen::weather::WeatherNetwork,
    MembershipMatrix,
    Vec<ClusterComponents>,
    Vec<f64>,
) {
    let net = generate(&WeatherConfig {
        n_temp: 1000,
        n_precip,
        k_neighbors: 5,
        n_obs,
        pattern: PatternSetting::Setting1,
        seed: 7,
    });
    let mut rng = genclus_stats::seeded_rng(1);
    let theta = MembershipMatrix::random(net.graph.n_objects(), K, &mut rng);
    let comps: Vec<ClusterComponents> = [net.temp_attr, net.precip_attr]
        .iter()
        .map(|&a| ClusterComponents::init(K, net.graph.attribute(a), &mut rng, 1e-9, 1e-6))
        .collect();
    let gamma = vec![1.0; net.graph.schema().n_relations()];
    (net, theta, comps, gamma)
}

fn bench_em_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_iteration_by_objects");
    group.sample_size(20);
    for n_precip in [250usize, 500, 1000] {
        let (net, theta, comps, gamma) = setup(n_precip, 5);
        let attrs = [net.temp_attr, net.precip_attr];
        let mut engine = EmEngine::new(&net.graph, &attrs, K, 1, 1e-9, 1e-6);
        group.bench_with_input(
            BenchmarkId::from_parameter(1000 + n_precip),
            &n_precip,
            |b, _| b.iter(|| engine.step(&theta, &comps, &gamma)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("em_iteration_by_observations");
    group.sample_size(20);
    for n_obs in [1usize, 5, 20] {
        let (net, theta, comps, gamma) = setup(1000, n_obs);
        let attrs = [net.temp_attr, net.precip_attr];
        let mut engine = EmEngine::new(&net.graph, &attrs, K, 1, 1e-9, 1e-6);
        group.bench_with_input(BenchmarkId::from_parameter(n_obs), &n_obs, |b, _| {
            b.iter(|| engine.step(&theta, &comps, &gamma))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("em_iteration_by_threads");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        let (net, theta, comps, gamma) = setup(1000, 20);
        let attrs = [net.temp_attr, net.precip_attr];
        let mut engine = EmEngine::new(&net.graph, &attrs, K, threads, 1e-9, 1e-6);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| engine.step(&theta, &comps, &gamma))
        });
    }
    group.finish();

    // The naive reference kernel on the same largest configuration, for an
    // in-bench sanity check of the BENCH_em.json trajectory.
    let mut group = c.benchmark_group("em_iteration_naive_reference");
    group.sample_size(20);
    for threads in [1usize, 4] {
        let (net, theta, comps, gamma) = setup(1000, 20);
        let attrs = [net.temp_attr, net.precip_attr];
        let kernel = genclus_core::em_reference::ReferenceEmKernel::new(
            &net.graph, &attrs, K, threads, 1e-9, 1e-6,
        );
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| kernel.step(&theta, &comps, &gamma))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_em_scaling);
criterion_main!(benches);
