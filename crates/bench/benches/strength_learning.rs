//! Cost of the strength-learning step (Algorithm 1, step 2): objective
//! evaluation and the full projected-Newton solve on weather networks of
//! increasing size. The per-outer-iteration complexity claimed in §4.3 is
//! `O(K|E| + t₂|R|^2.376)` — dominated by the `K|E|` statistics pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genclus_core::strength::StrengthLearner;
use genclus_datagen::weather::{generate, PatternSetting, WeatherConfig};
use genclus_stats::{MembershipMatrix, NewtonOptions};

const K: usize = 4;

fn bench_strength(c: &mut Criterion) {
    let mut group = c.benchmark_group("strength_learning");
    group.sample_size(15);
    for n_precip in [250usize, 1000] {
        let net = generate(&WeatherConfig {
            n_temp: 1000,
            n_precip,
            k_neighbors: 5,
            n_obs: 5,
            pattern: PatternSetting::Setting1,
            seed: 7,
        });
        let mut rng = genclus_stats::seeded_rng(1);
        let theta = MembershipMatrix::random(net.graph.n_objects(), K, &mut rng);
        let learner = StrengthLearner::new(0.1, NewtonOptions::default());
        let gamma0 = vec![1.0; 4];

        group.bench_with_input(
            BenchmarkId::new("objective", 1000 + n_precip),
            &n_precip,
            |b, _| b.iter(|| learner.objective(&net.graph, &theta, &gamma0)),
        );
        group.bench_with_input(
            BenchmarkId::new("full_newton_solve", 1000 + n_precip),
            &n_precip,
            |b, _| b.iter(|| learner.learn(&net.graph, &theta, &gamma0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strength);
criterion_main!(benches);
