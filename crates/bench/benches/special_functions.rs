//! Microbenchmarks for the numerics hot path: the strength-learning step
//! evaluates digamma/trigamma once per (object, cluster) per Newton
//! iteration, and the EM step normalizes log weights once per observation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use genclus_stats::{digamma, ln_gamma, log_sum_exp, trigamma};

fn bench_special(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=256).map(|i| 0.37 * i as f64).collect();

    c.bench_function("ln_gamma/256 values", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc += ln_gamma(black_box(x));
            }
            acc
        })
    });
    c.bench_function("digamma/256 values", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc += digamma(black_box(x));
            }
            acc
        })
    });
    c.bench_function("trigamma/256 values", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &xs {
                acc += trigamma(black_box(x));
            }
            acc
        })
    });

    let logw = [-3.2, -1.1, -7.9, -0.4];
    c.bench_function("log_sum_exp/k=4", |b| {
        b.iter(|| log_sum_exp(black_box(&logw)))
    });

    let p = [0.7, 0.1, 0.1, 0.1];
    let q = [0.25, 0.25, 0.25, 0.25];
    c.bench_function("cross_entropy/k=4", |b| {
        b.iter(|| genclus_stats::simplex::cross_entropy(black_box(&p), black_box(&q)))
    });
}

criterion_group!(benches, bench_special);
criterion_main!(benches);
