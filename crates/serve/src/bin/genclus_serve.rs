//! JSON-lines serving binary.
//!
//! ```text
//! genclus_serve --snapshot <path> [--threads N] [--batch N]
//! ```
//!
//! Reads one JSON request per stdin line and writes one JSON response per
//! stdout line, in request order. Lines are gathered into batches of up to
//! `--batch` requests (default 64) and executed concurrently across the
//! worker pool; a **blank line** flushes the current batch immediately
//! (and emits nothing itself), so interactive clients get an answer
//! without filling a batch. EOF flushes and exits. See
//! [`genclus_serve::engine`] for the request vocabulary.

use genclus_serve::{QueryEngine, Snapshot};
use std::io::{BufRead, Write};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: genclus_serve --snapshot <path> [--threads N] [--batch N]");
    std::process::exit(2);
}

fn main() {
    let mut snapshot_path: Option<PathBuf> = None;
    let mut threads = 1usize;
    let mut batch = 64usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot" => {
                snapshot_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--batch" => {
                batch = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&b| b >= 1)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(path) = snapshot_path else { usage() };

    let snapshot = match Snapshot::load(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to load snapshot {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "genclus_serve: {} objects, {} links, k={}, snapshot v{} ({} threads, batch {})",
        snapshot.graph().n_objects(),
        snapshot.graph().n_links(),
        snapshot.model().n_clusters(),
        snapshot.header().version,
        threads,
        batch,
    );
    let engine = QueryEngine::new(snapshot, threads);

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut pending: Vec<String> = Vec::with_capacity(batch);
    let flush = |pending: &mut Vec<String>, out: &mut std::io::BufWriter<_>| {
        if pending.is_empty() {
            return;
        }
        for response in engine.handle_batch(pending) {
            writeln!(out, "{response}").expect("stdout write failed");
        }
        out.flush().expect("stdout flush failed");
        pending.clear();
    };
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin read failed: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            flush(&mut pending, &mut out);
            continue;
        }
        pending.push(line);
        if pending.len() >= batch {
            flush(&mut pending, &mut out);
        }
    }
    flush(&mut pending, &mut out);
}
