//! JSON-lines serving binary.
//!
//! ```text
//! genclus_serve --snapshot <path> [--listen <addr>] [--threads N] [--batch N]
//!               [--max-request-bytes N] [--max-connections N]
//!               [--refresh-after-objects N] [--refresh-after-links N]
//!               [--refresh-save <path>] [--refresh-sigma F]
//!               [--refresh-background] [--wal <path>]
//!               [--metrics-dump <path>] [--metrics-interval SECS]
//!               [--metrics-format json|prom] [--quiet]
//! ```
//!
//! Reads one JSON request per stdin line and writes one JSON response per
//! stdout line, in request order. Lines are gathered into batches of up to
//! `--batch` requests (default 64) and executed concurrently across the
//! worker pool; a **blank line** flushes the current batch immediately
//! (and emits nothing itself), so interactive clients get an answer
//! without filling a batch. EOF flushes and exits. See
//! [`genclus_serve::engine`] for the read-side request vocabulary and
//! [`genclus_serve::refresh`] for the grow/refresh side: fold-in requests
//! with a `"commit"` field stage new objects, `--refresh-after-objects` /
//! `--refresh-after-links` auto-trigger a warm-start re-fit (0 = manual
//! `{"op":"refresh"}` only), and `--refresh-save` persists each refreshed
//! snapshot atomically.
//!
//! # TCP serving: `--listen <addr>`
//!
//! `--listen 127.0.0.1:7878` (or `:0` for an ephemeral port — the bound
//! address is logged as `listening on <addr>`) serves the same JSON-lines
//! protocol over TCP to many concurrent clients
//! ([`genclus_serve::net`]): thread-per-connection, reads answered
//! lock-free from an atomically swappable snapshot handle each connection
//! pins per request, and all mutations (commits with their WAL
//! append+fsync, refreshes) serialized through one mutation lane so
//! *ack ⇒ replayable* holds under concurrency. Per-connection error
//! behavior differs from stdio by design:
//!
//! * a write failure (EPIPE — the client vanished) closes **that**
//!   connection and the process keeps serving the rest; only a stdio
//!   stdout failure quiesces the whole process, because there the lone
//!   client is gone;
//! * a request line over `--max-request-bytes` (default 1 MiB, both
//!   paths) is answered with a structured `BadRequest` and then the TCP
//!   connection is closed; the stdio loop answers the error and
//!   continues. Either way the over-long line is discarded in bounded
//!   chunks — it is never buffered whole;
//! * beyond `--max-connections` (default 1024) concurrent connections,
//!   new arrivals get one structured error line and are closed.
//!
//! In `--listen` mode stdin only controls the server's lifetime: hold it
//! open (e.g. a fifo) to keep serving, close it to stop accepting, drain
//! connections, quiesce (in-flight re-fit, `--refresh-save`, WAL
//! truncation, final metrics dump), and exit 0.
//!
//! `--refresh-background` moves triggered re-fits off the serving loop
//! onto a dedicated worker thread (double-buffered engines): queries keep
//! answering from the old snapshot for the entire re-fit, the finished
//! snapshot swaps in between requests, and commits arriving mid-re-fit
//! stage into the next refresh window. `{"op":"refresh_status"}` reports
//! in-flight state and the last outcome; with `"wait":true` it blocks
//! until the in-flight re-fit lands — the quiesce point for scripts. At
//! EOF the binary waits for any in-flight re-fit (so `--refresh-save`
//! always persists the last refresh) before exiting. Without the flag
//! re-fits run inline, stalling the loop for the warm-EM wall time — the
//! single-threaded fallback.
//!
//! `--wal <path>` opens a commit write-ahead log ([`genclus_serve::wal`]):
//! every accepted commit is appended and **fsynced before its ack is
//! written**, so the durability contract is *ack ⇒ replayable* — kill the
//! process at any point and a restart with the same `--wal` and snapshot
//! replays the log, rebuilding every acknowledged commit (links,
//! `in_links`, observations, and the fold-in `Θ` row bit-identically). A
//! refresh that persists via `--refresh-save` truncates the log
//! atomically down to the still-staged window; pair the two flags and the
//! log stays short. A torn final record (crash mid-append) is truncated
//! and reported at startup, never fatal; a log that belongs to a
//! different snapshot is a startup error. A client that never saw an ack
//! for a commit must treat it as unknown and retry — an "already staged"
//! rejection then means the commit survived after all.
//!
//! # Observability
//!
//! The engine keeps an always-on [`genclus_serve::metrics`] registry:
//! per-op latency histograms, WAL append/fsync timings, replay counters,
//! refresh lifecycle spans, and live warm-EM convergence. Three ways out:
//!
//! * `{"op":"metrics"}` — the cumulative registry as one JSON response
//!   (documented, byte-stable key order; see the [`genclus_serve::metrics`]
//!   module docs for the schema);
//! * `--metrics-dump <path>` — a background thread snapshots the registry
//!   to `path` every `--metrics-interval` seconds (default 10; atomic
//!   temp-file + rename), plus one final snapshot at exit — point a
//!   collector at the file;
//! * `--metrics-format prom` — the dump file renders as Prometheus text
//!   exposition instead of JSON. The wire `metrics` op is always JSON.
//!
//! Diagnostics go to stderr through one leveled logger; `--quiet` keeps
//! only errors (startup banner, recovery summaries, and truncation
//! warnings are suppressed). Responses on stdout are never filtered.
//!
//! If stdout closes under the binary (`head`, a dying consumer — a broken
//! pipe), it quiesces exactly like EOF — any in-flight re-fit lands, so
//! `--refresh-save` and the WAL truncation still happen — and exits 0.
//!
//! Snapshots do not record the original fit's hyperparameters, so re-fits
//! run under paper defaults; `--refresh-sigma` overrides the `γ`-prior
//! std (§3.4) for models fitted with a non-default one, and deployments
//! with other non-default knobs should embed
//! [`genclus_serve::refresh::RefreshPolicy::base_config`] via the library
//! API instead of this binary.

use genclus_obs::log;
use genclus_serve::lines::DEFAULT_MAX_REQUEST_BYTES;
use genclus_serve::net::{invalid_utf8_response, over_limit_response, NetConfig, NetServer};
use genclus_serve::snapshot;
use genclus_serve::{
    CappedLineReader, LineEvent, RefreshPolicy, RefreshableEngine, ServeMetrics, Snapshot,
};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: genclus_serve --snapshot <path> [--listen <addr>] [--threads N] [--batch N] \
         [--max-request-bytes N] [--max-connections N] \
         [--refresh-after-objects N] [--refresh-after-links N] [--refresh-save <path>] \
         [--refresh-sigma F] [--refresh-background] [--wal <path>] \
         [--metrics-dump <path>] [--metrics-interval SECS] [--metrics-format json|prom] \
         [--quiet]"
    );
    std::process::exit(2);
}

/// How `--metrics-dump` renders the registry.
#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Json,
    Prom,
}

/// One atomic **and durable** snapshot of the registry to `path`, via the
/// shared fsync'd save helper (temp file synced before the rename, parent
/// directory after it) — `--metrics-dump` survives crash like every other
/// persisted artifact. `tmp_tag` keeps the periodic thread's temp file
/// distinct from the final-dump one — the two can race at exit, and
/// renames of *complete* files are safe in either order while a shared
/// temp path would not be.
fn dump_metrics(metrics: &ServeMetrics, path: &Path, format: MetricsFormat, tmp_tag: &str) {
    let body = match format {
        MetricsFormat::Json => {
            let mut s = metrics.to_json().render();
            s.push('\n');
            s
        }
        MetricsFormat::Prom => metrics.render_prom(),
    };
    if let Err(e) = snapshot::save_bytes_tagged(path, body.as_bytes(), tmp_tag) {
        log::warn(format!("metrics dump to {} failed: {e}", path.display()));
    }
}

/// Drains in-flight work before exit: an in-flight background re-fit
/// finishes (and persists + truncates the WAL, when configured) rather
/// than being torn down mid-write with the process. Returns the exit
/// code: non-zero when the final re-fit failed, since there is no later
/// response line to surface it in.
fn quiesce(engine: &mut RefreshableEngine) -> i32 {
    let mut code = 0;
    if engine.refresh_in_flight() {
        log::info("waiting for the in-flight background re-fit before exit");
        engine.finish();
        if let Some(Err(e)) = engine.last_refresh() {
            log::error(format!("final background re-fit failed: {e}"));
            code = 1;
        }
    }
    if let Some(e) = engine.wal_error() {
        log::warn(format!("the last commit-log truncation failed: {e}"));
    }
    code
}

/// A stdout write failed. Quiesce first — acked commits are already
/// durable in the WAL, but the re-fit/persist/truncate path must still
/// land — then exit: cleanly for a broken pipe (the consumer went away;
/// that is an EOF, not a crash), code 1 for anything else.
fn exit_on_write_failure(
    e: &std::io::Error,
    engine: &mut RefreshableEngine,
    dump: &Option<(PathBuf, MetricsFormat)>,
) -> ! {
    let code = quiesce(engine);
    if let Some((path, format)) = dump {
        dump_metrics(engine.engine().metrics(), path, *format, ".tmp-final");
    }
    if e.kind() == std::io::ErrorKind::BrokenPipe {
        log::info("stdout closed; exiting");
        std::process::exit(code);
    }
    log::error(format!("stdout write failed: {e}"));
    std::process::exit(1);
}

fn flush_batch(
    pending: &mut Vec<String>,
    out: &mut std::io::BufWriter<std::io::StdoutLock<'_>>,
    engine: &mut RefreshableEngine,
) -> std::io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    for response in engine.handle_batch(pending) {
        writeln!(out, "{response}")?;
    }
    out.flush()?;
    pending.clear();
    Ok(())
}

fn main() {
    let mut snapshot_path: Option<PathBuf> = None;
    let mut wal_path: Option<PathBuf> = None;
    let mut listen: Option<String> = None;
    let mut threads = 1usize;
    let mut batch = 64usize;
    let mut max_request_bytes = DEFAULT_MAX_REQUEST_BYTES;
    let mut max_connections = 1024usize;
    let mut policy = RefreshPolicy::default();
    let mut metrics_dump: Option<PathBuf> = None;
    let mut metrics_interval_secs = 10u64;
    let mut metrics_format = MetricsFormat::Json;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot" => {
                snapshot_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--wal" => wal_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--max-request-bytes" => {
                max_request_bytes = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&b| b >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--max-connections" => {
                max_connections = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&c| c >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--batch" => {
                batch = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&b| b >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--refresh-after-objects" => {
                policy.max_pending_objects = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--refresh-after-links" => {
                policy.max_pending_links = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--refresh-save" => {
                policy.persist_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--refresh-background" => policy.background = true,
            "--refresh-sigma" => {
                let sigma: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&s: &f64| s > 0.0 && s.is_finite())
                    .unwrap_or_else(|| usage());
                // K and the attribute subset are placeholders — the refresh
                // path realigns them with the served model before fitting.
                let mut cfg =
                    genclus_core::GenClusConfig::new(2, vec![genclus_hin::AttributeId(0)]);
                cfg.sigma = sigma;
                policy.base_config = Some(cfg);
            }
            "--metrics-dump" => {
                metrics_dump = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--metrics-interval" => match args.next().and_then(|s| s.parse().ok()) {
                Some(secs) if secs >= 1 => metrics_interval_secs = secs,
                // A bare `usage()` here buried the real problem: 0 is not
                // a "dump on every iteration" request, it is a busy-spin
                // that rewrites the dump file continuously. Say so.
                Some(0) => {
                    eprintln!(
                        "genclus_serve: error: --metrics-interval must be at least 1 second \
                         (an interval of 0 would busy-spin the dump thread, rewriting the \
                         dump file continuously)"
                    );
                    std::process::exit(2);
                }
                _ => usage(),
            },
            "--metrics-format" => match args.next().as_deref() {
                Some("json") => metrics_format = MetricsFormat::Json,
                Some("prom") => metrics_format = MetricsFormat::Prom,
                _ => usage(),
            },
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    let Some(path) = snapshot_path else { usage() };
    log::init(
        "genclus_serve",
        if quiet {
            log::Level::Error
        } else {
            log::Level::Info
        },
    );

    let snapshot = match Snapshot::load(&path) {
        Ok(s) => s,
        Err(e) => {
            log::error(format!("failed to load snapshot {}: {e}", path.display()));
            std::process::exit(1);
        }
    };
    log::info(format!(
        "{} objects, {} links, k={}, snapshot v{} ({} threads, batch {}, \
         refresh after {}/{} objects/links, {} re-fit{})",
        snapshot.graph().n_objects(),
        snapshot.graph().n_links(),
        snapshot.model().n_clusters(),
        snapshot.header().version,
        threads,
        batch,
        policy.max_pending_objects,
        policy.max_pending_links,
        if policy.background {
            "background"
        } else {
            "inline"
        },
        policy
            .persist_path
            .as_ref()
            .map(|p| format!(", persisting to {}", p.display()))
            .unwrap_or_default(),
    ));
    if policy.base_config.is_none() {
        log::info(
            "note: refreshes re-fit under paper-default hyperparameters \
             (snapshots do not record the original fit's σ/floors/Newton options); \
             pass --refresh-sigma or embed RefreshPolicy.base_config if the model \
             was fitted with non-default values",
        );
    }
    let mut engine = match &wal_path {
        Some(wal) => match RefreshableEngine::with_wal(snapshot, threads, policy, wal) {
            Ok((engine, report)) => {
                log::info(format!(
                    "commit WAL {}: replayed {} commit(s), skipped {} \
                     already-persisted, truncated {} torn tail byte(s){}",
                    wal.display(),
                    report.replayed,
                    report.skipped,
                    report.torn_bytes,
                    if report.rewritten {
                        "; log rebased onto the loaded snapshot"
                    } else {
                        ""
                    },
                ));
                engine
            }
            Err(e) => {
                log::error(format!(
                    "failed to recover commit WAL {}: {e}",
                    wal.display()
                ));
                std::process::exit(1);
            }
        },
        None => RefreshableEngine::new(snapshot, threads, policy),
    };

    // Periodic metrics snapshots: a detached thread sharing the registry
    // Arc (which outlives every snapshot swap). No shutdown signal needed
    // — the final dump below covers everything after the last tick, and
    // the thread dies with the process.
    let dump = metrics_dump.map(|p| (p, metrics_format));
    if let Some((path, format)) = &dump {
        let metrics: Arc<ServeMetrics> = engine.engine().metrics().clone();
        let path = path.clone();
        let format = *format;
        let interval = std::time::Duration::from_secs(metrics_interval_secs);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            dump_metrics(&metrics, &path, format, ".tmp");
        });
    }

    // ---- TCP mode: stdin only controls the server's lifetime. ----
    if let Some(addr) = listen {
        let cfg = NetConfig {
            batch,
            max_request_bytes,
            max_connections,
            ..NetConfig::default()
        };
        let server = match NetServer::bind(addr.as_str(), engine, cfg) {
            Ok(s) => s,
            Err(e) => {
                log::error(format!("failed to bind {addr}: {e}"));
                std::process::exit(1);
            }
        };
        // Block until stdin closes (hold it open — a fifo, a pipe — to
        // keep serving; close it for a graceful stop). Bytes written to
        // stdin in this mode are ignored.
        let mut sink = [0u8; 4096];
        let mut stdin = std::io::stdin().lock();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    log::error(format!("stdin read failed: {e}"));
                    break;
                }
            }
        }
        log::info("stdin closed; draining connections");
        let mut engine = server.shutdown();
        let code = quiesce(&mut engine);
        if let Some((path, format)) = &dump {
            dump_metrics(engine.engine().metrics(), path, *format, ".tmp-final");
        }
        std::process::exit(code);
    }

    // ---- stdio mode: the original single-stream loop, now reading
    // through the byte-capped line reader. ----
    let metrics: Arc<ServeMetrics> = engine.engine().metrics().clone();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut pending: Vec<String> = Vec::with_capacity(batch);
    let mut reader = CappedLineReader::new(stdin.lock(), max_request_bytes);
    loop {
        // Out-of-band events (over-limit, bad UTF-8) flush the pending
        // batch before answering, so responses keep request order.
        let out_of_band = match reader.next_event() {
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    if let Err(e) = flush_batch(&mut pending, &mut out, &mut engine) {
                        exit_on_write_failure(&e, &mut engine, &dump);
                    }
                    continue;
                }
                pending.push(line);
                if pending.len() >= batch {
                    if let Err(e) = flush_batch(&mut pending, &mut out, &mut engine) {
                        exit_on_write_failure(&e, &mut engine, &dump);
                    }
                }
                continue;
            }
            LineEvent::OverLimit { discarded } => {
                metrics.record_over_limit();
                over_limit_response(&metrics, discarded, max_request_bytes)
            }
            LineEvent::NotUtf8 => invalid_utf8_response(&metrics),
            // Stdin has no read timeout, so Idle cannot occur.
            LineEvent::Idle => continue,
            LineEvent::Eof => break,
            LineEvent::Err(e) => {
                log::error(format!("stdin read failed: {e}"));
                break;
            }
        };
        let write = flush_batch(&mut pending, &mut out, &mut engine)
            .and_then(|()| writeln!(out, "{out_of_band}"))
            .and_then(|()| out.flush());
        if let Err(e) = write {
            exit_on_write_failure(&e, &mut engine, &dump);
        }
    }
    if let Err(e) = flush_batch(&mut pending, &mut out, &mut engine) {
        exit_on_write_failure(&e, &mut engine, &dump);
    }
    let code = quiesce(&mut engine);
    if let Some((path, format)) = &dump {
        dump_metrics(engine.engine().metrics(), path, *format, ".tmp-final");
    }
    std::process::exit(code);
}
