//! The batched query engine behind the `genclus_serve` binary.
//!
//! Requests are JSON-lines objects; each gets exactly one JSON-lines
//! response carrying the echoed `id` (when present) and `"ok"`. Supported
//! operations:
//!
//! * `{"op":"membership","object":<name>}` — the stored `Θ` row and hard
//!   label of an existing object;
//! * `{"op":"top_k","object":<name>,"k":<n>,"sim":<sim>,"type":<name>}` —
//!   §5.2.2 link-prediction ranking: the `k` most similar candidates
//!   (optionally restricted to one object type, the query object
//!   excluded), with `sim` one of `"cosine"`, `"euclidean"`,
//!   `"cross_entropy"` (default);
//! * `{"op":"fold_in","links":[[rel,target,w],…],"terms":{attr:[[t,c],…]},`
//!   `"values":{attr:[x,…]},"k":<n>,"sim":…}` — online assignment of a new
//!   object with arbitrary subsets of attributes missing; with `"k"` the
//!   folded row is additionally ranked against the network (top-k from the
//!   inferred membership);
//! * `{"op":"stats"}` — snapshot geometry and the learned `γ`.
//!
//! Batches are executed across the persistent
//! [`WorkerPool`](genclus_core::pool::WorkerPool) (one chunk per worker,
//! responses in request order). Requests are independent and the engine is
//! read-only, so this parallelism is safe by construction; names are
//! resolved through [`HinGraph::require_object_by_name`], so unknown names
//! come back as structured errors — serving input is untrusted.

use crate::error::ServeError;
use crate::foldin::{FoldInEngine, FoldInRequest};
use crate::json::Json;
use crate::metrics::{op_label, ServeMetrics};
use crate::snapshot::Snapshot;
use genclus_core::pool::WorkerPool;
use genclus_core::{top_k, Similarity};
use genclus_hin::{HinGraph, ObjectId};
use genclus_stats::simplex::argmax;
use std::sync::{Arc, Mutex};

/// A loaded snapshot plus everything needed to answer queries.
///
/// Split in two: [`QueryCore`] (the read-only, `Sync` request handler the
/// worker closures borrow) and the `QueryEngine` wrapper that owns the
/// worker pool — the pool's channels are deliberately not `Sync`, so it
/// cannot live inside the part the workers capture.
pub struct QueryEngine {
    /// `Arc`'d so the TCP front-end ([`crate::net`]) can hand every
    /// connection a pinnable reference to the *current* core while a
    /// refresh builds the next one — the PR 5 swap discipline generalized
    /// from "one serving thread" to "N connections, lock-free reads".
    core: Arc<QueryCore>,
    pool: Option<WorkerPool>,
    threads: usize,
}

/// The shareable request handler: snapshot + candidate indexes, no pool.
pub struct QueryCore {
    snapshot: Snapshot,
    /// Candidate lists: one per object type, plus all objects.
    by_type: Vec<Vec<ObjectId>>,
    all: Vec<ObjectId>,
    /// Shared observability registry — `Arc`'d so a refreshed engine keeps
    /// accumulating into the same process-lifetime counters.
    metrics: Arc<ServeMetrics>,
}

impl QueryEngine {
    /// Builds an engine over `snapshot` with `threads` workers (1 =
    /// serial) and a fresh metrics registry.
    pub fn new(snapshot: Snapshot, threads: usize) -> Self {
        Self::with_metrics(snapshot, threads, Arc::new(ServeMetrics::new()))
    }

    /// [`Self::new`] wired to an existing registry — how a refresh keeps
    /// counters cumulative across snapshot swaps, and how `bench_serve`
    /// A/Bs a [`ServeMetrics::disabled`] registry.
    pub fn with_metrics(snapshot: Snapshot, threads: usize, metrics: Arc<ServeMetrics>) -> Self {
        let threads = threads.max(1);
        let graph = snapshot.graph();
        let by_type = (0..graph.schema().n_object_types())
            .map(|t| graph.objects_of_type(genclus_hin::ObjectTypeId::from_index(t)))
            .collect();
        let all = graph.objects().collect();
        Self {
            core: Arc::new(QueryCore {
                snapshot,
                by_type,
                all,
                metrics,
            }),
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
            threads,
        }
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.core.snapshot
    }

    /// The shared observability registry.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.core.metrics
    }

    /// The shareable request handler (no pool) — the refresh layer uses it
    /// to decode wire requests without re-implementing the protocol.
    pub(crate) fn core(&self) -> &QueryCore {
        &self.core
    }

    /// A shared handle to the current core. Cloning the `Arc` is how the
    /// TCP front-end publishes a snapshot to all connections: readers pin
    /// the handle per request and keep answering from it even while the
    /// mutation lane swaps in a refreshed engine.
    pub fn core_shared(&self) -> Arc<QueryCore> {
        Arc::clone(&self.core)
    }

    /// Worker threads this engine was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying graph.
    pub fn graph(&self) -> &HinGraph {
        self.core.graph()
    }

    /// Handles one request line, producing one response line (never
    /// panics on malformed input; the error goes into the response).
    pub fn handle_line(&self, line: &str) -> String {
        self.core.handle_line(line)
    }

    /// Handles a batch of request lines concurrently across the worker
    /// pool; responses come back in request order.
    pub fn handle_batch(&self, lines: &[String]) -> Vec<String> {
        let n = lines.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return lines.iter().map(|l| self.core.handle_line(l)).collect();
        }
        // `threads > 1` implies a pool was built; if that invariant ever
        // breaks, degrade to sequential handling rather than panic mid-batch.
        let Some(pool) = self.pool.as_ref() else {
            return lines.iter().map(|l| self.core.handle_line(l)).collect();
        };
        let chunk = n.div_ceil(workers);
        let core = &self.core;
        let slots: Vec<Mutex<Vec<String>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        pool.broadcast(workers, &|i| {
            // Both bounds clamp to n: with chunk = ceil(n / workers), the
            // last workers' ranges can start past the end (e.g. 5 lines on
            // 4 workers → chunk 2 → worker 3 starts at 6) and must come
            // out empty, not out of bounds.
            let lo = (i * chunk).min(n);
            let hi = ((i + 1) * chunk).min(n);
            let out: Vec<String> = lines[lo..hi].iter().map(|l| core.handle_line(l)).collect();
            // Poison recovery: each slot is written exactly once by one
            // worker; a poisoned lock still holds a valid (empty or full)
            // response vector.
            *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = out;
        });
        slots
            .into_iter()
            .flat_map(|s| s.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect()
    }
}

impl QueryCore {
    /// The underlying graph.
    fn graph(&self) -> &HinGraph {
        self.snapshot.graph()
    }

    /// One request line → one response line.
    pub fn handle_line(&self, line: &str) -> String {
        let started = self.metrics.timer();
        let (id, op, result) = match Json::parse(line) {
            Ok(req) => {
                let id = req.get("id").cloned();
                let op = op_label(req.get("op").and_then(Json::as_str));
                (id, op, self.dispatch(&req))
            }
            Err(e) => (
                None,
                op_label(None),
                Err(ServeError::BadRequest(format!("invalid JSON: {e}"))),
            ),
        };
        let ok = result.is_ok();
        let mut fields: Vec<(&str, Json)> = Vec::with_capacity(4);
        if let Some(id) = id {
            fields.push(("id", id));
        }
        match result {
            Ok(mut body) => {
                fields.push(("ok", Json::Bool(true)));
                fields.append(&mut body);
            }
            Err(e) => {
                fields.push(("ok", Json::Bool(false)));
                fields.push(("error", Json::str(e.to_string())));
            }
        }
        let rendered = Json::obj(fields).render();
        // Recorded after rendering so the histogram covers the full
        // request cost the client observes, serialization included.
        self.metrics.record_op(op, started, ok);
        rendered
    }

    fn dispatch(&self, req: &Json) -> Result<Vec<(&'static str, Json)>, ServeError> {
        match req.get("op").and_then(Json::as_str) {
            Some("membership") => self.op_membership(req),
            Some("top_k") => self.op_top_k(req),
            Some("fold_in") => self.op_fold_in(req),
            Some("stats") => self.op_stats(),
            Some("metrics") => Ok(self.metrics.to_fields()),
            Some(other) => Err(ServeError::BadRequest(format!("unknown op {other:?}"))),
            None => Err(ServeError::BadRequest(
                "request must carry a string \"op\" field".into(),
            )),
        }
    }

    fn require_object(&self, req: &Json) -> Result<ObjectId, ServeError> {
        let name = req
            .get("object")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing string \"object\" field".into()))?;
        Ok(self.graph().require_object_by_name(name)?)
    }

    pub(crate) fn similarity(req: &Json) -> Result<Similarity, ServeError> {
        match req.get("sim").and_then(Json::as_str) {
            None | Some("cross_entropy") => Ok(Similarity::NegCrossEntropy),
            Some("cosine") => Ok(Similarity::Cosine),
            Some("euclidean") => Ok(Similarity::NegEuclidean),
            Some(other) => Err(ServeError::BadRequest(format!(
                "unknown similarity {other:?} (expected cosine | euclidean | cross_entropy)"
            ))),
        }
    }

    /// Candidate set: all objects, or one type when `"type"` is given.
    pub(crate) fn candidates(&self, req: &Json) -> Result<&[ObjectId], ServeError> {
        match req.get("type").and_then(Json::as_str) {
            None => Ok(&self.all),
            Some(name) => {
                let t = self
                    .graph()
                    .schema()
                    .object_type_by_name(name)
                    .ok_or_else(|| {
                        ServeError::BadRequest(format!("unknown object type {name:?}"))
                    })?;
                Ok(&self.by_type[t.index()])
            }
        }
    }

    pub(crate) fn ranked_json(&self, ranked: &[(ObjectId, f64)]) -> Json {
        Json::Arr(
            ranked
                .iter()
                .map(|&(c, score)| {
                    Json::Arr(vec![
                        Json::str(self.graph().object_name(c)),
                        Json::Num(score),
                    ])
                })
                .collect(),
        )
    }

    fn op_membership(&self, req: &Json) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let v = self.require_object(req)?;
        let row = self.snapshot.model().membership(v);
        Ok(vec![
            ("object", Json::str(self.graph().object_name(v))),
            ("theta", Json::nums(row)),
            ("cluster", Json::Num(argmax(row) as f64)),
        ])
    }

    fn op_top_k(&self, req: &Json) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let v = self.require_object(req)?;
        let sim = Self::similarity(req)?;
        let k = req
            .get("k")
            .map(|j| {
                j.as_usize().ok_or_else(|| {
                    ServeError::BadRequest("\"k\" must be a non-negative integer".into())
                })
            })
            .transpose()?
            .unwrap_or(10);
        let theta = &self.snapshot.model().theta;
        let candidates: Vec<ObjectId> = self
            .candidates(req)?
            .iter()
            .copied()
            .filter(|&c| c != v)
            .collect();
        let ranked = top_k(theta, theta.row(v.index()), &candidates, sim, k);
        Ok(vec![
            ("object", Json::str(self.graph().object_name(v))),
            ("results", self.ranked_json(&ranked)),
        ])
    }

    pub(crate) fn op_stats(&self) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let g = self.graph();
        let model = self.snapshot.model();
        let gamma = Json::Obj(
            g.schema()
                .relations()
                .map(|(r, def)| (def.name.clone(), Json::Num(model.strength(r))))
                .collect(),
        );
        Ok(vec![
            ("n_objects", Json::Num(g.n_objects() as f64)),
            ("n_links", Json::Num(g.n_links() as f64)),
            ("k", Json::Num(model.n_clusters() as f64)),
            ("gamma", gamma),
            (
                "snapshot_version",
                Json::Num(self.snapshot.header().version as f64),
            ),
            // The payload checksum identifies *which* snapshot answered —
            // hex-rendered because a u64 does not survive an f64 JSON
            // number. Clients use it to observe the atomic swap of a
            // background refresh (consistent reads: old until swap, new
            // after).
            (
                "checksum",
                Json::str(format!("{:016x}", self.snapshot.header().checksum)),
            ),
        ])
    }

    /// Decodes a `[[relation, endpoint-name, weight], …]` array, resolving
    /// endpoint names through `resolve` (plain fold-in resolves against the
    /// snapshot graph; the refresh layer widens resolution to snapshot ∪
    /// staged names for commit links and `in_links`).
    pub(crate) fn decode_link_triples(
        &self,
        links: &Json,
        field: &str,
        resolve: &dyn Fn(&str) -> Result<ObjectId, ServeError>,
    ) -> Result<Vec<(genclus_hin::RelationId, ObjectId, f64)>, ServeError> {
        let schema = self.graph().schema();
        let links = links
            .as_arr()
            .ok_or_else(|| ServeError::BadRequest(format!("{field:?} must be an array")))?;
        let mut out = Vec::with_capacity(links.len());
        for entry in links {
            let triple = entry.as_arr().filter(|a| a.len() == 3).ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "each entry of {field:?} must be [relation, name, weight]"
                ))
            })?;
            let rel_name = triple[0]
                .as_str()
                .ok_or_else(|| ServeError::BadRequest("link relation must be a string".into()))?;
            let rel = schema
                .relation_by_name(rel_name)
                .ok_or_else(|| ServeError::BadRequest(format!("unknown relation {rel_name:?}")))?;
            let endpoint_name = triple[1]
                .as_str()
                .ok_or_else(|| ServeError::BadRequest("link endpoint must be a string".into()))?;
            let endpoint = resolve(endpoint_name)?;
            let weight = triple[2]
                .as_f64()
                .ok_or_else(|| ServeError::BadRequest("link weight must be a number".into()))?;
            out.push((rel, endpoint, weight));
        }
        Ok(out)
    }

    /// Decodes the wire fold-in request: link relations/targets by name,
    /// attributes by name. Targets resolve against the snapshot graph.
    pub(crate) fn decode_fold_in(&self, req: &Json) -> Result<FoldInRequest, ServeError> {
        self.decode_fold_in_with(req, &|name| {
            Ok(self.graph().require_object_by_name(name)?)
        })
    }

    /// [`Self::decode_fold_in`] with a caller-supplied link-target
    /// resolver.
    pub(crate) fn decode_fold_in_with(
        &self,
        req: &Json,
        resolve: &dyn Fn(&str) -> Result<ObjectId, ServeError>,
    ) -> Result<FoldInRequest, ServeError> {
        let g = self.graph();
        let schema = g.schema();
        let mut out = FoldInRequest::default();
        if let Some(links) = req.get("links") {
            out.links = self.decode_link_triples(links, "links", resolve)?;
        }
        let attr_by_name = |name: &str| {
            schema
                .attribute_by_name(name)
                .ok_or_else(|| ServeError::BadRequest(format!("unknown attribute {name:?}")))
        };
        if let Some(terms) = req.get("terms") {
            let fields = terms
                .as_obj()
                .ok_or_else(|| ServeError::BadRequest("\"terms\" must be an object".into()))?;
            for (name, bag) in fields {
                let a = attr_by_name(name)?;
                let bag = bag.as_arr().ok_or_else(|| {
                    ServeError::BadRequest(format!("terms of {name:?} must be an array"))
                })?;
                let mut decoded = Vec::with_capacity(bag.len());
                for pair in bag {
                    let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        ServeError::BadRequest("each term must be [index, count]".into())
                    })?;
                    let term = pair[0].as_usize().ok_or_else(|| {
                        ServeError::BadRequest("term index must be a non-negative integer".into())
                    })?;
                    let count = pair[1].as_f64().ok_or_else(|| {
                        ServeError::BadRequest("term count must be a number".into())
                    })?;
                    decoded.push((term as u32, count));
                }
                out.terms.push((a, decoded));
            }
        }
        if let Some(values) = req.get("values") {
            let fields = values
                .as_obj()
                .ok_or_else(|| ServeError::BadRequest("\"values\" must be an object".into()))?;
            for (name, list) in fields {
                let a = attr_by_name(name)?;
                let list = list.as_arr().ok_or_else(|| {
                    ServeError::BadRequest(format!("values of {name:?} must be an array"))
                })?;
                let mut decoded = Vec::with_capacity(list.len());
                for x in list {
                    decoded.push(x.as_f64().ok_or_else(|| {
                        ServeError::BadRequest("observation values must be numbers".into())
                    })?);
                }
                out.values.push((a, decoded));
            }
        }
        Ok(out)
    }

    fn op_fold_in(&self, req: &Json) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let fold_req = self.decode_fold_in(req)?;
        let engine = FoldInEngine::new(self.snapshot.model(), self.graph());
        let result = engine.assign(&fold_req)?;
        let mut fields = vec![
            ("theta", Json::nums(&result.theta)),
            ("cluster", Json::Num(argmax(&result.theta) as f64)),
            ("iterations", Json::Num(result.iterations as f64)),
            ("converged", Json::Bool(result.converged)),
        ];
        // Optional: rank the freshly folded row against the network.
        if let Some(kj) = req.get("k") {
            let k = kj.as_usize().ok_or_else(|| {
                ServeError::BadRequest("\"k\" must be a non-negative integer".into())
            })?;
            let sim = Self::similarity(req)?;
            let theta = &self.snapshot.model().theta;
            let candidates = self.candidates(req)?;
            let ranked = top_k(theta, &result.theta, candidates, sim, k);
            fields.push(("results", self.ranked_json(&ranked)));
        }
        Ok(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_core::{GenClus, GenClusConfig};
    use genclus_hin::{HinBuilder, Schema};

    /// Two planted sensor clusters; sensors s0/s3 carry readings, the rest
    /// rely on links.
    fn snapshot() -> Snapshot {
        let mut s = Schema::new();
        let sensor = s.add_object_type("sensor");
        let nn = s.add_relation("nn", sensor, sensor);
        let reading = s.add_numerical_attribute("reading");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..6)
            .map(|i| b.add_object(sensor, format!("s{i}")))
            .collect();
        for group in [[0usize, 1, 2], [3, 4, 5]] {
            for &i in &group {
                for &j in &group {
                    if i != j {
                        b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
                    }
                }
            }
        }
        for x in [-5.0, -5.1, -4.9] {
            b.add_numeric(vs[0], reading, x).unwrap();
        }
        for x in [5.0, 5.1, 4.9] {
            b.add_numeric(vs[3], reading, x).unwrap();
        }
        let graph = b.build().unwrap();
        let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
        let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
        let bytes = crate::snapshot::to_bytes(&graph, &fit.model);
        Snapshot::from_bytes(&bytes).unwrap()
    }

    fn ok(response: &str) -> Json {
        let v = Json::parse(response).unwrap();
        assert_eq!(
            v.get("ok"),
            Some(&Json::Bool(true)),
            "expected success, got {response}"
        );
        v
    }

    #[test]
    fn membership_and_stats_round_trip() {
        let engine = QueryEngine::new(snapshot(), 1);
        let v = ok(&engine.handle_line(r#"{"id": 1, "op": "membership", "object": "s1"}"#));
        assert_eq!(v.get("id").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("theta").unwrap().as_arr().unwrap().len(), 2);
        let v = ok(&engine.handle_line(r#"{"op": "stats"}"#));
        assert_eq!(v.get("n_objects").unwrap().as_f64(), Some(6.0));
        assert!(v.get("gamma").unwrap().get("nn").is_some());
    }

    #[test]
    fn top_k_ranks_same_cluster_first() {
        let engine = QueryEngine::new(snapshot(), 1);
        let v = ok(&engine.handle_line(
            r#"{"op": "top_k", "object": "s1", "k": 2, "sim": "cosine", "type": "sensor"}"#,
        ));
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        for entry in results {
            let name = entry.as_arr().unwrap()[0].as_str().unwrap();
            assert!(
                ["s0", "s2"].contains(&name),
                "same-cluster sensors must rank first, got {name}"
            );
        }
    }

    #[test]
    fn fold_in_with_missing_readings_lands_in_the_linked_cluster() {
        let engine = QueryEngine::new(snapshot(), 1);
        // A brand-new sensor with no readings, linked into the s3 cluster.
        let v = ok(&engine.handle_line(
            r#"{"op": "fold_in", "links": [["nn","s3",1.0],["nn","s4",1.0]], "k": 2}"#,
        ));
        assert_eq!(v.get("converged"), Some(&Json::Bool(true)));
        let member = ok(&engine.handle_line(r#"{"op": "membership", "object": "s3"}"#));
        assert_eq!(v.get("cluster"), member.get("cluster"));
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        // And one with a reading: cluster follows the evidence.
        let v = ok(&engine.handle_line(r#"{"op": "fold_in", "values": {"reading": [-5.05]}}"#));
        let member0 = ok(&engine.handle_line(r#"{"op": "membership", "object": "s0"}"#));
        assert_eq!(v.get("cluster"), member0.get("cluster"));
    }

    #[test]
    fn errors_are_structured_not_panics() {
        let engine = QueryEngine::new(snapshot(), 1);
        for (line, needle) in [
            ("not json", "invalid JSON"),
            (r#"{"op": "nope"}"#, "unknown op"),
            (r#"{"op": "membership"}"#, "missing string"),
            (r#"{"op": "membership", "object": "ghost"}"#, "ghost"),
            (
                r#"{"op": "top_k", "object": "s0", "sim": "hamming"}"#,
                "unknown similarity",
            ),
            (
                r#"{"op": "top_k", "object": "s0", "type": "router"}"#,
                "unknown object type",
            ),
            (
                r#"{"op": "fold_in", "links": [["nn","ghost",1.0]]}"#,
                "ghost",
            ),
            (
                r#"{"op": "fold_in", "links": [["xx","s0",1.0]]}"#,
                "unknown relation",
            ),
            (
                r#"{"op": "fold_in", "values": {"reading": [1e9999]}}"#,
                "non-finite",
            ),
            (
                r#"{"op": "fold_in", "terms": {"reading": [[0, 1]]}}"#,
                "cannot store",
            ),
        ] {
            let resp = engine.handle_line(line);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line} → {resp}");
            let err = v.get("error").unwrap().as_str().unwrap();
            assert!(err.contains(needle), "{line} → {err:?} (wanted {needle:?})");
        }
    }

    #[test]
    fn batches_preserve_order_and_match_serial_at_any_thread_count() {
        let snap_bytes = crate::snapshot::to_bytes(snapshot().graph(), snapshot().model());
        let lines: Vec<String> = (0..40)
            .map(|i| match i % 4 {
                0 => format!(r#"{{"id":{i},"op":"membership","object":"s{}"}}"#, i % 6),
                1 => format!(
                    r#"{{"id":{i},"op":"top_k","object":"s{}","k":3,"sim":"cosine"}}"#,
                    i % 6
                ),
                2 => format!(
                    r#"{{"id":{i},"op":"fold_in","links":[["nn","s{}",1.0]],"values":{{"reading":[{}]}}}}"#,
                    i % 6,
                    if i % 8 == 2 { -5.0 } else { 5.0 }
                ),
                _ => format!(r#"{{"id":{i},"op":"stats"}}"#),
            })
            .collect();
        let serial =
            QueryEngine::new(Snapshot::from_bytes(&snap_bytes).unwrap(), 1).handle_batch(&lines);
        assert_eq!(serial.len(), lines.len());
        for threads in [2, 4] {
            let engine = QueryEngine::new(Snapshot::from_bytes(&snap_bytes).unwrap(), threads);
            let par = engine.handle_batch(&lines);
            assert_eq!(par, serial, "{threads} threads changed responses");
        }
        // Every response echoes its request id, in order.
        for (i, resp) in serial.iter().enumerate() {
            let v = Json::parse(resp).unwrap();
            assert_eq!(v.get("id").unwrap().as_usize(), Some(i));
        }
    }

    #[test]
    fn batches_smaller_than_or_awkwardly_split_across_workers_are_fine() {
        // Regression: chunk = ceil(n / workers) can leave trailing workers
        // with a start index past the end (5 lines on 4 workers → worker 3
        // starts at 6); that must yield empty chunks, not a slice panic.
        let engine = QueryEngine::new(snapshot(), 4);
        for n in 1..=9usize {
            let lines: Vec<String> = (0..n)
                .map(|i| format!(r#"{{"id":{i},"op":"stats"}}"#))
                .collect();
            let responses = engine.handle_batch(&lines);
            assert_eq!(responses.len(), n, "batch of {n} on 4 workers");
            for (i, resp) in responses.iter().enumerate() {
                assert_eq!(
                    Json::parse(resp).unwrap().get("id").unwrap().as_usize(),
                    Some(i)
                );
            }
        }
    }
}
