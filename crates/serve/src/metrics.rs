//! The serving process's always-on metrics registry.
//!
//! One [`ServeMetrics`] instance is shared (via `Arc`) between the query
//! engine, the refresh layer, and the binary — and survives snapshot
//! swaps: a background refresh builds a brand-new
//! [`QueryEngine`](crate::engine::QueryEngine), but the replacement is
//! wired to the *same* registry, so counters stay cumulative across the
//! process lifetime, exactly what `{"op":"metrics"}` promises.
//!
//! What it holds:
//!
//! * per-op latency histograms (`membership`, `top_k`, `fold_in`,
//!   `stats`, `metrics`, `commit`, `refresh`, `refresh_status`, and an
//!   `other` catch-all for unknown/invalid requests);
//! * WAL observability — append+fsync latency, recovery/replay counters,
//!   truncations, the live record count, the last truncation error;
//! * refresh lifecycle — completed/failed counts, trigger→swap wall-time
//!   histogram, pending-window gauges, and the last [`RefreshSpan`];
//! * EM convergence — the registry is itself a
//!   [`TraceSink`](genclus_obs::TraceSink), so a re-fit configured with
//!   `cfg.with_trace(metrics)` streams its per-outer-iteration events
//!   (iteration wall time, objective, Θ movement) in live, observable
//!   mid-refresh through the `metrics` op;
//! * TCP front-end connection counters ([`crate::net`]) —
//!   accepted/closed/active connections, admission-cap rejections,
//!   over-limit request lines, and contained per-connection write errors.
//!
//! The recording path is a couple of relaxed atomic adds plus one
//! `Instant::now()` pair per request — cheap enough to leave on
//! (`bench_serve` gates metrics-on mixed throughput ≥ 97% of metrics-off;
//! a [`ServeMetrics::disabled`] registry skips even the clock reads, and
//! exists for that A/B and for embedders who want zero overhead).
//!
//! # JSON schema (schema_version 2)
//!
//! [`ServeMetrics::to_fields`] renders one object with a byte-stable key
//! order (see `tests/metrics.rs`). Version 2 appended the `net` block
//! (TCP front-end connection counters); everything before it is
//! byte-identical to version 1:
//!
//! ```json
//! {"schema_version":2,"uptime_ms":…,
//!  "requests":{"total":…,"errors":…},
//!  "ops":{"membership":{"count":…,"p50_us":…,"p90_us":…,"p99_us":…,"max_us":…},…},
//!  "wal":{"records":…,"appends":…,"append_p50_us":…,"append_p90_us":…,
//!         "append_p99_us":…,"append_max_us":…,"replayed":…,"skipped":…,
//!         "torn_bytes":…,"truncations":…,"error":null},
//!  "refresh":{"completed":…,"failed":…,"in_flight":…,"pending_objects":…,
//!             "pending_links":…,"wall_p50_ms":…,"wall_p99_ms":…,"wall_max_ms":…,
//!             "last":{"mode":…,"trigger":…,"staged_objects":…,"staged_links":…,
//!                     "outer_iterations":…,"em_iterations":…,"refit_ms":…,
//!                     "wall_ms":…,"persisted":…,"ok":…,"error":null}},
//!  "em":{"outer_iterations":…,"inner_iterations":…,"outer_p50_ms":…,
//!        "outer_max_ms":…,"last_objective":…},
//!  "net":{"accepted":…,"closed":…,"active":…,"rejected":…,
//!         "over_limit":…,"write_errors":…}}
//! ```
//!
//! Latencies are microseconds for request-scale work and milliseconds for
//! refresh/EM-scale work, rounded to three decimals. `wal.records`,
//! `refresh.pending_*` and `em.last_objective` are gauges; everything
//! else is cumulative. The same content renders as Prometheus text
//! exposition via [`ServeMetrics::render_prom`].

use crate::json::Json;
use genclus_obs::{Counter, FloatGauge, Gauge, Histogram, HistogramSnapshot, TraceSink};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-op histogram labels, in render order. `other` absorbs unknown ops
/// and invalid JSON — errors are observable, not just successes.
// lint: region(metrics-schema)
const OPS: [&str; 9] = [
    "membership",
    "top_k",
    "fold_in",
    "stats",
    "metrics",
    "commit",
    "refresh",
    "refresh_status",
    "other",
];
// lint: end-region

/// Maps a wire op name onto its histogram label — unknown ops, missing
/// `op` fields, and invalid JSON all land in `"other"`.
pub fn op_label(op: Option<&str>) -> &'static str {
    match op {
        Some(o) => OPS.iter().find(|&&n| n == o).copied().unwrap_or("other"),
        None => "other",
    }
}

/// One completed refresh attempt, as the `metrics` op reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshSpan {
    /// `"inline"` or `"background"`.
    pub mode: &'static str,
    /// What fired it: `"manual"`, `"objects"`, or `"links"`.
    pub trigger: &'static str,
    /// Window size handed to the re-fit.
    pub staged_objects: u64,
    pub staged_links: u64,
    /// Warm-EM iteration counts (0 on failure).
    pub outer_iterations: u64,
    pub em_iterations: u64,
    /// Wall time of the re-fit itself (append → fit → snapshot → engine).
    pub refit_seconds: f64,
    /// Trigger → swap wall time; in background mode this includes the
    /// hand-off and the poll delay, i.e. what the client experiences.
    pub wall_seconds: f64,
    pub persisted: bool,
    pub ok: bool,
    pub error: Option<String>,
}

/// The shared registry. All methods take `&self`; recording is lock-free
/// (the two `Mutex`es guard rare, cold writes: span completion and WAL
/// truncation failures).
pub struct ServeMetrics {
    enabled: bool,
    start: Instant,
    requests: Counter,
    errors: Counter,
    ops: Vec<Histogram>,
    wal_append: Histogram,
    wal_replayed: Counter,
    wal_skipped: Counter,
    wal_torn_bytes: Counter,
    wal_truncations: Counter,
    wal_records: Gauge,
    wal_error: Mutex<Option<String>>,
    refreshes: Counter,
    refresh_failures: Counter,
    refresh_wall: Histogram,
    refresh_in_flight: Gauge,
    pending_objects: Gauge,
    pending_links: Gauge,
    last_refresh: Mutex<Option<RefreshSpan>>,
    em_outer_iterations: Counter,
    em_inner_iterations: Counter,
    em_outer: Histogram,
    em_last_objective: FloatGauge,
    net_accepted: Counter,
    net_closed: Counter,
    net_rejected: Counter,
    net_over_limit: Counter,
    net_write_errors: Counter,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self::build(true)
    }

    /// A registry that records nothing — not even the per-request clock
    /// reads. For the `bench_serve` overhead A/B and zero-overhead
    /// embedders; the render methods still work (everything zero).
    pub fn disabled() -> Self {
        Self::build(false)
    }

    fn build(enabled: bool) -> Self {
        Self {
            enabled,
            start: Instant::now(),
            requests: Counter::new(),
            errors: Counter::new(),
            ops: (0..OPS.len()).map(|_| Histogram::new()).collect(),
            wal_append: Histogram::new(),
            wal_replayed: Counter::new(),
            wal_skipped: Counter::new(),
            wal_torn_bytes: Counter::new(),
            wal_truncations: Counter::new(),
            wal_records: Gauge::new(),
            wal_error: Mutex::new(None),
            refreshes: Counter::new(),
            refresh_failures: Counter::new(),
            refresh_wall: Histogram::new(),
            refresh_in_flight: Gauge::new(),
            pending_objects: Gauge::new(),
            pending_links: Gauge::new(),
            last_refresh: Mutex::new(None),
            em_outer_iterations: Counter::new(),
            em_inner_iterations: Counter::new(),
            em_outer: Histogram::new(),
            em_last_objective: FloatGauge::new(),
            net_accepted: Counter::new(),
            net_closed: Counter::new(),
            net_rejected: Counter::new(),
            net_over_limit: Counter::new(),
            net_write_errors: Counter::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a latency measurement — `None` when disabled, so the hot
    /// path skips the clock read entirely.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    fn op_index(op: &str) -> usize {
        OPS.iter().position(|&o| o == op).unwrap_or(OPS.len() - 1)
    }

    /// Records one finished request: latency into the op's histogram,
    /// plus the request/error totals. `started` comes from
    /// [`Self::timer`]; a `None` (disabled registry) records nothing.
    #[inline]
    pub fn record_op(&self, op: &str, started: Option<Instant>, ok: bool) {
        let Some(started) = started else { return };
        self.ops[Self::op_index(op)].record_duration(started.elapsed());
        self.requests.inc();
        if !ok {
            self.errors.inc();
        }
    }

    /// Records one WAL append+fsync.
    #[inline]
    pub fn record_wal_append(&self, elapsed: Duration) {
        if self.enabled {
            self.wal_append.record_duration(elapsed);
        }
    }

    /// Folds a startup recovery report into the replay counters.
    pub fn record_wal_recovery(&self, replayed: u64, skipped: u64, torn_bytes: u64) {
        self.wal_replayed.add(replayed);
        self.wal_skipped.add(skipped);
        self.wal_torn_bytes.add(torn_bytes);
    }

    /// Records a WAL truncation attempt (the refresh-time rebase).
    pub fn record_wal_truncation(&self, error: Option<String>) {
        if error.is_none() {
            self.wal_truncations.inc();
        }
        // Poison recovery: the Mutex guards a plain Option, which is a
        // valid value even if another thread panicked mid-update, so a
        // poisoned lock must not cascade panics into the serve path.
        *self.wal_error.lock().unwrap_or_else(|p| p.into_inner()) = error;
    }

    pub fn set_wal_records(&self, n: u64) {
        self.wal_records.set(n);
    }

    /// Updates the staging-window gauges (after commits, swaps, replays).
    pub fn set_pending(&self, objects: u64, links: u64) {
        self.pending_objects.set(objects);
        self.pending_links.set(links);
    }

    pub fn set_refresh_in_flight(&self, in_flight: bool) {
        self.refresh_in_flight.set(in_flight as u64);
    }

    /// Records a completed refresh attempt (success or failure) as the
    /// new last span.
    pub fn record_refresh_span(&self, span: RefreshSpan) {
        if span.ok {
            self.refreshes.inc();
        } else {
            self.refresh_failures.inc();
        }
        self.refresh_wall
            .record_duration(Duration::from_secs_f64(span.wall_seconds.max(0.0)));
        *self.last_refresh.lock().unwrap_or_else(|p| p.into_inner()) = Some(span);
    }

    /// The last completed refresh attempt, if any.
    pub fn last_refresh_span(&self) -> Option<RefreshSpan> {
        self.last_refresh
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Records an accepted TCP connection. Connection events are cold
    /// (once per connection, not per request), so like
    /// [`Self::record_wal_recovery`] they record even on a disabled
    /// registry.
    pub fn record_conn_accepted(&self) {
        self.net_accepted.inc();
    }

    /// Records a connection reaching end-of-life (client EOF, contained
    /// write error, over-limit close, or server shutdown).
    pub fn record_conn_closed(&self) {
        self.net_closed.inc();
    }

    /// Records a connection turned away at the admission cap.
    pub fn record_conn_rejected(&self) {
        self.net_rejected.inc();
    }

    /// Records one over-limit request line (stdio or TCP).
    pub fn record_over_limit(&self) {
        self.net_over_limit.inc();
    }

    /// Records a per-connection write failure that was contained (the
    /// connection closed; the process kept serving).
    pub fn record_net_write_error(&self) {
        self.net_write_errors.inc();
    }

    /// Connections currently open (accepted − closed).
    pub fn active_connections(&self) -> u64 {
        self.net_accepted
            .get()
            .saturating_sub(self.net_closed.get())
    }

    fn round3(x: f64) -> f64 {
        (x * 1000.0).round() / 1000.0
    }

    fn us(ns: u64) -> Json {
        Json::Num(Self::round3(ns as f64 / 1_000.0))
    }

    fn ms(ns: u64) -> Json {
        Json::Num(Self::round3(ns as f64 / 1_000_000.0))
    }

    fn count(c: &Counter) -> Json {
        Json::Num(c.get() as f64)
    }

    // The string literals between these markers ARE the wire schema: the
    // metrics-key-order lint extracts them in source order and diffs the
    // sequence against crates/lint/src/metrics_keys.txt. Keep non-key
    // literals out of the regions.
    // lint: region(metrics-schema)
    fn hist_fields_us(h: &HistogramSnapshot) -> Vec<(&'static str, Json)> {
        vec![
            ("count", Json::Num(h.count() as f64)),
            ("p50_us", Self::us(h.quantile(0.50))),
            ("p90_us", Self::us(h.quantile(0.90))),
            ("p99_us", Self::us(h.quantile(0.99))),
            ("max_us", Self::us(h.max())),
        ]
    }

    fn span_json(span: &RefreshSpan) -> Json {
        Json::obj(vec![
            ("mode", Json::str(span.mode)),
            ("trigger", Json::str(span.trigger)),
            ("staged_objects", Json::Num(span.staged_objects as f64)),
            ("staged_links", Json::Num(span.staged_links as f64)),
            ("outer_iterations", Json::Num(span.outer_iterations as f64)),
            ("em_iterations", Json::Num(span.em_iterations as f64)),
            (
                "refit_ms",
                Json::Num(Self::round3(span.refit_seconds * 1_000.0)),
            ),
            (
                "wall_ms",
                Json::Num(Self::round3(span.wall_seconds * 1_000.0)),
            ),
            ("persisted", Json::Bool(span.persisted)),
            ("ok", Json::Bool(span.ok)),
            (
                "error",
                match &span.error {
                    Some(e) => Json::str(e.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The full metrics body in its documented, byte-stable key order —
    /// the `{"op":"metrics"}` response and the `--metrics-dump` snapshot
    /// render exactly this.
    pub fn to_fields(&self) -> Vec<(&'static str, Json)> {
        let uptime_ms = Self::round3(self.start.elapsed().as_secs_f64() * 1_000.0);
        let ops = Json::Obj(
            OPS.iter()
                .zip(&self.ops)
                .map(|(&name, h)| {
                    (
                        name.to_string(),
                        Json::obj(Self::hist_fields_us(&h.snapshot())),
                    )
                })
                .collect(),
        );
        let wal_append = self.wal_append.snapshot();
        let wal = Json::obj(vec![
            ("records", Json::Num(self.wal_records.get() as f64)),
            ("appends", Json::Num(wal_append.count() as f64)),
            ("append_p50_us", Self::us(wal_append.quantile(0.50))),
            ("append_p90_us", Self::us(wal_append.quantile(0.90))),
            ("append_p99_us", Self::us(wal_append.quantile(0.99))),
            ("append_max_us", Self::us(wal_append.max())),
            ("replayed", Self::count(&self.wal_replayed)),
            ("skipped", Self::count(&self.wal_skipped)),
            ("torn_bytes", Self::count(&self.wal_torn_bytes)),
            ("truncations", Self::count(&self.wal_truncations)),
            (
                "error",
                match &*self.wal_error.lock().unwrap_or_else(|p| p.into_inner()) {
                    Some(e) => Json::str(e.clone()),
                    None => Json::Null,
                },
            ),
        ]);
        let wall = self.refresh_wall.snapshot();
        let refresh = Json::obj(vec![
            ("completed", Self::count(&self.refreshes)),
            ("failed", Self::count(&self.refresh_failures)),
            ("in_flight", Json::Bool(self.refresh_in_flight.get() != 0)),
            (
                "pending_objects",
                Json::Num(self.pending_objects.get() as f64),
            ),
            ("pending_links", Json::Num(self.pending_links.get() as f64)),
            ("wall_p50_ms", Self::ms(wall.quantile(0.50))),
            ("wall_p99_ms", Self::ms(wall.quantile(0.99))),
            ("wall_max_ms", Self::ms(wall.max())),
            (
                "last",
                match self.last_refresh_span() {
                    Some(span) => Self::span_json(&span),
                    None => Json::Null,
                },
            ),
        ]);
        let em_outer = self.em_outer.snapshot();
        let em = Json::obj(vec![
            ("outer_iterations", Self::count(&self.em_outer_iterations)),
            ("inner_iterations", Self::count(&self.em_inner_iterations)),
            ("outer_p50_ms", Self::ms(em_outer.quantile(0.50))),
            ("outer_max_ms", Self::ms(em_outer.max())),
            ("last_objective", Json::Num(self.em_last_objective.get())),
        ]);
        let net = Json::obj(vec![
            ("accepted", Self::count(&self.net_accepted)),
            ("closed", Self::count(&self.net_closed)),
            ("active", Json::Num(self.active_connections() as f64)),
            ("rejected", Self::count(&self.net_rejected)),
            ("over_limit", Self::count(&self.net_over_limit)),
            ("write_errors", Self::count(&self.net_write_errors)),
        ]);
        vec![
            ("schema_version", Json::Num(2.0)),
            ("uptime_ms", Json::Num(uptime_ms)),
            (
                "requests",
                Json::obj(vec![
                    ("total", Self::count(&self.requests)),
                    ("errors", Self::count(&self.errors)),
                ]),
            ),
            ("ops", ops),
            ("wal", wal),
            ("refresh", refresh),
            ("em", em),
            ("net", net),
        ]
    }
    // lint: end-region

    /// The metrics body as one compact JSON object (the dump format).
    pub fn to_json(&self) -> Json {
        Json::obj(self.to_fields())
    }

    /// Prometheus text exposition of the same state (`--metrics-format
    /// prom`). Quantiles use the summary convention.
    pub fn render_prom(&self) -> String {
        fn scalar(out: &mut String, name: &str, kind: &str, value: f64) {
            let _ = writeln!(out, "# TYPE {name} {kind}\n{name} {value}");
        }
        let mut out = String::new();
        scalar(
            &mut out,
            "genclus_uptime_seconds",
            "gauge",
            Self::round3(self.start.elapsed().as_secs_f64()),
        );
        scalar(
            &mut out,
            "genclus_requests_total",
            "counter",
            self.requests.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_request_errors_total",
            "counter",
            self.errors.get() as f64,
        );
        let _ = writeln!(out, "# TYPE genclus_op_latency_us summary");
        for (&name, h) in OPS.iter().zip(&self.ops) {
            let snap = h.snapshot();
            for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "genclus_op_latency_us{{op=\"{name}\",quantile=\"{label}\"}} {}",
                    Self::round3(snap.quantile(q) as f64 / 1_000.0)
                );
            }
            let _ = writeln!(
                out,
                "genclus_op_latency_us_count{{op=\"{name}\"}} {}",
                snap.count()
            );
        }
        let wal = self.wal_append.snapshot();
        let _ = writeln!(out, "# TYPE genclus_wal_append_us summary");
        for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "genclus_wal_append_us{{quantile=\"{label}\"}} {}",
                Self::round3(wal.quantile(q) as f64 / 1_000.0)
            );
        }
        let _ = writeln!(out, "genclus_wal_append_us_count {}", wal.count());
        scalar(
            &mut out,
            "genclus_wal_records",
            "gauge",
            self.wal_records.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_wal_replayed_total",
            "counter",
            self.wal_replayed.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_wal_skipped_total",
            "counter",
            self.wal_skipped.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_wal_torn_bytes_total",
            "counter",
            self.wal_torn_bytes.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_wal_truncations_total",
            "counter",
            self.wal_truncations.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_refreshes_total",
            "counter",
            self.refreshes.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_refresh_failures_total",
            "counter",
            self.refresh_failures.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_refresh_in_flight",
            "gauge",
            self.refresh_in_flight.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_pending_objects",
            "gauge",
            self.pending_objects.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_pending_links",
            "gauge",
            self.pending_links.get() as f64,
        );
        let refresh_wall = self.refresh_wall.snapshot();
        scalar(
            &mut out,
            "genclus_refresh_wall_ms_max",
            "gauge",
            Self::round3(refresh_wall.max() as f64 / 1_000_000.0),
        );
        scalar(
            &mut out,
            "genclus_em_outer_iterations_total",
            "counter",
            self.em_outer_iterations.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_em_inner_iterations_total",
            "counter",
            self.em_inner_iterations.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_em_last_objective",
            "gauge",
            self.em_last_objective.get(),
        );
        scalar(
            &mut out,
            "genclus_net_connections_accepted_total",
            "counter",
            self.net_accepted.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_net_connections_active",
            "gauge",
            self.active_connections() as f64,
        );
        scalar(
            &mut out,
            "genclus_net_connections_rejected_total",
            "counter",
            self.net_rejected.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_net_over_limit_total",
            "counter",
            self.net_over_limit.get() as f64,
        );
        scalar(
            &mut out,
            "genclus_net_write_errors_total",
            "counter",
            self.net_write_errors.get() as f64,
        );
        out
    }
}

/// A refit configured with `cfg.with_trace(metrics)` streams its EM
/// convergence into the registry — one event per outer iteration.
impl TraceSink for ServeMetrics {
    fn event(&self, name: &'static str, fields: &[(&'static str, f64)]) {
        if name != "em_outer_iteration" || !self.enabled {
            return;
        }
        let field = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        self.em_outer_iterations.inc();
        if let Some(inner) = field("em_iterations") {
            self.em_inner_iterations.add(inner as u64);
        }
        if let Some(seconds) = field("em_seconds") {
            self.em_outer
                .record_duration(Duration::from_secs_f64(seconds.max(0.0)));
        }
        if let Some(g1) = field("objective_g1") {
            self.em_last_objective.set(g1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_render_round_trip() {
        let m = ServeMetrics::new();
        let t = m.timer();
        assert!(t.is_some());
        m.record_op("membership", t, true);
        m.record_op("nonsense", m.timer(), false);
        m.record_wal_append(Duration::from_micros(120));
        m.set_wal_records(3);
        m.record_wal_recovery(2, 1, 17);
        m.set_pending(4, 9);
        let body = m.to_json();
        assert_eq!(
            body.get("requests").unwrap().get("total").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            body.get("requests")
                .unwrap()
                .get("errors")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        let ops = body.get("ops").unwrap();
        assert_eq!(
            ops.get("membership")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        // Unknown ops land in the catch-all.
        assert_eq!(
            ops.get("other").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
        let wal = body.get("wal").unwrap();
        assert_eq!(wal.get("appends").unwrap().as_f64(), Some(1.0));
        assert_eq!(wal.get("replayed").unwrap().as_f64(), Some(2.0));
        assert_eq!(wal.get("skipped").unwrap().as_f64(), Some(1.0));
        assert_eq!(wal.get("torn_bytes").unwrap().as_f64(), Some(17.0));
        assert_eq!(wal.get("records").unwrap().as_f64(), Some(3.0));
        assert!(wal.get("append_p50_us").unwrap().as_f64().unwrap() > 0.0);
        let refresh = body.get("refresh").unwrap();
        assert_eq!(refresh.get("pending_objects").unwrap().as_f64(), Some(4.0));
        assert_eq!(refresh.get("last"), Some(&Json::Null));
        // The rendered line is valid JSON.
        assert!(Json::parse(&body.render()).is_ok());
        // And the prom rendering carries the headline series.
        let prom = m.render_prom();
        assert!(prom.contains("genclus_requests_total 2"));
        assert!(prom.contains("genclus_op_latency_us{op=\"membership\",quantile=\"0.5\"}"));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = ServeMetrics::disabled();
        assert!(m.timer().is_none());
        m.record_op("membership", m.timer(), true);
        m.record_wal_append(Duration::from_micros(50));
        let body = m.to_json();
        assert_eq!(
            body.get("requests").unwrap().get("total").unwrap().as_f64(),
            Some(0.0)
        );
        assert_eq!(
            body.get("wal").unwrap().get("appends").unwrap().as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn refresh_span_updates_counters_and_last() {
        let m = ServeMetrics::new();
        m.record_refresh_span(RefreshSpan {
            mode: "inline",
            trigger: "objects",
            staged_objects: 2,
            staged_links: 5,
            outer_iterations: 3,
            em_iterations: 12,
            refit_seconds: 0.050,
            wall_seconds: 0.060,
            persisted: true,
            ok: true,
            error: None,
        });
        m.record_refresh_span(RefreshSpan {
            mode: "background",
            trigger: "manual",
            staged_objects: 0,
            staged_links: 0,
            outer_iterations: 0,
            em_iterations: 0,
            refit_seconds: 0.001,
            wall_seconds: 0.001,
            persisted: false,
            ok: false,
            error: Some("boom".into()),
        });
        let body = m.to_json();
        let refresh = body.get("refresh").unwrap();
        assert_eq!(refresh.get("completed").unwrap().as_f64(), Some(1.0));
        assert_eq!(refresh.get("failed").unwrap().as_f64(), Some(1.0));
        let last = refresh.get("last").unwrap();
        assert_eq!(last.get("mode").unwrap().as_str(), Some("background"));
        assert_eq!(last.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(last.get("error").unwrap().as_str(), Some("boom"));
    }

    #[test]
    fn trace_events_feed_the_em_block() {
        let m = ServeMetrics::new();
        m.event(
            "em_outer_iteration",
            &[
                ("iteration", 1.0),
                ("em_iterations", 7.0),
                ("em_seconds", 0.004),
                ("objective_g1", -123.5),
            ],
        );
        m.event("unrelated", &[("x", 1.0)]);
        let em = m.to_json().get("em").cloned().unwrap();
        assert_eq!(em.get("outer_iterations").unwrap().as_f64(), Some(1.0));
        assert_eq!(em.get("inner_iterations").unwrap().as_f64(), Some(7.0));
        assert_eq!(em.get("last_objective").unwrap().as_f64(), Some(-123.5));
        assert!(em.get("outer_p50_ms").unwrap().as_f64().unwrap() > 0.0);
    }
}
